#!/usr/bin/env python3
"""Standalone entry point for the project invariant linter.

Runs the same rules as ``repro lint`` without needing the package
installed — CI and pre-commit hooks call this file directly::

    python tools/lint_rules.py                 # all rules
    python tools/lint_rules.py --rule worker-determinism
    python tools/lint_rules.py --strict --baseline tools/lint_baseline.json
    python tools/lint_rules.py --sarif lint.sarif
    python tools/lint_rules.py --list

Findings go to stdout; counts and the all-clear go to stderr. Exit
status: 0 when every checked invariant holds, 1 on findings (warnings
fail only under ``--strict``), 2 on usage or configuration errors
(e.g. an unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.lint import (  # noqa: E402  (path bootstrap above)
    RULES,
    load_baseline,
    load_project,
    run_lint,
    suppress_baseline,
    to_sarif,
    write_baseline,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rule",
        action="append",
        choices=sorted(RULES),
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (unprovable facts) as failures",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON file of grandfathered finding fingerprints",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the known rules and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(RULES):
            print(name)
        return 0
    project = load_project()
    violations = sorted(
        project.findings + run_lint(project.modules, rules=args.rule),
        key=lambda v: (v.path, v.line, v.rule),
    )
    if args.update_baseline:
        if not args.baseline:
            print(
                "error: --update-baseline requires --baseline PATH",
                file=sys.stderr,
            )
            return 2
        write_baseline(violations, args.baseline)
        print(
            f"baseline {args.baseline} updated with "
            f"{len(violations)} finding(s)",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        violations = suppress_baseline(violations, baseline)
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(to_sarif(violations), indent=2) + "\n"
        )
    for violation in violations:
        print(violation.render())
    checked = ", ".join(args.rule or sorted(RULES))
    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors
    if violations:
        print(
            f"{len(violations)} finding(s): {errors} error(s), "
            f"{warnings} warning(s) [{checked}]",
            file=sys.stderr,
        )
    else:
        print(f"all project invariants hold [{checked}]", file=sys.stderr)
    failing = len(violations) if args.strict else errors
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
