#!/usr/bin/env python3
"""Standalone entry point for the project invariant linter.

Runs the same rules as ``repro lint`` without needing the package
installed — CI and pre-commit hooks call this file directly::

    python tools/lint_rules.py             # all rules
    python tools/lint_rules.py --rule worker-determinism
    python tools/lint_rules.py --list

Exit status: 0 when every invariant holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.lint import RULES, run_lint  # noqa: E402  (path bootstrap above)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rule",
        action="append",
        choices=sorted(RULES),
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the known rules and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(RULES):
            print(name)
        return 0
    violations = run_lint(rules=args.rule)
    for violation in violations:
        print(violation.render())
    checked = ", ".join(args.rule or sorted(RULES))
    if violations:
        print(f"{len(violations)} invariant violation(s) [{checked}]")
        return 1
    print(f"all project invariants hold [{checked}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
