"""Unit tests for the closed-form conservative bounds."""

import math

import pytest

from repro.analysis.proposed.closed_form import (
    closed_form_delay_bound,
    ls_case_b_bound,
)
from repro.errors import AnalysisError
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 8.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 32.0),
        ]
    )


class TestCaseBBound:
    def test_rejects_nls_task(self, ts):
        with pytest.raises(AnalysisError):
            ls_case_b_bound(ts, ts.by_name("a"))

    def test_hand_computed(self, ts):
        marked = ts.with_ls_marks(["a"])
        task = marked.by_name("a")
        # I_0: longest other execution is c (3.0, NLS) vs cancelled lp
        # copy-in (max lp l = 0.4) + pre copy-out (max u = 0.4).
        # I_1: l_a + C_a = 1.2 vs max other l (0.4) + max other u (0.4).
        expected = max(3.0, 0.4 + 0.4) + max(1.2, 0.8) + 0.2
        assert ls_case_b_bound(marked, task) == pytest.approx(expected)

    def test_urgent_ls_blocker_costs_more(self, ts):
        # If the blocking task is itself LS, its interval may include a
        # sequential copy-in.
        marked = ts.with_ls_marks(["a", "c"])
        task = marked.by_name("a")
        expected = max(3.0 + 0.4, 0.4 + 0.4) + max(1.2, 0.8) + 0.2
        assert ls_case_b_bound(marked, task) == pytest.approx(expected)

    def test_single_ls_task(self):
        solo = TaskSet.from_parameters(
            [("s", 3.0, 1.0, 0.5, 20.0, 18.0)]
        ).with_ls_marks(["s"])
        task = solo.by_name("s")
        # I_0: no others, no lp: only the pre-window copy-out (0.5).
        # I_1: l + C = 4.0.  Plus own copy-out 0.5.
        assert ls_case_b_bound(solo, task) == pytest.approx(0.5 + 4.0 + 0.5)


class TestDelayBound:
    def test_single_task(self, single_task_set):
        task = single_task_set[0]
        bound = closed_form_delay_bound(
            single_task_set, task, blocking_intervals=2, urgent_possible=True
        )
        dma = task.copy_in + task.copy_out
        expected = dma + max(task.exec_time, dma) + task.copy_out
        assert bound == pytest.approx(expected)

    def test_more_blockers_cost_more(self, ts):
        task = ts.by_name("a")
        one = closed_form_delay_bound(
            ts, task, blocking_intervals=1, urgent_possible=True,
            deadline_cap=1e9,
        )
        two = closed_form_delay_bound(
            ts, task, blocking_intervals=2, urgent_possible=True,
            deadline_cap=1e9,
        )
        assert two > one

    def test_blocking_capped_by_available_lp(self, ts):
        # 'c' has no lp tasks: asking for 2 blockers must add nothing.
        task = ts.by_name("c")
        none_ = closed_form_delay_bound(
            ts, task, blocking_intervals=0, urgent_possible=True,
            deadline_cap=1e9,
        )
        two = closed_form_delay_bound(
            ts, task, blocking_intervals=2, urgent_possible=True,
            deadline_cap=1e9,
        )
        assert two == pytest.approx(none_)

    def test_divergence_returns_inf(self):
        overload = TaskSet.from_parameters(
            [
                ("x", 9.0, 0.5, 0.5, 10.0, 10.0),
                ("y", 5.0, 0.5, 0.5, 10.0, 10.0),
            ]
        )
        bound = closed_form_delay_bound(
            overload, overload.by_name("y"), 2, True
        )
        assert math.isinf(bound)

    def test_deadline_cap_stops_early(self, ts):
        task = ts.by_name("a")
        bound = closed_form_delay_bound(
            ts, task, blocking_intervals=2, urgent_possible=True,
            deadline_cap=0.1,
        )
        # Either a finite value below ~one iteration or inf; never loops.
        assert bound > 0.1 or math.isinf(bound)
