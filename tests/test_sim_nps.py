"""Unit tests for the NPS simulator."""

import pytest

from repro.model.taskset import TaskSet
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import ReleasePlan, periodic_plan


@pytest.fixture
def two_tasks():
    return TaskSet.from_parameters(
        [
            ("hi", 2.0, 0.5, 0.5, 10.0, 10.0),
            ("lo", 4.0, 0.5, 0.5, 50.0, 50.0),
        ]
    )


class TestNpsSimulator:
    def test_phases_are_serialized(self, two_tasks):
        plan = ReleasePlan(releases={"hi": (0.0,)}, horizon=10.0)
        trace = NpsSimulator(two_tasks).run(plan)
        job = trace.jobs_of("hi")[0]
        assert job.copy_in_start == 0.0
        assert job.copy_in_end == job.exec_start
        assert job.exec_end == job.copy_out_start
        assert job.response_time == pytest.approx(3.0)

    def test_non_preemptive_blocking(self, two_tasks):
        # lo starts at 0; hi released at 1 must wait for lo to finish.
        plan = ReleasePlan(
            releases={"lo": (0.0,), "hi": (1.0,)}, horizon=20.0
        )
        trace = NpsSimulator(two_tasks).run(plan)
        hi = trace.jobs_of("hi")[0]
        lo = trace.jobs_of("lo")[0]
        assert lo.copy_out_end == pytest.approx(5.0)
        assert hi.copy_in_start == pytest.approx(5.0)
        assert hi.response_time == pytest.approx(7.0)

    def test_priority_order_on_simultaneous_release(self, two_tasks):
        plan = ReleasePlan(
            releases={"lo": (0.0,), "hi": (0.0,)}, horizon=20.0
        )
        trace = NpsSimulator(two_tasks).run(plan)
        assert trace.jobs_of("hi")[0].copy_in_start == pytest.approx(0.0)
        assert trace.jobs_of("lo")[0].copy_in_start == pytest.approx(3.0)

    def test_idle_gap_jump(self, two_tasks):
        plan = ReleasePlan(releases={"hi": (0.0, 30.0)}, horizon=40.0)
        trace = NpsSimulator(two_tasks).run(plan)
        jobs = trace.jobs_of("hi")
        assert jobs[1].copy_in_start == pytest.approx(30.0)

    def test_all_jobs_complete(self, two_tasks):
        plan = periodic_plan(two_tasks, horizon=200.0)
        trace = NpsSimulator(two_tasks).run(plan)
        assert len(trace.completed_jobs()) == len(trace.jobs)

    def test_response_never_below_total_cost(self, two_tasks, rng):
        from repro.sim.releases import sporadic_plan

        plan = sporadic_plan(two_tasks, 300.0, rng)
        trace = NpsSimulator(two_tasks).run(plan)
        for job in trace.completed_jobs():
            assert job.response_time >= job.task.total_cost - 1e-9
