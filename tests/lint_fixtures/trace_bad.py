"""True-positive fixture for the trace-contract rule.

Each function commits one distinct contract violation; the tests
inject this module into the real module mapping and assert every one
is found.
"""
from repro.obs import events as obs


def emits_unknown_event() -> None:
    obs.emit("fixture.unknown.event")


def emits_undeclared_payload_key() -> None:
    obs.emit("checkpoint.saved", bogus_key=1)


def emits_wrong_literal_type() -> None:
    obs.emit("point.end", x="not-a-number", failures=0)
