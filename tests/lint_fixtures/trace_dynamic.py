"""Warning-only fixture: a fully dynamic event name.

The parameter has no call sites anywhere, so interprocedural
resolution honestly gives up — the rule must emit a *warning* (which
fails only ``--strict``), never crash and never stay silent.
"""
from repro.obs import events as obs


def fixture_dynamic_emit(fixture_event_name: str) -> None:
    obs.emit(fixture_event_name)
