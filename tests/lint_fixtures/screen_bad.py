"""True-positive fixture for the screen-soundness rule.

Both functions store an ``("lp", ...)`` screening entry — one as a
literal, one through a local — without the ``@bound_producer`` tag.
"""


class FakeCache:
    def put(self, key: str, value: object) -> None:
        self.last = (key, value)


def untagged_screen(cache: FakeCache, key: str) -> None:
    cache.put(key, ("lp", 1.0))


def untagged_screen_via_local(cache: FakeCache, key: str) -> None:
    entry = ("lp", 2.0)
    cache.put(key, entry)
