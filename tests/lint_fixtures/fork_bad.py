"""True-positive fixture for the fork-safety rule.

``LeakyHolder`` smuggles a database connection across the
process-pool boundary through ``work``'s annotation; ``push_scope``
mutates a module-level scope stack outside any context manager.
"""
import sqlite3
from concurrent.futures import ProcessPoolExecutor

_SCOPES: list[object] = []


class LeakyHolder:
    def __init__(self, path: str) -> None:
        self.conn = sqlite3.connect(path)


class CuratedHolder:
    """Holds a handle but curates its pickled state — must NOT flag."""

    def __init__(self, path: str) -> None:
        self.handle = open(path)

    def __getstate__(self) -> dict:
        return {}


def work(holder: "LeakyHolder", curated: CuratedHolder) -> int:
    return 0


def run() -> None:
    with ProcessPoolExecutor() as pool:
        pool.submit(work, LeakyHolder("x.db"), CuratedHolder("y.txt"))


def push_scope() -> None:
    _SCOPES.append(object())


class SpawnLeaky:
    """Holds an open handle shipped through a Process target."""

    def __init__(self, path: str) -> None:
        self.log = open(path)


def spawned_work(holder: "SpawnLeaky") -> int:
    return 0


def spawn() -> None:
    import multiprocessing

    multiprocessing.Process(
        target=spawned_work, args=(SpawnLeaky("z.txt"),)
    ).start()
    multiprocessing.Process(target=lambda: None).start()
