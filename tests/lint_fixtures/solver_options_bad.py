"""True-positive fixture for the cache-key-solver-options rule.

A ``_solver_signature`` frozen at its pre-protocol-zoo shape: it signs
the solver knobs but *omits* the protocol-specific
``preemption_thresholds`` and ``regulation`` fields. Injected over the
real ``repro.analysis.proposed.response_time`` module, it must make
the rule flag exactly those two fields — proving the lint catches the
omission that would let threshold/bandwidth sweeps share persistent
cache entries.
"""


class StaleSignatureAnalysis:
    def __init__(self, options, method="milp"):
        self.options = options
        self.method = method

    def _solver_signature(self) -> tuple:
        return (
            self.method,
            self.options.time_limit,
            self.options.mip_rel_gap,
            repr(self.options.resilience),
        )
