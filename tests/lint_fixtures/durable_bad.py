"""Fixture for the durable-write rule: broken and compliant shapes."""
import os


def unsafe_publish(path: str, text: str) -> None:
    """No fsync at all: both obligations must be flagged."""
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)


def branchy_publish(path: str, text: str, quick: bool) -> None:
    """fsync on only one path: the must-analysis has to catch it."""
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
        if not quick:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    os.fsync(os.open(path, os.O_RDONLY))


def safe_publish(path: str, text: str) -> None:
    """The full protocol: must pass with no findings."""
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    os.fsync(os.open(path, os.O_RDONLY))
