"""Resilient backend: watchdog, retries, and the safe-degradation chain."""

import time

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.proposed.closed_form import closed_form_delay_bound
from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.errors import BackendUnavailableError
from repro.milp import (
    DegradationLevel,
    HighsBackend,
    LpRelaxationBackend,
    MilpModel,
    ResilienceConfig,
    ResilientBackend,
    SolveStatus,
)
from repro.milp.model import MilpBackend
from repro.model.taskset import TaskSet


@pytest.fixture
def reference_taskset():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.4, 0.4, 20.0, 16.0),
            ("c", 3.0, 0.5, 0.5, 40.0, 35.0),
        ]
    )


@pytest.fixture
def reference_milp(reference_taskset):
    task = reference_taskset.by_name("c")
    window = task.deadline - task.exec_time - task.copy_out
    built = build_delay_milp(reference_taskset, task, window, AnalysisMode.NLS)
    return built.model


class _AlwaysFail(MilpBackend):
    name = "always_fail"

    def __init__(self):
        self.calls = 0

    def solve(self, model):
        self.calls += 1
        raise BackendUnavailableError("injected fault")


class _FlakyBackend(MilpBackend):
    """Fails the first ``failures`` solves, then delegates to HiGHS."""

    name = "flaky"

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def solve(self, model):
        self.calls += 1
        if self.calls <= self.failures:
            raise BackendUnavailableError(f"injected fault #{self.calls}")
        return HighsBackend().solve(model)


class _HangingBackend(MilpBackend):
    name = "hanging"

    def __init__(self, seconds=10.0):
        self.seconds = seconds

    def solve(self, model):
        time.sleep(self.seconds)
        return HighsBackend().solve(model)


class TestRetries:
    def test_transient_failures_are_retried(self, reference_milp):
        flaky = _FlakyBackend(failures=2)
        sleeps = []
        backend = ResilientBackend(
            flaky, max_retries=2, backoff_base=0.01, sleep=sleeps.append
        )
        solution = backend.solve(reference_milp)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.degradation is DegradationLevel.EXACT
        assert flaky.calls == 3

    def test_backoff_is_exponential(self, reference_milp):
        sleeps = []
        backend = ResilientBackend(
            _FlakyBackend(failures=2),
            max_retries=2,
            backoff_base=0.01,
            backoff_factor=2.0,
            backoff_jitter=0.0,
            sleep=sleeps.append,
        )
        backend.solve(reference_milp)
        assert sleeps == [0.01, 0.02]

    def test_no_retry_on_definitive_result(self, reference_milp):
        flaky = _FlakyBackend(failures=0)
        backend = ResilientBackend(flaky, max_retries=3, sleep=lambda s: None)
        backend.solve(reference_milp)
        assert flaky.calls == 1

    def test_perturbed_retry_disables_presolve(self):
        backend = ResilientBackend(HighsBackend(time_limit=2.0))
        perturbed = backend._perturbed(1)
        assert perturbed.extra_options["presolve"] is False
        assert perturbed.time_limit == pytest.approx(4.0)


class TestWatchdog:
    def test_watchdog_falls_back_on_hang(self, reference_milp):
        backend = ResilientBackend(
            _HangingBackend(seconds=30.0),
            watchdog_seconds=0.2,
            max_retries=0,
            fallbacks=[(DegradationLevel.LP_RELAXATION, LpRelaxationBackend())],
            sleep=lambda s: None,
        )
        start = time.perf_counter()
        solution = backend.solve(reference_milp)
        assert time.perf_counter() - start < 10.0
        assert solution.degradation is DegradationLevel.LP_RELAXATION

    def test_watchdog_exhaustion_raises_with_history(self, reference_milp):
        backend = ResilientBackend(
            _AlwaysFail(),
            max_retries=1,
            fallbacks=[],
            sleep=lambda s: None,
        )
        with pytest.raises(BackendUnavailableError) as excinfo:
            backend.solve(reference_milp)
        assert "injected fault" in str(excinfo.value)
        assert "all resilience levels exhausted" in str(excinfo.value)


class TestFallbackChainIsSafe:
    """Every degradation level upper-bounds the exact MILP objective."""

    def test_dual_bound_level(self, reference_milp):
        exact = HighsBackend().solve(reference_milp).objective
        backend = ResilientBackend(_AlwaysFail(), max_retries=0, sleep=lambda s: None)
        solution = backend.solve(reference_milp)
        assert solution.degradation is DegradationLevel.DUAL_BOUND
        assert solution.objective >= exact - 1e-9

    def test_lp_relaxation_level(self, reference_milp):
        exact = HighsBackend().solve(reference_milp).objective
        backend = ResilientBackend(
            _AlwaysFail(),
            max_retries=0,
            fallbacks=[(DegradationLevel.LP_RELAXATION, LpRelaxationBackend())],
            sleep=lambda s: None,
        )
        solution = backend.solve(reference_milp)
        assert solution.degradation is DegradationLevel.LP_RELAXATION
        assert solution.objective >= exact - 1e-9

    def test_closed_form_level(self, reference_taskset, reference_milp):
        """The closed-form rung upper-bounds the exact MILP *fixpoint*.

        Unlike the solver rungs (compared objective-to-objective at the
        same window), the closed form is itself a fixpoint analysis, so
        the safety statement is at the WCRT level.
        """
        task = reference_taskset.by_name("c")
        exact_wcrt = (
            ProposedAnalysis(AnalysisOptions(stop_at_deadline=False))
            .response_time(reference_taskset, task)
            .wcrt
        )
        cf_wcrt = closed_form_delay_bound(
            reference_taskset, task, blocking_intervals=2, urgent_possible=True
        )
        assert cf_wcrt >= exact_wcrt - 1e-9

        backend = ResilientBackend(
            _AlwaysFail(),
            max_retries=0,
            fallbacks=[],
            closed_form_objective=lambda: cf_wcrt - task.copy_out,
            sleep=lambda s: None,
        )
        solution = backend.solve(reference_milp)
        assert solution.degradation is DegradationLevel.CLOSED_FORM
        assert solution.backend == "closed_form"
        assert solution.objective + task.copy_out >= exact_wcrt - 1e-9

    def test_max_degradation_truncates_chain(self, reference_milp):
        backend = ResilientBackend(
            _AlwaysFail(),
            max_retries=0,
            max_degradation=DegradationLevel.DUAL_BOUND,
            closed_form_objective=lambda: 1.0,
            sleep=lambda s: None,
        )
        assert [level for level, _ in backend.fallbacks] == [
            DegradationLevel.DUAL_BOUND
        ]


class TestAnalysisIntegration:
    def test_options_resilience_routes_solves(self, reference_taskset):
        """With a dead solver, the analysis still upper-bounds the exact one."""
        # True fixpoints (no deadline early-out) so the two runs are
        # comparable point-for-point.
        exact = ProposedAnalysis(
            AnalysisOptions(stop_at_deadline=False)
        ).analyze(reference_taskset)
        degraded = ProposedAnalysis(
            AnalysisOptions(
                stop_at_deadline=False,
                resilience=ResilienceConfig(max_retries=0, backoff_base=0.0),
            ),
            backend_factory=_AlwaysFail,
        ).analyze(reference_taskset)
        for task in reference_taskset:
            exact_wcrt = exact.result_for(task.name).wcrt
            degraded_wcrt = degraded.result_for(task.name).wcrt
            assert degraded_wcrt >= exact_wcrt - 1e-9

    def test_resilience_off_by_default(self, reference_taskset):
        analysis = ProposedAnalysis(AnalysisOptions(), backend_factory=_AlwaysFail)
        with pytest.raises(BackendUnavailableError):
            analysis.analyze(reference_taskset)

    def test_from_config_copies_knobs(self):
        config = ResilienceConfig(
            watchdog_seconds=1.5, max_retries=5,
            max_degradation=DegradationLevel.LP_RELAXATION,
        )
        backend = ResilientBackend.from_config(HighsBackend(), config)
        assert backend.watchdog_seconds == 1.5
        assert backend.max_retries == 5
        assert all(
            level <= DegradationLevel.LP_RELAXATION
            for level, _ in backend.fallbacks
        )


class TestDegradationRecording:
    def test_exact_solution_reports_exact_level(self):
        m = MilpModel()
        x = m.var("x", 0.0, 2.0)
        m.maximize(x)
        solution = ResilientBackend(HighsBackend()).solve(m)
        assert solution.degradation is DegradationLevel.EXACT
        assert solution.objective == pytest.approx(2.0)
