"""Chains + LS marking integration: the R2/eager-copy-out payoff.

The paper motivates eager copy-outs (R2) with data-driven chains. These
tests exercise the chain bounds on workloads where the greedy LS search
changes the marking — the chain bound must follow the final marking's
WCRTs, and measured propagation must respect it under the proposed
protocol with cancellations happening on the wire.
"""

import numpy as np
import pytest

from repro import TaskSet, greedy_ls_assignment
from repro.chains import TaskChain, chain_reaction_bound
from repro.chains.measurement import max_reaction_time, measure_reaction_times
from repro.sim.interval_sim import ProposedSimulator
from repro.sim.releases import sporadic_plan
from repro.sim.validate import check_trace


@pytest.fixture
def workload():
    # "tight" forces the greedy search to mark it LS; the chain spans
    # the other three tasks.
    return TaskSet.from_parameters(
        [
            ("tight", 0.8, 0.10, 0.10, 30.0, 7.0),
            ("sense", 1.0, 0.15, 0.15, 15.0, 14.0),
            ("plan", 2.0, 0.30, 0.30, 30.0, 28.0),
            ("act", 1.5, 0.20, 0.20, 30.0, 29.0),
        ]
    )


class TestChainWithGreedyMarks:
    def test_bound_uses_final_marking(self, workload):
        outcome = greedy_ls_assignment(workload)
        assert outcome.schedulable
        marked = outcome.taskset
        chain = TaskChain("pipe", marked, ("sense", "plan", "act"))
        bound = chain_reaction_bound(chain, outcome.final_result)
        assert bound.total > 0
        # decomposition covers the three stages exactly
        assert set(bound.per_stage) == {"sense", "plan", "act"}

    def test_measured_propagation_within_bound(self, workload):
        outcome = greedy_ls_assignment(workload)
        marked = outcome.taskset
        chain = TaskChain("pipe", marked, ("sense", "plan", "act"))
        bound = chain_reaction_bound(chain, outcome.final_result)
        rng = np.random.default_rng(13)
        trace = ProposedSimulator(marked).run(
            sporadic_plan(marked, 1500.0, rng)
        )
        check_trace(trace)
        measured = max_reaction_time(chain, trace)
        assert measured <= bound.total + 1e-6

    def test_samples_are_causal(self, workload):
        outcome = greedy_ls_assignment(workload)
        marked = outcome.taskset
        chain = TaskChain("pipe", marked, ("sense", "plan", "act"))
        rng = np.random.default_rng(14)
        trace = ProposedSimulator(marked).run(
            sporadic_plan(marked, 800.0, rng)
        )
        for sample in measure_reaction_times(chain, trace):
            assert sample.completion_time > sample.input_time
            # Stages appear in dataflow order within the path.
            stages = [p.rsplit("#", 1)[0] for p in sample.path]
            assert stages == ["sense", "plan", "act"]
