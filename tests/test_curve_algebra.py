"""Unit tests for arrival-curve combinators."""

import pytest
from hypothesis import given, strategies as st

from repro.curves import (
    SporadicArrival,
    curve_max,
    curve_min,
    curve_sum,
    pseudo_inverse,
    scale,
)
from repro.errors import CurveError


@pytest.fixture
def a():
    return SporadicArrival(10.0)


@pytest.fixture
def b():
    return SporadicArrival(4.0)


class TestCombinators:
    def test_sum_adds_pointwise(self, a, b):
        s = curve_sum(a, b)
        for delta in (0.0, 3.0, 10.0, 25.0):
            assert s.eta(delta) == a.eta(delta) + b.eta(delta)

    def test_max_pointwise(self, a, b):
        m = curve_max(a, b)
        for delta in (0.0, 3.0, 10.0, 25.0):
            assert m.eta(delta) == max(a.eta(delta), b.eta(delta))

    def test_min_pointwise(self, a, b):
        m = curve_min(a, b)
        for delta in (0.0, 3.0, 10.0, 25.0):
            assert m.eta(delta) == min(a.eta(delta), b.eta(delta))

    def test_scale(self, a):
        doubled = scale(a, 2)
        for delta in (1.0, 10.0, 33.3):
            assert doubled.eta(delta) == 2 * a.eta(delta)

    def test_scale_rejects_nonpositive(self, a):
        with pytest.raises(CurveError):
            scale(a, 0)
        with pytest.raises(CurveError):
            scale(a, -3)

    def test_empty_combination_rejected(self):
        with pytest.raises(CurveError):
            curve_sum()

    def test_nested_combinations(self, a, b):
        nested = curve_sum(curve_max(a, b), scale(a, 3))
        assert nested.eta(12.0) == max(a.eta(12.0), b.eta(12.0)) + 3 * a.eta(12.0)

    def test_derived_curve_zero_window(self, a, b):
        assert curve_sum(a, b).eta(0.0) == 0
        assert curve_max(a, b).eta(-1.0) == 0

    def test_repr_mentions_operands(self, a, b):
        assert "curve_sum" in repr(curve_sum(a, b))


class TestPseudoInverse:
    def test_inverse_of_sporadic(self, a):
        assert a.eta(pseudo_inverse(a, 3)) >= 3

    def test_inverse_of_derived(self, a, b):
        s = curve_sum(a, b)
        for n in (1, 2, 5, 9):
            delta = pseudo_inverse(s, n)
            assert s.eta(delta) >= n

    def test_inverse_of_zero(self, a):
        assert pseudo_inverse(a, 0) == 0.0

    @given(st.integers(1, 30), st.floats(0.5, 50.0))
    def test_inverse_is_tightish(self, n, period):
        curve = SporadicArrival(period)
        delta = pseudo_inverse(curve, n)
        assert curve.eta(delta) >= n
        # Slightly smaller windows must not reach n events.
        assert curve.eta(delta * 0.5) <= n
