"""Unit tests for trace records."""

import math

import pytest

from repro.errors import SimulationError
from repro.model.task import Task
from repro.sim.trace import Interval, Job, Trace


@pytest.fixture
def task():
    return Task.sporadic("t", 2.0, 10.0, copy_in=0.5, copy_out=0.5)


def _completed_job(task, release=0.0, finish=5.0, index=0):
    return Job(
        task=task,
        release=release,
        index=index,
        copy_in_start=release,
        copy_in_end=release + 0.5,
        exec_start=release + 0.5,
        exec_end=release + 2.5,
        exec_interval=0,
        copy_out_start=finish - 0.5,
        copy_out_end=finish,
    )


class TestJob:
    def test_response_time(self, task):
        job = _completed_job(task, release=1.0, finish=6.0)
        assert job.response_time == pytest.approx(5.0)

    def test_incomplete_job_raises(self, task):
        job = Job(task=task, release=0.0, index=0)
        assert not job.completed
        with pytest.raises(SimulationError):
            _ = job.response_time

    def test_name_includes_index(self, task):
        assert Job(task=task, release=0.0, index=3).name == "t#3"

    def test_cancelled_flag(self, task):
        job = Job(task=task, release=0.0, index=0)
        assert not job.was_cancelled
        job.cancelled_copy_ins.append((1.0, 1.5))
        assert job.was_cancelled


class TestInterval:
    def test_length(self):
        interval = Interval(index=0, start=2.0, end=5.5)
        assert interval.length == pytest.approx(3.5)


class TestTrace:
    def test_response_times_and_misses(self, task):
        ok = _completed_job(task, release=0.0, finish=5.0, index=0)
        late = _completed_job(task, release=20.0, finish=32.0, index=1)
        trace = Trace(jobs=[ok, late], protocol="test")
        assert trace.max_response_time("t") == pytest.approx(12.0)
        assert trace.deadline_misses() == [late]

    def test_max_response_no_completions(self, task):
        trace = Trace(jobs=[Job(task=task, release=0.0, index=0)])
        assert math.isinf(trace.max_response_time("t"))
        assert trace.max_response_time("t") < 0

    def test_jobs_of_sorted_by_release(self, task):
        j2 = _completed_job(task, release=10.0, finish=15.0, index=1)
        j1 = _completed_job(task, release=0.0, finish=5.0, index=0)
        trace = Trace(jobs=[j2, j1])
        assert [j.release for j in trace.jobs_of("t")] == [0.0, 10.0]

    def test_interval_at(self):
        trace = Trace(
            jobs=[],
            intervals=[
                Interval(index=0, start=0.0, end=2.0),
                Interval(index=1, start=2.0, end=5.0),
            ],
        )
        assert trace.interval_at(1.0).index == 0
        assert trace.interval_at(2.0).index == 1
        assert trace.interval_at(7.0) is None

    def test_repr(self, task):
        trace = Trace(jobs=[_completed_job(task)], protocol="nps")
        assert "nps" in repr(trace)
