"""Unit tests for the trace-event contract, recorder, and JSONL sink."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    EVENT_VERSION,
    EventRecorder,
    TraceWriter,
    active_recorder,
    emit,
    is_runtime_event,
    read_trace,
    recording,
    require_valid_event,
    span,
    validate_event,
)


class TestSchema:
    def test_minimal_event_valid(self):
        assert validate_event({"v": EVENT_VERSION, "name": "solve", "t": 1.5}) == []

    def test_full_event_valid(self):
        event = {
            "v": EVENT_VERSION,
            "name": "solve",
            "t": 1.5,
            "dur": 0.25,
            "run": "abc",
            "point": 0,
            "unit": 3,
            "task": "t1",
            "f": {"status": "optimal"},
        }
        assert validate_event(event) == []

    def test_rejects_wrong_version(self):
        assert validate_event({"v": 99, "name": "x", "t": 0.0})

    def test_rejects_missing_required(self):
        assert validate_event({"v": EVENT_VERSION, "t": 0.0})
        assert validate_event({"v": EVENT_VERSION, "name": "x"})

    def test_rejects_unknown_fields(self):
        problems = validate_event(
            {"v": EVENT_VERSION, "name": "x", "t": 0.0, "bogus": 1}
        )
        assert any("bogus" in p for p in problems)

    def test_rejects_bad_types(self):
        assert validate_event({"v": EVENT_VERSION, "name": "x", "t": "now"})
        assert validate_event(
            {"v": EVENT_VERSION, "name": "x", "t": 0.0, "dur": -1.0}
        )
        assert validate_event(
            {"v": EVENT_VERSION, "name": "x", "t": 0.0, "point": -1}
        )
        assert validate_event({"v": EVENT_VERSION, "name": "", "t": 0.0})
        assert validate_event("not a dict")

    def test_require_valid_event_raises(self):
        with pytest.raises(ObservabilityError, match="somewhere"):
            require_valid_event({"v": 0}, where="somewhere")

    def test_runtime_prefixes(self):
        assert is_runtime_event("worker.unit")
        assert is_runtime_event("gen.tasksets")
        assert is_runtime_event("resilience.retry")
        assert is_runtime_event("highs.solve")
        assert not is_runtime_event("solve")
        assert not is_runtime_event("cache.hits")
        assert not is_runtime_event("fixpoint.iteration")


class TestRecorder:
    def test_emit_builds_valid_events(self):
        rec = EventRecorder()
        rec.emit("solve", dur=0.5, task="t1", status="optimal")
        (event,) = rec.events
        assert validate_event(event) == []
        assert event["f"] == {"status": "optimal"}

    def test_span_measures_duration(self):
        ticks = iter([10.0, 13.5, 13.5])  # start, dur end, event t
        rec = EventRecorder(clock=lambda: next(ticks))
        with rec.span("phase"):
            pass
        (event,) = rec.events
        assert event["dur"] == 3.5

    def test_drain_clears_buffer(self):
        rec = EventRecorder()
        rec.emit("a")
        assert len(rec.drain()) == 1
        assert rec.events == ()

    def test_module_emit_is_noop_without_scope(self):
        assert active_recorder() is None
        emit("solve")  # must not raise
        with span("phase"):
            pass

    def test_recording_scope_captures_module_emits(self):
        with recording() as rec:
            emit("solve", status="optimal")
            with span("phase", task="t1"):
                emit("inner")
        names = [e["name"] for e in rec.events]
        assert names == ["solve", "inner", "phase"]
        assert active_recorder() is None

    def test_module_emit_forwards_full_envelope(self):
        # Regression pin: point/unit passed through the module-level
        # emit() must land as top-level envelope keys, not in f{}.
        with recording() as rec:
            emit("solve", dur=0.5, task="t1", point=3, unit=1, note="x")
        (event,) = rec.events
        assert event["point"] == 3
        assert event["unit"] == 1
        assert event["task"] == "t1"
        assert event["dur"] == 0.5
        assert event["f"] == {"note": "x"}
        assert validate_event(event) == []

    def test_nested_scopes_innermost_wins(self):
        with recording() as outer:
            with recording() as inner:
                emit("x")
            emit("y")
        assert [e["name"] for e in inner.events] == ["x"]
        assert [e["name"] for e in outer.events] == ["y"]


class TestTraceWriter:
    def test_writes_valid_sorted_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, run_id="run1") as writer:
            writer.emit("run.start", points=2)
            writer.emit("solve", dur=0.1, point=1, unit=0, task="t1")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            event = json.loads(line)
            assert validate_event(event) == []
            assert event["run"] == "run1"
            assert list(event) == sorted(event)

    def test_write_events_stamps_correlation_ids(self, tmp_path):
        rec = EventRecorder()
        rec.emit("solve", task="t1")
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, run_id="r") as writer:
            writer.write_events(rec.drain(), point=3, unit=7)
        (event,) = read_trace(path)
        assert (event["point"], event["unit"], event["run"]) == (3, 7, "r")

    def test_closed_writer_refuses_writes(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.jsonl", run_id="r")
        writer.close()
        with pytest.raises(ObservabilityError, match="closed"):
            writer.emit("x")

    def test_unopenable_path_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot open"):
            TraceWriter(tmp_path / "no" / "dir" / "t.jsonl", run_id="r")

    def test_invalid_event_rejected_before_write(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path, run_id="r") as writer:
            with pytest.raises(ObservabilityError):
                writer.write({"v": EVENT_VERSION, "name": "x"})  # no t
        assert path.read_text() == ""


class TestReadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError, match="not found"):
            read_trace(tmp_path / "nope.jsonl")

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"v": 1, "name": "a", "t": 0}\nnot json\n')
        with pytest.raises(ObservabilityError, match=":2"):
            read_trace(path)

    def test_invalid_event_reports_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"v": 1, "name": "a", "t": 0}\n{"v": 1}\n')
        with pytest.raises(ObservabilityError, match=":2"):
            read_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"v": 1, "name": "a", "t": 0}\n\n')
        assert len(read_trace(path)) == 1
