"""Unit tests for the experiment harness (configs, runner, reports)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    FIGURE2_INSETS,
    ExperimentConfig,
    SweepPoint,
    ascii_plot,
    figure2_config,
    render_sweep_table,
    run_experiment,
    run_point,
    sweep_to_csv,
)
from repro.experiments.runner import compare_on_taskset
from repro.generator.taskset_gen import GenerationConfig
from repro.model.taskset import TaskSet


@pytest.fixture
def tiny_experiment():
    points = tuple(
        SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
        for u in (0.2, 0.4)
    )
    return ExperimentConfig(
        name="mini",
        x_label="U",
        points=points,
        sets_per_point=3,
        seed=11,
        method="closed_form",  # keep the unit test fast
    )


class TestConfigs:
    def test_all_six_insets_defined(self):
        assert set(FIGURE2_INSETS) == {
            "fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2f",
        }

    def test_figure2_config_builds(self):
        cfg = figure2_config("fig2e", sets_per_point=5)
        assert cfg.x_label == "gamma"
        assert [p.x for p in cfg.points] == [0.1, 0.2, 0.3, 0.4, 0.5]
        assert cfg.sets_per_point == 5

    def test_unknown_inset(self):
        with pytest.raises(ExperimentError):
            figure2_config("fig2z")

    def test_gamma_sweep_varies_gamma(self):
        cfg = figure2_config("fig2e")
        gammas = [p.generation.gamma for p in cfg.points]
        assert gammas == [0.1, 0.2, 0.3, 0.4, 0.5]

    def test_beta_sweep_varies_beta(self):
        cfg = figure2_config("fig2f")
        betas = [p.generation.beta for p in cfg.points]
        assert betas == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_u_sweeps_vary_utilization(self):
        for inset in ("fig2a", "fig2b", "fig2c", "fig2d"):
            cfg = figure2_config(inset)
            xs = [p.x for p in cfg.points]
            assert xs == sorted(xs)
            assert all(p.generation.utilization == p.x for p in cfg.points)

    def test_scaled_changes_sample_count(self):
        cfg = figure2_config("fig2a").scaled(7)
        assert cfg.sets_per_point == 7

    def test_rejects_empty_sweep(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(name="x", x_label="U", points=())


class TestRunner:
    def test_run_point_ratios_in_unit_interval(self, tiny_experiment):
        result = run_point(
            tiny_experiment.points[0], tiny_experiment, seed=1
        )
        for protocol in tiny_experiment.protocols:
            assert 0.0 <= result.ratios[protocol] <= 1.0
        assert result.sets_evaluated == 3

    def test_run_experiment_collects_all_points(self, tiny_experiment):
        seen = []
        result = run_experiment(tiny_experiment, progress=seen.append)
        assert len(result.points) == 2
        assert len(seen) == 2
        assert result.x_values == [0.2, 0.4]

    def test_series_and_advantage(self, tiny_experiment):
        result = run_experiment(tiny_experiment)
        series = result.series("proposed")
        assert [x for x, _ in series] == [0.2, 0.4]
        gap = result.advantage("proposed", "wasly")
        assert -1.0 <= gap <= 1.0

    def test_compare_on_taskset(self):
        ts = TaskSet.from_parameters(
            [
                ("a", 1.0, 0.1, 0.1, 10.0, 9.0),
                ("b", 2.0, 0.2, 0.2, 20.0, 18.0),
            ]
        )
        verdicts = compare_on_taskset(ts)
        assert set(verdicts) == {"nps", "wasly", "proposed"}
        assert all(isinstance(v, bool) for v in verdicts.values())


class TestReports:
    @pytest.fixture
    def result(self, tiny_experiment):
        return run_experiment(tiny_experiment)

    def test_csv_round_shape(self, result):
        csv_text = sweep_to_csv(result)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("U,")
        assert len(lines) == 3  # header + 2 points

    def test_table_contains_protocols(self, result):
        table = render_sweep_table(result)
        for protocol in result.config.protocols:
            assert protocol in table
        assert "max advantage" in table

    def test_ascii_plot_dimensions(self, result):
        art = ascii_plot(result, width=40, height=8)
        lines = art.splitlines()
        assert len(lines) == 8 + 4  # rows + title + axis + legend
        assert "marks:" in lines[-1]
