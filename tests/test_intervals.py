"""Unit tests for the interval-count bounds (Theorem 1 / Corollary 1)."""

import pytest

from repro.analysis.proposed.intervals import (
    interval_count_ls,
    interval_count_nls,
)
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.1, 0.1, 10.0, 8.0),
            ("b", 1.0, 0.1, 0.1, 20.0, 16.0),
            ("c", 1.0, 0.1, 0.1, 40.0, 32.0),
            ("d", 1.0, 0.1, 0.1, 80.0, 64.0),
        ]
    )


class TestNlsCount:
    def test_matches_theorem_for_middle_task(self, ts):
        c = ts.by_name("c")  # hp = {a, b}, lp = {d}
        window = 15.0
        expected = (ts.by_name("a").eta(15.0) + 1) + (
            ts.by_name("b").eta(15.0) + 1
        )
        # one lp task -> one blocking interval plus the release bubble,
        # +1 for the task's own execution interval
        assert interval_count_nls(ts, c, window) == expected + 2 + 1

    def test_two_blockers_when_two_lp_exist(self, ts):
        b = ts.by_name("b")  # lp = {c, d}
        window = 5.0
        interference = ts.by_name("a").eta(5.0) + 1
        assert interval_count_nls(ts, b, window) == interference + 2 + 1

    def test_highest_priority_counts_only_blocking(self, ts):
        a = ts.by_name("a")
        assert interval_count_nls(ts, a, 5.0) == 2 + 1

    def test_floor_of_two_for_isolated_task(self, single_task_set):
        task = single_task_set[0]
        assert interval_count_nls(single_task_set, task, 5.0) == 2

    def test_grows_with_window(self, ts):
        d = ts.by_name("d")
        assert interval_count_nls(ts, d, 50.0) > interval_count_nls(
            ts, d, 5.0
        )


class TestLsCount:
    def test_one_fewer_blocker_than_nls(self, ts):
        b = ts.by_name("b")
        window = 5.0
        assert (
            interval_count_nls(ts, b, window)
            - interval_count_ls(ts, b, window)
            == 1
        )

    def test_no_lp_tasks_one_fewer_than_nls(self, ts):
        # With no lp tasks, NLS still pays the release bubble; an LS
        # task cannot (a bubble would have promoted it: case (b)).
        d = ts.by_name("d")  # lowest priority: no lp at all
        window = 5.0
        assert (
            interval_count_nls(ts, d, window)
            - interval_count_ls(ts, d, window)
            == 1
        )

    def test_floor_of_two(self, single_task_set):
        task = single_task_set[0]
        assert interval_count_ls(single_task_set, task, 1.0) == 2
