"""Unit tests for the LP-relaxation backend."""

import pytest

from repro.milp import (
    HighsBackend,
    LpRelaxationBackend,
    MilpModel,
    SolveStatus,
)


class TestLpRelaxation:
    def test_relaxed_maximum_at_least_integer_optimum(self):
        m = MilpModel()
        x = m.binary("x")
        y = m.binary("y")
        m.add(2 * x + 3 * y <= 4)
        m.maximize(5 * x + 4 * y)
        exact = m.solve(HighsBackend())
        relaxed = m.solve(LpRelaxationBackend())
        assert relaxed.status is SolveStatus.OPTIMAL
        assert relaxed.objective >= exact.objective - 1e-9

    def test_fractional_values_allowed(self):
        m = MilpModel()
        x = m.binary("x")
        m.add(2 * x <= 1)
        m.maximize(x)
        relaxed = m.solve(LpRelaxationBackend())
        assert relaxed[x] == pytest.approx(0.5)

    def test_pure_lp_matches_exact(self):
        m = MilpModel()
        x = m.continuous("x", 0, 7)
        m.maximize(2 * x)
        assert m.solve(LpRelaxationBackend()).objective == pytest.approx(14.0)

    def test_infeasible(self):
        m = MilpModel()
        x = m.continuous("x", 0, 1)
        m.add(x >= 3)
        m.maximize(x)
        assert (
            m.solve(LpRelaxationBackend()).status is SolveStatus.INFEASIBLE
        )

    def test_unbounded(self):
        m = MilpModel()
        x = m.continuous("x")
        m.maximize(x)
        assert (
            m.solve(LpRelaxationBackend()).status is SolveStatus.UNBOUNDED
        )

    def test_objective_constant(self):
        m = MilpModel()
        x = m.continuous("x", 0, 1)
        m.maximize(x + 10)
        assert m.solve(LpRelaxationBackend()).objective == pytest.approx(11.0)

    def test_on_delay_milp(self, tiny_taskset):
        from repro.analysis.proposed.formulation import (
            AnalysisMode,
            build_delay_milp,
        )

        task = tiny_taskset.by_name("mid")
        built = build_delay_milp(
            tiny_taskset, task, 10.0, AnalysisMode.NLS
        )
        exact = built.model.solve(HighsBackend())
        relaxed = built.model.solve(LpRelaxationBackend())
        assert relaxed.objective >= exact.objective - 1e-9
        assert relaxed.runtime_seconds <= exact.runtime_seconds + 1.0
