"""Edge cases of reporting and curve validation helpers."""

import pytest

from repro.curves import SporadicArrival, StaircaseCurve
from repro.errors import CurveError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.experiments.report import ascii_plot, render_sweep_table
from repro.experiments.runner import PointResult, SweepResult
from repro.generator.taskset_gen import GenerationConfig


def _result(points):
    config = ExperimentConfig(
        name="edge",
        x_label="U",
        points=tuple(
            SweepPoint(x, GenerationConfig(utilization=max(x, 0.1)))
            for x, _ in points
        ),
        sets_per_point=4,
    )
    return SweepResult(
        config=config,
        points=tuple(
            PointResult(
                x=x,
                ratios={p: r for p in config.protocols},
                sets_evaluated=4,
                elapsed_seconds=0.1,
            )
            for x, r in points
        ),
    )


class TestReportEdges:
    def test_single_point_plot(self):
        art = ascii_plot(_result([(0.5, 0.75)]), width=20, height=6)
        assert "0.5" in art

    def test_ratio_extremes_land_on_grid(self):
        art = ascii_plot(_result([(0.1, 0.0), (0.9, 1.0)]), width=30, height=5)
        lines = art.splitlines()
        assert lines[1].startswith(" 1.00 |")  # top row exists
        assert any("|" in line for line in lines)

    def test_table_single_point(self):
        table = render_sweep_table(_result([(0.3, 0.5)]))
        assert "0.3" in table
        assert "max advantage" in table


class TestCurveValidation:
    def test_validate_accepts_sporadic(self):
        SporadicArrival(10.0).validate()

    def test_validate_rejects_broken_curve(self):
        class Broken(SporadicArrival):
            def eta(self, delta):
                return 1  # eta(0) != 0

        with pytest.raises(CurveError):
            Broken(10.0).validate()

    def test_validate_rejects_nonmonotone(self):
        class Wobbly(SporadicArrival):
            def eta(self, delta):
                if delta <= 0:
                    return 0
                return 5 if delta < 50 else 2

        with pytest.raises(CurveError):
            Wobbly(10.0).validate()

    def test_staircase_delta_min_generic_bisection(self):
        curve = StaircaseCurve([(0.0, 1), (5.0, 2), (10.0, 3)])
        for n in (1, 2, 3, 5):
            assert curve.eta(curve.delta_min(n)) >= n
