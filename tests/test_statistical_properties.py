"""Statistical and consistency properties of generators and curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves import PeriodicJitterArrival, SporadicArrival
from repro.generator import GenerationConfig, generate_tasksets, uunifast


class TestUUnifastDistribution:
    def test_mean_per_task_utilisation(self):
        rng = np.random.default_rng(0)
        n, U, draws = 5, 0.8, 3000
        samples = np.array([uunifast(n, U, rng) for _ in range(draws)])
        # Each slot has expectation U/n under UUnifast.
        np.testing.assert_allclose(
            samples.mean(axis=0), [U / n] * n, atol=0.02
        )

    def test_no_systematic_ordering_bias_in_extremes(self):
        rng = np.random.default_rng(1)
        n, draws = 4, 2000
        argmax_counts = np.zeros(n)
        for _ in range(draws):
            utils = uunifast(n, 0.6, rng)
            argmax_counts[int(np.argmax(utils))] += 1
        # The maximum lands in every slot a non-trivial fraction of the
        # time (UUnifast is exchangeable in distribution).
        assert argmax_counts.min() / draws > 0.1


class TestGeneratedWorkloadStatistics:
    def test_deadline_band_respected_across_many_sets(self):
        config = GenerationConfig(n=6, utilization=0.5, gamma=0.2, beta=0.25)
        for ts in generate_tasksets(config, 20, seed=5):
            for task in ts:
                low = task.exec_time + 0.25 * (task.period - task.exec_time)
                assert low - 1e-9 <= task.deadline <= task.period + 1e-9

    def test_beta_one_deadline_equals_period(self):
        config = GenerationConfig(n=4, utilization=0.4, beta=1.0)
        for ts in generate_tasksets(config, 5, seed=6):
            for task in ts:
                assert task.deadline == pytest.approx(task.period)

    def test_gamma_zero_means_no_memory_phases(self):
        config = GenerationConfig(n=4, utilization=0.4, gamma=0.0)
        for ts in generate_tasksets(config, 3, seed=7):
            for task in ts:
                assert task.copy_in == 0.0
                assert task.copy_out == 0.0


class TestCurveConsistency:
    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.5, 200.0), st.floats(0.0, 500.0))
    def test_closed_vs_open_window_counts(self, period, delta):
        curve = SporadicArrival(period)
        open_count = curve.eta(delta)
        closed_count = curve.eta_closed(delta)
        assert open_count <= closed_count <= open_count + 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(1.0, 100.0),
        st.floats(0.0, 50.0),
        st.floats(0.0, 300.0),
    )
    def test_jitter_dominates_sporadic(self, period, jitter, delta):
        base = SporadicArrival(period)
        jittery = PeriodicJitterArrival(period, jitter)
        assert jittery.eta(delta) >= base.eta(delta)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.5, 100.0), st.integers(0, 20))
    def test_earliest_release_consistent_with_closed_count(
        self, period, q
    ):
        curve = SporadicArrival(period)
        release = curve.earliest_release(q)
        assert curve.eta_closed(release) >= q + 1
