"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.generator import (
    GenerationConfig,
    generate_platform_taskset,
    generate_taskset,
    generate_tasksets,
    log_uniform_periods,
    uunifast,
    uunifast_discard,
)
from repro.model.platform import Platform


class TestUUnifast:
    def test_sums_to_target(self, rng):
        for n in (1, 2, 5, 20):
            utils = uunifast(n, 0.75, rng)
            assert len(utils) == n
            assert sum(utils) == pytest.approx(0.75)

    def test_all_positive(self, rng):
        assert all(u > 0 for u in uunifast(10, 0.9, rng))

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ExperimentError):
            uunifast(0, 0.5, rng)
        with pytest.raises(ExperimentError):
            uunifast(5, -0.1, rng)

    def test_discard_respects_cap(self, rng):
        for _ in range(20):
            utils = uunifast_discard(4, 2.0, rng, max_task_utilization=0.9)
            assert max(utils) <= 0.9

    def test_discard_impossible_cap(self, rng):
        with pytest.raises(ExperimentError):
            uunifast_discard(2, 2.0, rng, max_task_utilization=0.5,
                             max_attempts=50)

    def test_reproducible_with_seed(self):
        a = uunifast(5, 0.6, np.random.default_rng(1))
        b = uunifast(5, 0.6, np.random.default_rng(1))
        assert a == b


class TestPeriods:
    def test_within_range(self, rng):
        periods = log_uniform_periods(100, rng, 10.0, 100.0)
        assert all(10.0 <= p <= 100.0 for p in periods)

    def test_log_uniform_median(self):
        rng = np.random.default_rng(0)
        periods = log_uniform_periods(20_000, rng, 10.0, 100.0)
        # Median of a log-uniform on [10, 100] is sqrt(1000) ~ 31.6.
        assert np.median(periods) == pytest.approx(31.6, rel=0.05)

    def test_rejects_bad_range(self, rng):
        with pytest.raises(ExperimentError):
            log_uniform_periods(5, rng, 0.0, 10.0)
        with pytest.raises(ExperimentError):
            log_uniform_periods(5, rng, 20.0, 10.0)
        with pytest.raises(ExperimentError):
            log_uniform_periods(0, rng, 1.0, 2.0)


class TestGenerationConfig:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            GenerationConfig(n=0)
        with pytest.raises(ExperimentError):
            GenerationConfig(utilization=0.0)
        with pytest.raises(ExperimentError):
            GenerationConfig(gamma=-0.1)
        with pytest.raises(ExperimentError):
            GenerationConfig(beta=1.5)
        with pytest.raises(ExperimentError):
            GenerationConfig(period_low=0.0)

    def test_with_override(self):
        cfg = GenerationConfig(n=6).with_(utilization=0.8)
        assert cfg.utilization == 0.8
        assert cfg.n == 6


class TestGenerateTaskset:
    def test_matches_recipe(self, rng):
        cfg = GenerationConfig(n=8, utilization=0.6, gamma=0.3, beta=0.5)
        ts = generate_taskset(cfg, rng)
        assert len(ts) == 8
        assert ts.utilization == pytest.approx(0.6)
        for task in ts:
            assert task.copy_in == pytest.approx(0.3 * task.exec_time)
            assert task.copy_out == pytest.approx(task.copy_in)
            assert 10.0 <= task.period <= 100.0
            d_low = task.exec_time + 0.5 * (task.period - task.exec_time)
            assert d_low - 1e-9 <= task.deadline <= task.period + 1e-9

    def test_deadline_monotonic_priorities(self, rng):
        cfg = GenerationConfig(n=10)
        ts = generate_taskset(cfg, rng)
        deadlines = [t.deadline for t in ts]  # iteration is by priority
        assert deadlines == sorted(deadlines)

    def test_stream_reproducible(self):
        cfg = GenerationConfig(n=5)
        a = list(generate_tasksets(cfg, 3, seed=9))
        b = list(generate_tasksets(cfg, 3, seed=9))
        assert a == b

    def test_stream_distinct_sets(self):
        cfg = GenerationConfig(n=5)
        sets = list(generate_tasksets(cfg, 3, seed=9))
        assert sets[0] != sets[1]

    def test_stream_rejects_nonpositive_count(self):
        with pytest.raises(ExperimentError):
            list(generate_tasksets(GenerationConfig(), 0, seed=1))


class TestPlatformTaskset:
    def test_footprints_fit_partition(self, rng):
        platform = Platform.homogeneous(1, memory_bytes=256 * 1024)
        core = platform.cores[0]
        ts = generate_platform_taskset(6, 0.5, core, rng)
        for task in ts:
            assert task.footprint is not None
            assert task.footprint <= core.memory.partition_bytes
            assert task.copy_in > 0
            assert task.copy_out <= task.copy_in

    def test_rejects_oversized_footprint_range(self, rng):
        platform = Platform.homogeneous(1, memory_bytes=8 * 1024)
        core = platform.cores[0]
        with pytest.raises(ExperimentError):
            generate_platform_taskset(
                3, 0.5, core, rng, footprint_low=1, footprint_high=10**9
            )

    def test_rejects_bad_output_fraction(self, rng):
        core = Platform.homogeneous(1).cores[0]
        with pytest.raises(ExperimentError):
            generate_platform_taskset(3, 0.5, core, rng, output_fraction=0.0)
