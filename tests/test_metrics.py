"""Unit tests for trace metrics."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.examples_support import figure1_plan, figure1_taskset
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.metrics import (
    compute_metrics,
    render_metrics,
    text_histogram,
)
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import sporadic_plan
from repro.sim.trace import Trace


@pytest.fixture
def wasly_metrics():
    trace = WaslySimulator(figure1_taskset()).run(figure1_plan())
    return compute_metrics(trace)


class TestComputeMetrics:
    def test_per_task_counts(self, wasly_metrics):
        assert set(wasly_metrics.per_task) == {"tp", "ti", "lp1", "lp2"}
        assert wasly_metrics.per_task["ti"].count == 1

    def test_miss_detected(self, wasly_metrics):
        assert wasly_metrics.per_task["ti"].misses == 1
        assert wasly_metrics.worst_miss_ratio == 1.0

    def test_busy_fractions_in_unit_interval(self, wasly_metrics):
        assert 0.0 < wasly_metrics.cpu_busy_fraction <= 1.0
        assert 0.0 < wasly_metrics.dma_busy_fraction <= 1.0

    def test_interval_statistics(self, wasly_metrics):
        assert wasly_metrics.interval_count > 0
        assert wasly_metrics.mean_interval_length > 0

    def test_nps_trace_has_no_intervals(self):
        trace = NpsSimulator(figure1_taskset()).run(figure1_plan())
        metrics = compute_metrics(trace)
        assert metrics.interval_count == 0
        assert math.isnan(metrics.mean_interval_length)
        assert metrics.dma_busy_fraction == 0.0  # everything on the CPU

    def test_proposed_counts_cancellations_and_urgency(self):
        ts = figure1_taskset(mark_ls=True)
        trace = ProposedSimulator(ts).run(figure1_plan())
        metrics = compute_metrics(trace)
        assert metrics.cancellations >= 1
        assert metrics.urgent_executions >= 1

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            compute_metrics(Trace(jobs=[]))

    def test_stats_ordering(self):
        ts = TaskSet.from_parameters(
            [
                ("a", 1.0, 0.1, 0.1, 10.0, 9.0),
                ("b", 2.0, 0.2, 0.2, 20.0, 18.0),
            ]
        )
        rng = np.random.default_rng(4)
        trace = WaslySimulator(ts).run(sporadic_plan(ts, 400.0, rng))
        metrics = compute_metrics(trace)
        for stats in metrics.per_task.values():
            assert stats.minimum <= stats.mean <= stats.maximum
            assert stats.mean <= stats.p95 + 1e-9 or stats.count < 5


class TestRendering:
    def test_render_metrics_mentions_tasks(self, wasly_metrics):
        text = render_metrics(wasly_metrics)
        for name in ("tp", "ti", "lp1", "lp2"):
            assert name in text

    def test_histogram_bars_scale(self):
        art = text_histogram([1, 1, 1, 2, 3], bins=3, width=10, title="h")
        lines = art.splitlines()
        assert lines[0] == "h"
        assert any("##########" in line for line in lines)

    def test_histogram_empty(self):
        assert "(no data)" in text_histogram([], title="x")


def _job(task, release, **stamps):
    from repro.sim.trace import Job

    return Job(task=task, release=release, index=0, **stamps)


class TestTruncatedTraceRegressions:
    """Horizon-truncated jobs must not corrupt span or miss accounting."""

    def _taskset(self, deadline=10.0):
        return TaskSet.from_parameters(
            [("a", 2.0, 0.5, 0.5, 10.0, deadline)]
        )

    def test_busy_fractions_bounded_with_truncated_job(self):
        # A job cut off mid-execution contributes its exec duration to
        # the busy sums; the span must therefore extend to its last
        # stamp, or cpu_busy_fraction exceeds 1.0 (it was 4/3 before
        # the fix: span stopped at the last copy_out_end, 3.0).
        (task,) = self._taskset()
        done = _job(
            task, 0.0,
            copy_in_start=0.0, copy_in_end=0.5,
            exec_start=0.5, exec_end=2.5,
            copy_out_start=2.5, copy_out_end=3.0,
        )
        truncated = _job(
            task, 3.0,
            copy_in_start=3.0, copy_in_end=3.5,
            exec_start=3.5, exec_end=5.5,
        )
        metrics = compute_metrics(Trace(jobs=[done, truncated]))
        assert metrics.cpu_busy_fraction <= 1.0
        assert metrics.dma_busy_fraction <= 1.0
        assert metrics.cpu_busy_fraction == pytest.approx(4.0 / 5.5)

    def test_overdue_incomplete_job_counts_as_miss(self):
        # The truncated job's absolute deadline (3.0 + 4.0) falls
        # inside the observed span, so it has demonstrably missed —
        # before the fix it was silently dropped (`if j.completed`).
        (task,) = self._taskset(deadline=4.0)
        done = _job(
            task, 0.0,
            copy_in_start=0.0, copy_in_end=0.5,
            exec_start=0.5, exec_end=2.5,
            copy_out_start=2.5, copy_out_end=3.0,
        )
        overdue = _job(
            task, 3.0,
            copy_in_start=3.0, copy_in_end=3.5,
            exec_start=3.5, exec_end=8.0,
        )
        stats = compute_metrics(Trace(jobs=[done, overdue])).per_task["a"]
        assert stats.count == 1  # completed jobs only
        assert stats.incomplete == 1
        assert stats.misses == 1
        assert stats.miss_ratio == pytest.approx(0.5)

    def test_incomplete_within_deadline_is_not_a_miss(self):
        (task,) = self._taskset(deadline=10.0)
        done = _job(
            task, 0.0,
            copy_in_start=0.0, copy_in_end=0.5,
            exec_start=0.5, exec_end=2.5,
            copy_out_start=2.5, copy_out_end=3.0,
        )
        pending = _job(
            task, 3.0,
            copy_in_start=3.0, copy_in_end=3.5,
            exec_start=3.5, exec_end=5.0,
        )
        stats = compute_metrics(Trace(jobs=[done, pending])).per_task["a"]
        assert stats.incomplete == 1
        assert stats.misses == 0

    def test_task_with_only_incomplete_jobs_still_reported(self):
        (task,) = self._taskset(deadline=4.0)
        overdue = _job(
            task, 0.0,
            copy_in_start=0.0, copy_in_end=0.5,
            exec_start=0.5, exec_end=6.0,
        )
        stats = compute_metrics(Trace(jobs=[overdue])).per_task["a"]
        assert stats.count == 0
        assert stats.incomplete == 1
        assert stats.misses == 1
        assert math.isnan(stats.mean)
        assert stats.miss_ratio == 1.0

    def test_cancelled_copy_in_stamps_extend_span(self):
        (task,) = self._taskset()
        job = _job(
            task, 0.0,
            copy_in_start=0.0, copy_in_end=0.5,
            exec_start=0.5, exec_end=2.5,
            copy_out_start=2.5, copy_out_end=3.0,
        )
        job.cancelled_copy_ins.append((3.0, 4.0))
        metrics = compute_metrics(Trace(jobs=[job]))
        assert metrics.dma_busy_fraction <= 1.0
        # copy-in 0.5 + copy-out 0.5 + cancelled 1.0, over span 4.0
        assert metrics.dma_busy_fraction == pytest.approx(2.0 / 4.0)


class TestP95Conservative:
    def test_p95_is_an_observed_value_on_small_samples(self):
        # With method="higher" the p95 of a small sample is an actual
        # observation, never a linear interpolation below the tail
        # (plain np.percentile([1..4], 95) would report 3.85).
        ts = TaskSet.from_parameters([("a", 2.0, 0.5, 0.5, 20.0, 20.0)])
        (task,) = ts
        jobs = []
        for k, resp in enumerate((1.0, 2.0, 3.0, 4.0)):
            release = 5.0 * k
            jobs.append(
                _job(
                    task, release,
                    copy_in_start=release, copy_in_end=release + 0.1,
                    exec_start=release + 0.1, exec_end=release + 0.3,
                    copy_out_start=release + 0.3,
                    copy_out_end=release + resp,
                )
            )
        stats = compute_metrics(Trace(jobs=jobs)).per_task["a"]
        assert stats.p95 == 4.0
