"""Unit tests for trace metrics."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.examples_support import figure1_plan, figure1_taskset
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.metrics import (
    compute_metrics,
    render_metrics,
    text_histogram,
)
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import sporadic_plan
from repro.sim.trace import Trace


@pytest.fixture
def wasly_metrics():
    trace = WaslySimulator(figure1_taskset()).run(figure1_plan())
    return compute_metrics(trace)


class TestComputeMetrics:
    def test_per_task_counts(self, wasly_metrics):
        assert set(wasly_metrics.per_task) == {"tp", "ti", "lp1", "lp2"}
        assert wasly_metrics.per_task["ti"].count == 1

    def test_miss_detected(self, wasly_metrics):
        assert wasly_metrics.per_task["ti"].misses == 1
        assert wasly_metrics.worst_miss_ratio == 1.0

    def test_busy_fractions_in_unit_interval(self, wasly_metrics):
        assert 0.0 < wasly_metrics.cpu_busy_fraction <= 1.0
        assert 0.0 < wasly_metrics.dma_busy_fraction <= 1.0

    def test_interval_statistics(self, wasly_metrics):
        assert wasly_metrics.interval_count > 0
        assert wasly_metrics.mean_interval_length > 0

    def test_nps_trace_has_no_intervals(self):
        trace = NpsSimulator(figure1_taskset()).run(figure1_plan())
        metrics = compute_metrics(trace)
        assert metrics.interval_count == 0
        assert math.isnan(metrics.mean_interval_length)
        assert metrics.dma_busy_fraction == 0.0  # everything on the CPU

    def test_proposed_counts_cancellations_and_urgency(self):
        ts = figure1_taskset(mark_ls=True)
        trace = ProposedSimulator(ts).run(figure1_plan())
        metrics = compute_metrics(trace)
        assert metrics.cancellations >= 1
        assert metrics.urgent_executions >= 1

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            compute_metrics(Trace(jobs=[]))

    def test_stats_ordering(self):
        ts = TaskSet.from_parameters(
            [
                ("a", 1.0, 0.1, 0.1, 10.0, 9.0),
                ("b", 2.0, 0.2, 0.2, 20.0, 18.0),
            ]
        )
        rng = np.random.default_rng(4)
        trace = WaslySimulator(ts).run(sporadic_plan(ts, 400.0, rng))
        metrics = compute_metrics(trace)
        for stats in metrics.per_task.values():
            assert stats.minimum <= stats.mean <= stats.maximum
            assert stats.mean <= stats.p95 + 1e-9 or stats.count < 5


class TestRendering:
    def test_render_metrics_mentions_tasks(self, wasly_metrics):
        text = render_metrics(wasly_metrics)
        for name in ("tp", "ti", "lp1", "lp2"):
            assert name in text

    def test_histogram_bars_scale(self):
        art = text_histogram([1, 1, 1, 2, 3], bins=3, width=10, title="h")
        lines = art.splitlines()
        assert lines[0] == "h"
        assert any("##########" in line for line in lines)

    def test_histogram_empty(self):
        assert "(no data)" in text_histogram([], title="x")
