"""Tests for SVG export and experiment persistence."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ExperimentError
from repro.examples_support import figure1_plan, figure1_taskset
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.experiments.persistence import (
    load_sweep,
    merge_sweeps,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.experiments.runner import PointResult, SweepResult
from repro.generator.taskset_gen import GenerationConfig
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.svg import save_trace_svg, trace_to_svg


class TestSvgExport:
    @pytest.fixture
    def trace(self):
        return WaslySimulator(figure1_taskset()).run(figure1_plan())

    def test_valid_xml(self, trace):
        svg = trace_to_svg(trace)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_task_rectangles(self, trace):
        svg = trace_to_svg(trace)
        assert svg.count("<rect") > 6
        assert "ti#0" in svg

    def test_dma_lane_for_interval_protocols(self, trace):
        assert ">DMA<" in trace_to_svg(trace)

    def test_nps_has_no_dma_lane(self):
        trace = NpsSimulator(figure1_taskset()).run(figure1_plan())
        assert ">DMA<" not in trace_to_svg(trace)

    def test_cancelled_copy_in_marked(self):
        # An LS release mid-copy aborts the lower-priority load with a
        # visible (nonzero-width) wasted-DMA bar.
        from repro.model.taskset import TaskSet
        from repro.sim.releases import ReleasePlan

        ts = TaskSet.from_parameters(
            [
                ("ls", 1.0, 0.2, 0.2, 20.0, 18.0),
                ("lp", 3.0, 1.0, 1.0, 50.0, 50.0),
            ]
        ).with_ls_marks(["ls"])
        plan = ReleasePlan(
            releases={"lp": (0.0,), "ls": (0.5,)}, horizon=30.0
        )
        trace = ProposedSimulator(ts).run(plan)
        assert trace.jobs_of("lp")[0].was_cancelled
        assert "cancelled copy-in" in trace_to_svg(trace)

    def test_save_to_file(self, trace, tmp_path):
        path = tmp_path / "trace.svg"
        save_trace_svg(trace, path, until=14.0)
        content = path.read_text()
        assert content.startswith("<svg")
        ET.fromstring(content)

    def test_until_respected(self, trace):
        svg = trace_to_svg(trace, until=5.0)
        assert "0..5" in svg


def _sweep(seed=1, sets=4, ratios=(0.5, 0.25)):
    config = ExperimentConfig(
        name="demo",
        x_label="U",
        points=tuple(
            SweepPoint(x, GenerationConfig(utilization=x))
            for x in (0.2, 0.4)
        ),
        sets_per_point=sets,
        seed=seed,
    )
    return SweepResult(
        config=config,
        points=tuple(
            PointResult(
                x=x,
                ratios={p: r for p in config.protocols},
                sets_evaluated=sets,
                elapsed_seconds=1.0,
            )
            for x, r in zip((0.2, 0.4), ratios)
        ),
    )


class TestPersistence:
    def test_round_trip(self, tmp_path):
        result = _sweep()
        path = tmp_path / "sweep.json"
        save_sweep(result, path)
        loaded = load_sweep(path)
        assert loaded.config.name == "demo"
        assert loaded.series("proposed") == result.series("proposed")
        assert loaded.config.points[0].generation.utilization == 0.2

    def test_dict_round_trip(self):
        result = _sweep()
        assert sweep_from_dict(sweep_to_dict(result)).x_values == [0.2, 0.4]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_sweep(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(ExperimentError):
            load_sweep(path)

    def test_bad_version(self):
        with pytest.raises(ExperimentError):
            sweep_from_dict({"format_version": 99})

    def test_merge_weighted_average(self):
        a = _sweep(seed=1, sets=4, ratios=(1.0, 0.5))
        b = _sweep(seed=2, sets=12, ratios=(0.5, 0.25))
        merged = merge_sweeps(a, b)
        assert merged.points[0].sets_evaluated == 16
        assert merged.points[0].ratios["proposed"] == pytest.approx(
            (1.0 * 4 + 0.5 * 12) / 16
        )
        assert merged.config.sets_per_point == 16

    def test_merge_rejects_same_seed(self):
        with pytest.raises(ExperimentError):
            merge_sweeps(_sweep(seed=1), _sweep(seed=1))

    def test_merge_rejects_different_experiments(self):
        a = _sweep(seed=1)
        b = _sweep(seed=2)
        import dataclasses

        other = SweepResult(
            config=dataclasses.replace(b.config, name="other"),
            points=b.points,
        )
        with pytest.raises(ExperimentError):
            merge_sweeps(a, other)
