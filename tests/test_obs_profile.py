"""Unit tests for trace aggregation, rendering, and reconciliation."""

from dataclasses import dataclass, field

import pytest

from repro.obs import (
    EVENT_VERSION,
    aggregate_events,
    compare_profiles,
    profile_trace,
    reconcile,
    render_profile,
)
from repro.obs.profile import FAILURE_EVENT, PhaseTiming


def _event(name, *, dur=None, run=None, **fields):
    event = {"v": EVENT_VERSION, "name": name, "t": 0.0}
    if dur is not None:
        event["dur"] = dur
    if run is not None:
        event["run"] = run
    if fields:
        event["f"] = fields
    return event


_SAMPLE = [
    _event("run.start", run="r1", points=1),
    _event("solve", dur=0.2, status="optimal", degradation=0),
    _event("solve", dur=0.4, status="optimal", degradation=1),
    _event("solve", dur=0.1, status="infeasible"),
    _event("cache.hits", amount=3),
    _event("cache.hits", amount=2),
    _event("cache.milp_solves", amount=3),
    _event("worker.unit"),
    _event(FAILURE_EVENT, dur=0.5, protocol="proposed"),
    _event("run.end", run="r1", dur=1.0),
]


class TestAggregate:
    def test_counts_and_totals(self):
        report = aggregate_events(_SAMPLE)
        assert report.events_total == len(_SAMPLE)
        assert report.counts["solve"] == 3
        assert report.runs == {"r1"}
        assert report.failures == 1

    def test_cache_amounts_summed(self):
        report = aggregate_events(_SAMPLE)
        assert report.cache_counters == {"hits": 5, "milp_solves": 3}

    def test_solve_outcomes(self):
        report = aggregate_events(_SAMPLE)
        assert report.solve_statuses == {"optimal": 2, "infeasible": 1}
        assert report.solve_degradations == {0: 1, 1: 1}

    def test_timings(self):
        report = aggregate_events(_SAMPLE)
        timing = report.timings["solve"]
        assert timing.count == 3
        assert timing.total == pytest.approx(0.7)
        assert timing.maximum == 0.4
        assert timing.mean == pytest.approx(0.7 / 3)
        assert report.solve_durations == [0.2, 0.4, 0.1]

    def test_runtime_split(self):
        report = aggregate_events(_SAMPLE)
        assert "worker.unit" in report.runtime_counts()
        assert "worker.unit" not in report.deterministic_counts()
        assert "solve" in report.deterministic_counts()

    def test_empty_phase_timing_mean_is_nan(self):
        import math

        assert math.isnan(PhaseTiming().mean)


class TestRender:
    def test_full_render_has_all_sections(self):
        text = render_profile(aggregate_events(_SAMPLE))
        assert "work events" in text
        assert "analysis cache counters" in text
        assert "solve outcomes" in text
        assert "runtime events" in text
        assert "timings" in text
        assert "solve wall-time histogram" in text

    def test_deterministic_render_omits_runtime(self):
        text = render_profile(aggregate_events(_SAMPLE), timings=False)
        assert "worker.unit" not in text
        assert "timings" not in text
        assert "work events" in text

    def test_deterministic_render_header_ignores_runtime_events(self):
        # The header must not leak events_total (which includes
        # runtime events) or the jobs=1 vs jobs=N comparison breaks.
        with_worker = render_profile(aggregate_events(_SAMPLE), timings=False)
        without = [e for e in _SAMPLE if e["name"] != "worker.unit"]
        assert with_worker == render_profile(
            aggregate_events(without), timings=False
        )

    def test_profile_trace_end_to_end(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in _SAMPLE) + "\n"
        )
        text = profile_trace(str(path))
        assert "solve" in text


@dataclass
class _FakePoint:
    analysis_stats: dict = field(default_factory=dict)
    failures: tuple = ()


class TestReconcile:
    def test_matching_run_is_clean(self):
        report = aggregate_events(_SAMPLE)
        points = [
            _FakePoint({"hits": 2, "milp_solves": 3}, failures=("f",)),
            _FakePoint({"hits": 3}),
        ]
        assert reconcile(report, points) == []

    def test_counter_mismatch_reported(self):
        report = aggregate_events(_SAMPLE)
        points = [_FakePoint({"hits": 4, "milp_solves": 3}, failures=("f",))]
        problems = reconcile(report, points)
        assert len(problems) == 1
        assert "hits" in problems[0]

    def test_ledger_mismatch_reported(self):
        report = aggregate_events(_SAMPLE)
        points = [_FakePoint({"hits": 5, "milp_solves": 3})]
        problems = reconcile(report, points)
        assert len(problems) == 1
        assert "failure" in problems[0]


class TestCompareProfiles:
    def test_identical_streams_agree(self):
        assert compare_profiles(_SAMPLE, list(_SAMPLE)) == []

    def test_runtime_events_do_not_matter(self):
        trimmed = [e for e in _SAMPLE if e["name"] != "worker.unit"]
        extra = _SAMPLE + [_event("resilience.retry"), _event("gen.tasksets")]
        assert compare_profiles(trimmed, extra) == []

    def test_work_count_difference_detected(self):
        assert compare_profiles(_SAMPLE, _SAMPLE + [_event("solve")])

    def test_cache_amount_difference_detected(self):
        changed = [dict(e) for e in _SAMPLE]
        changed[4] = _event("cache.hits", amount=4)
        problems = compare_profiles(_SAMPLE, changed)
        assert any("cache" in p for p in problems)

    def test_status_difference_detected(self):
        changed = [dict(e) for e in _SAMPLE]
        changed[3] = _event("solve", dur=0.1, status="timeout")
        problems = compare_profiles(_SAMPLE, changed)
        assert any("status" in p for p in problems)
