"""The persistent cache tier: store semantics, corruption, identity.

The on-disk sqlite store (:mod:`repro.analysis.store`) must be exactly
as trustworthy as re-solving: rank upserts converge under concurrent
writers, corrupted rows are detected and re-solved (never trusted),
a schema bump discards the whole store, and — the acceptance bar —
sweeps produce bit-identical verdicts with the cache disabled, cold,
pre-populated, sequential, and under ``--jobs N``.
"""

import dataclasses
import pickle
import sqlite3
from concurrent import futures

import pytest

from repro.analysis.store import (
    ENTRY_RANKS,
    SCHEMA_VERSION,
    PersistentStore,
    entry_rank,
)
from repro.experiments import run_experiment
from repro.experiments.config import figure2_config
from repro.experiments.report import aggregate_analysis_stats
from repro.faults import FaultPlan, FaultSpec, injecting

MILP_ENTRY = ("milp", 40.25, 6, {"rows": 9, "binaries": 4}, 0)
LP_ENTRY = ("lp", 41.5)


def _reduced(inset: str = "fig2a", sets: int = 2, step: slice = slice(2, 5, 2)):
    config = figure2_config(inset, sets_per_point=sets, seed=2020)
    return dataclasses.replace(config, points=config.points[step])


def _verdicts_identical(a, b) -> None:
    # analysis_stats is intentionally *not* compared: with a persistent
    # store, which tier serves a digest (and hence the counters) depends
    # on what earlier runs wrote; the verdicts never do.
    assert [p.x for p in a.points] == [p.x for p in b.points]
    for pa, pb in zip(a.points, b.points):
        assert pa.ratios == pb.ratios
        assert pa.failures == pb.failures
        assert pa.sets_evaluated == pb.sets_evaluated


class TestStoreSemantics:
    def test_round_trip_is_exact(self, tmp_path):
        store = PersistentStore(tmp_path / "c.sqlite")
        store.store("d-milp", MILP_ENTRY)
        store.store("d-lp", LP_ENTRY)
        store.store("d-float", 12.625)  # the case-(b) memo shape
        assert store.fetch("d-milp") == (MILP_ENTRY, False)
        assert store.fetch("d-lp") == (LP_ENTRY, False)
        assert store.fetch("d-float") == (12.625, False)

    def test_missing_digest_is_a_clean_miss(self, tmp_path):
        store = PersistentStore(tmp_path / "c.sqlite")
        assert store.fetch("absent") == (None, False)

    def test_exact_entries_upgrade_screening_bounds_never_vice_versa(
        self, tmp_path
    ):
        store = PersistentStore(tmp_path / "c.sqlite")
        store.store("d", LP_ENTRY)
        store.store("d", MILP_ENTRY)  # rank 2 replaces rank 1
        assert store.fetch("d") == (MILP_ENTRY, False)
        store.store("d", LP_ENTRY)  # rank 1 never downgrades rank 2
        assert store.fetch("d") == (MILP_ENTRY, False)

    def test_equal_rank_write_is_a_no_op(self, tmp_path):
        # Equal-rank payloads are identical by content-addressing; the
        # store keeps the first so concurrent writers cannot flip-flop.
        store = PersistentStore(tmp_path / "c.sqlite")
        store.store("d", LP_ENTRY)
        store.store("d", ("lp", 99.0))
        assert store.fetch("d") == (LP_ENTRY, False)

    def test_bare_floats_rank_as_exact(self):
        assert entry_rank(12.5) == ENTRY_RANKS["milp"]
        assert entry_rank(LP_ENTRY) < entry_rank(MILP_ENTRY)

    def test_pickle_ships_only_the_path(self, tmp_path):
        store = PersistentStore(tmp_path / "c.sqlite")
        store.store("d", LP_ENTRY)  # force a live connection
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone._conn is None  # each process opens its own
        assert clone.fetch("d") == (LP_ENTRY, False)

    def test_schema_version_mismatch_discards_the_store(self, tmp_path):
        path = tmp_path / "c.sqlite"
        store = PersistentStore(path)
        store.store("d", MILP_ENTRY)
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        reopened = PersistentStore(path)
        assert len(reopened) == 0
        assert reopened.stats()["schema_version"] == SCHEMA_VERSION

    def test_gc_keeps_the_most_recently_written(self, tmp_path):
        store = PersistentStore(tmp_path / "c.sqlite")
        for i in range(5):
            store.store(f"d{i}", float(i))
        assert store.gc(keep=2) == 3
        assert sorted(store.digests()) == ["d3", "d4"]

    def test_clear_empties_the_store(self, tmp_path):
        store = PersistentStore(tmp_path / "c.sqlite")
        store.store("d", LP_ENTRY)
        assert store.clear() == 1
        assert len(store) == 0

    def test_stats_breaks_entries_down_by_rank(self, tmp_path):
        store = PersistentStore(tmp_path / "c.sqlite")
        store.store("d1", MILP_ENTRY)
        store.store("d2", LP_ENTRY)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["exact_entries"] == 1
        assert stats["screen_entries"] == 1
        assert stats["file_bytes"] > 0


def _hammer(path: str, digest: str, first, second, rounds: int = 20) -> None:
    """Worker body: upsert one digest with both ranks, many times."""
    store = PersistentStore(path)
    for _ in range(rounds):
        store.store(digest, first)
        store.store(digest, second)
    store.close()


class TestConcurrentWriters:
    def test_racing_upserts_converge_to_one_exact_row(self, tmp_path):
        # Satellite: two workers hammer the same digest in opposite
        # rank orders; the store must end with exactly one row holding
        # the exact (milp) payload, whatever the interleaving.
        path = str(tmp_path / "c.sqlite")
        with futures.ProcessPoolExecutor(max_workers=2) as pool:
            done = [
                pool.submit(_hammer, path, "shared", LP_ENTRY, MILP_ENTRY),
                pool.submit(_hammer, path, "shared", MILP_ENTRY, LP_ENTRY),
            ]
            for f in done:
                f.result(timeout=120)
        store = PersistentStore(path)
        assert len(store) == 1
        assert store.fetch("shared") == (MILP_ENTRY, False)


class TestCorruption:
    @pytest.mark.parametrize("mode", ["garbage", "torn"])
    def test_garbled_row_is_detected_dropped_and_never_served(
        self, tmp_path, mode
    ):
        store = PersistentStore(tmp_path / "c.sqlite")
        plan = FaultPlan(
            specs=(FaultSpec(site="cache.corrupt", mode=mode),), name="g"
        )
        with injecting(plan) as scope:
            store.store("d", MILP_ENTRY)
        assert [f.mode for f in scope.fired] == [mode]
        assert store.fetch("d") == (None, True)  # detected + dropped
        assert store.corrupt_dropped == 1
        assert store.fetch("d") == (None, False)  # row really is gone

    def test_sweep_heals_a_fully_corrupted_store(self, tmp_path):
        # Every write of the first cached run is garbled; the next run
        # must detect each bad row, re-solve, report the corruption in
        # its stats, and still produce the cacheless verdicts. The run
        # after that finds only clean re-stored rows.
        config = _reduced(step=slice(2, 3))
        db = str(tmp_path / "c.sqlite")
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(FaultSpec(site="cache.corrupt", times=None),),
            name="garble-everything",
        )
        with injecting(plan) as scope:
            poisoned = run_experiment(config, cache_path=db)
        assert scope.fired  # rows were actually garbled
        _verdicts_identical(baseline, poisoned)
        healing = run_experiment(config, cache_path=db)
        _verdicts_identical(baseline, healing)
        stats = aggregate_analysis_stats(healing.points)
        assert stats["persistent.corrupt"] >= 1
        healed = run_experiment(config, cache_path=db)
        _verdicts_identical(baseline, healed)
        stats = aggregate_analysis_stats(healed.points)
        assert stats["persistent.corrupt"] == 0
        assert stats["milp_solves"] == 0  # clean rows now serve everything


@pytest.fixture(scope="module")
def cache_matrix(tmp_path_factory):
    """One reduced sweep run under every cache configuration.

    Module-scoped: the five runs share the work, and later runs reuse
    the store earlier runs populated (that reuse *is* the scenario).
    """
    config = _reduced()
    root = tmp_path_factory.mktemp("persistent-cache")
    seq_db = root / "seq.sqlite"
    par_db = root / "par.sqlite"
    runs = {
        "baseline": run_experiment(config),
        "cold": run_experiment(config, cache_path=str(seq_db)),
        "warm": run_experiment(config, cache_path=str(seq_db)),
        "parallel_cold": run_experiment(config, jobs=2, cache_path=str(par_db)),
        "parallel_warm": run_experiment(config, jobs=2, cache_path=str(seq_db)),
    }
    return runs, seq_db


class TestBitIdentityAcrossCacheConfigs:
    """Tentpole acceptance: the cache may never change a verdict."""

    def test_cold_run_matches_the_cacheless_baseline_exactly(
        self, cache_matrix
    ):
        runs, _ = cache_matrix
        _verdicts_identical(runs["baseline"], runs["cold"])
        # Sequentially, an initially-empty store even leaves every
        # counter untouched — cold means cold.
        assert dict(aggregate_analysis_stats(runs["baseline"].points)) == dict(
            aggregate_analysis_stats(runs["cold"].points)
        )

    @pytest.mark.parametrize(
        "name", ["warm", "parallel_cold", "parallel_warm"]
    )
    def test_every_cache_configuration_is_verdict_identical(
        self, cache_matrix, name
    ):
        runs, _ = cache_matrix
        _verdicts_identical(runs["baseline"], runs[name])

    def test_warm_run_is_served_by_the_persistent_tier(self, cache_matrix):
        runs, _ = cache_matrix
        cold = aggregate_analysis_stats(runs["cold"].points)
        warm = aggregate_analysis_stats(runs["warm"].points)
        fall_throughs = warm["persistent.hits"] + warm["misses"]
        assert fall_throughs > 0
        assert warm["persistent.hits"] / fall_throughs >= 0.95
        assert warm["milp_solves"] <= 0.05 * cold["milp_solves"]
        assert warm["lp_solves"] <= 0.05 * max(cold["lp_solves"], 1)

    def test_fully_warm_store_makes_parallel_counters_deterministic(
        self, cache_matrix
    ):
        # Once every digest is on disk, even worker scheduling cannot
        # shift which tier answers — the counters themselves agree.
        runs, _ = cache_matrix
        assert dict(aggregate_analysis_stats(runs["warm"].points)) == dict(
            aggregate_analysis_stats(runs["parallel_warm"].points)
        )

    def test_store_holds_both_entry_kinds(self, cache_matrix):
        _, seq_db = cache_matrix
        stats = PersistentStore(seq_db).stats()
        assert stats["entries"] > 0
        assert stats["entries"] == (
            stats["exact_entries"] + stats["screen_entries"]
        )
