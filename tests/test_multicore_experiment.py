"""Unit tests for the multicore experiment module."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.multicore import (
    MulticoreConfig,
    run_multicore_point,
)


class TestConfig:
    def test_defaults_valid(self):
        config = MulticoreConfig()
        assert config.num_cores == 4

    def test_rejects_bad_values(self):
        with pytest.raises(ExperimentError):
            MulticoreConfig(num_cores=0)
        with pytest.raises(ExperimentError):
            MulticoreConfig(n_tasks=0)
        with pytest.raises(ExperimentError):
            MulticoreConfig(total_utilization=0.0)


class TestRunPoint:
    def test_light_load_mostly_schedulable(self):
        config = MulticoreConfig(
            num_cores=4,
            n_tasks=8,
            total_utilization=0.4,
            gamma=0.1,
            method="closed_form",
        )
        result = run_multicore_point(config, systems=4, seed=5)
        assert result.systems_evaluated == 4
        for protocol in config.protocols:
            assert 0.0 <= result.ratios[protocol] <= 1.0
        # A 0.1-per-core load should pass at least sometimes.
        assert max(result.ratios.values()) > 0.0

    def test_overload_unpartitionable(self):
        config = MulticoreConfig(
            num_cores=1,
            n_tasks=6,
            total_utilization=2.5,
            gamma=0.1,
            method="closed_form",
        )
        result = run_multicore_point(config, systems=3, seed=1)
        assert result.partition_failures == 3
        assert all(r == 0.0 for r in result.ratios.values())

    def test_reproducible(self):
        config = MulticoreConfig(
            num_cores=2, n_tasks=6, total_utilization=0.5,
            method="closed_form",
        )
        a = run_multicore_point(config, systems=3, seed=7)
        b = run_multicore_point(config, systems=3, seed=7)
        assert a.ratios == b.ratios

    def test_rejects_nonpositive_systems(self):
        with pytest.raises(ExperimentError):
            run_multicore_point(MulticoreConfig(), systems=0, seed=1)

    def test_more_cores_never_hurt(self):
        base = dict(
            n_tasks=8, total_utilization=0.8, gamma=0.1,
            method="closed_form",
        )
        small = run_multicore_point(
            MulticoreConfig(num_cores=2, **base), systems=5, seed=3
        )
        large = run_multicore_point(
            MulticoreConfig(num_cores=6, **base), systems=5, seed=3
        )
        # Same workloads spread over more cores: the proposed ratio
        # must not drop (worst-fit spreads by utilisation).
        assert (
            large.ratios["proposed"] >= small.ratios["proposed"] - 1e-9
        )
