"""Unit and property tests for the task-chain extension."""

import math

import numpy as np
import pytest

from repro.analysis.schedulability import analyze_taskset
from repro.chains import (
    TaskChain,
    chain_data_age_bound,
    chain_reaction_bound,
    measure_reaction_times,
)
from repro.chains.measurement import max_reaction_time
from repro.errors import AnalysisError, ModelError, SimulationError
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import sporadic_plan, synchronous_plan


@pytest.fixture
def pipeline_ts():
    return TaskSet.from_parameters(
        [
            # sensor -> filter -> actuate pipeline plus a bystander
            ("sensor", 0.8, 0.1, 0.1, 10.0, 9.0),
            ("filter", 1.5, 0.2, 0.2, 20.0, 18.0),
            ("actuate", 1.0, 0.1, 0.1, 20.0, 20.0),
            ("bystander", 2.0, 0.3, 0.3, 50.0, 45.0),
        ]
    )


@pytest.fixture
def chain(pipeline_ts):
    return TaskChain(
        name="control",
        taskset=pipeline_ts,
        stage_names=("sensor", "filter", "actuate"),
    )


class TestChainModel:
    def test_stages_in_order(self, chain):
        assert [t.name for t in chain.stages] == [
            "sensor", "filter", "actuate",
        ]
        assert len(chain) == 3

    def test_rejects_single_stage(self, pipeline_ts):
        with pytest.raises(ModelError):
            TaskChain("x", pipeline_ts, ("sensor",))

    def test_rejects_repeats(self, pipeline_ts):
        with pytest.raises(ModelError):
            TaskChain("x", pipeline_ts, ("sensor", "sensor"))

    def test_rejects_unknown_stage(self, pipeline_ts):
        with pytest.raises(ModelError):
            TaskChain("x", pipeline_ts, ("sensor", "ghost"))

    def test_repr(self, chain):
        assert "sensor -> filter -> actuate" in repr(chain)


class TestChainBounds:
    def test_reaction_bound_composition(self, pipeline_ts, chain):
        result = analyze_taskset(pipeline_ts, "nps")
        bound = chain_reaction_bound(chain, result)
        manual = sum(
            task.period + result.result_for(task.name).wcrt
            for task in chain.stages
        )
        assert bound.total == pytest.approx(manual)
        assert set(bound.per_stage) == {"sensor", "filter", "actuate"}

    def test_data_age_adds_last_period(self, pipeline_ts, chain):
        result = analyze_taskset(pipeline_ts, "nps")
        reaction = chain_reaction_bound(chain, result)
        age = chain_data_age_bound(chain, result)
        assert age.total == pytest.approx(reaction.total + 20.0)

    def test_infinite_stage_wcrt_propagates(self, pipeline_ts, chain):
        overloaded = TaskSet.from_parameters(
            [
                ("sensor", 9.0, 0.1, 0.1, 10.0, 10.0),
                ("filter", 8.0, 0.2, 0.2, 20.0, 20.0),
                ("actuate", 1.0, 0.1, 0.1, 20.0, 20.0),
                ("bystander", 2.0, 0.3, 0.3, 50.0, 45.0),
            ]
        )
        from repro.analysis.interface import AnalysisOptions

        result = analyze_taskset(
            overloaded, "nps",
            options=AnalysisOptions(stop_at_deadline=False),
        )
        bound = chain_reaction_bound(
            TaskChain("c", overloaded, ("sensor", "filter")), result
        )
        assert math.isinf(bound.total)

    def test_mismatched_result_rejected(self, pipeline_ts, chain):
        other = TaskSet.from_parameters(
            [("a", 1.0, 0.1, 0.1, 10.0, 9.0), ("b", 1.0, 0.1, 0.1, 20.0, 18.0)]
        )
        result = analyze_taskset(other, "nps")
        with pytest.raises(AnalysisError):
            chain_reaction_bound(chain, result)


class TestChainMeasurement:
    def test_samples_follow_dataflow(self, pipeline_ts, chain):
        trace = NpsSimulator(pipeline_ts).run(
            synchronous_plan(pipeline_ts, 200.0)
        )
        samples = measure_reaction_times(chain, trace)
        assert samples
        for sample in samples:
            assert sample.latency > 0
            assert len(sample.path) == 3
            assert sample.path[0].startswith("sensor")
            assert sample.path[-1].startswith("actuate")

    def test_empty_stage_jobs_rejected(self, pipeline_ts, chain):
        from repro.sim.trace import Trace

        with pytest.raises(SimulationError):
            measure_reaction_times(chain, Trace(jobs=[]))

    @pytest.mark.parametrize("protocol_sim", [NpsSimulator, ProposedSimulator])
    def test_measured_reaction_below_bound(
        self, pipeline_ts, chain, protocol_sim
    ):
        protocol = "nps" if protocol_sim is NpsSimulator else "proposed"
        result = analyze_taskset(pipeline_ts, protocol, ls_policy="as_marked")
        assert result.schedulable
        bound = chain_reaction_bound(chain, result)
        rng = np.random.default_rng(11)
        trace = protocol_sim(pipeline_ts).run(
            sporadic_plan(pipeline_ts, 600.0, rng)
        )
        measured = max_reaction_time(chain, trace)
        assert measured <= bound.total + 1e-6

    def test_explicit_input_times(self, pipeline_ts, chain):
        trace = NpsSimulator(pipeline_ts).run(
            synchronous_plan(pipeline_ts, 200.0)
        )
        samples = measure_reaction_times(
            chain, trace, input_times=[0.5, 15.0]
        )
        assert len(samples) == 2
        assert samples[0].input_time == 0.5
