"""CLI chaos surface: ``figure --inject`` and one-line profile errors."""

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan, FaultSpec, save_plan


class TestFigureInject:
    def test_injected_run_matches_clean_run(self, capsys, tmp_path):
        clean_csv = tmp_path / "clean.csv"
        assert main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--csv", str(clean_csv)]
        ) == 0
        capsys.readouterr()
        plan_path = tmp_path / "plan.json"
        save_plan(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site="worker.death", mode="exit", point=0, unit=0,
                        attempt=0,
                    ),
                ),
                name="cli-chaos",
            ),
            plan_path,
        )
        injected_csv = tmp_path / "injected.csv"
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--jobs", "2", "--inject", str(plan_path),
             "--csv", str(injected_csv), "--trace", str(trace)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "injecting faults from" in out
        assert "cli-chaos" in out
        # The acceptance contract: an injected parallel run produces the
        # same series as the fault-free run (modulo the wall-clock
        # column, which is a measurement, not a result)...
        def series(path):
            return [
                line.rsplit(",", 1)[0]
                for line in path.read_text().splitlines()
            ]

        assert series(injected_csv) == series(clean_csv)
        # ...and every injection is visible as a fault.* trace event.
        from repro.obs import read_trace, validate_event

        deaths = [
            e
            for e in read_trace(trace)
            if e["name"] == "fault.worker.death"
        ]
        assert len(deaths) == 1
        assert validate_event(deaths[0]) == []
        assert deaths[0]["f"]["plan"] == "cli-chaos"

    def test_missing_plan_is_one_line_error(self, capsys, tmp_path):
        code = main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--inject", str(tmp_path / "nope.json")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error: fault plan not found" in captured.err
        assert "Traceback" not in captured.err

    def test_invalid_plan_is_one_line_error(self, capsys, tmp_path):
        plan_path = tmp_path / "bad.json"
        plan_path.write_text("{nope")
        code = main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--inject", str(plan_path)]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error: invalid fault plan JSON" in captured.err

    def test_unknown_site_is_one_line_error(self, capsys, tmp_path):
        plan_path = tmp_path / "bad.json"
        plan_path.write_text(json.dumps({"specs": [{"site": "warp.core"}]}))
        code = main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--inject", str(plan_path)]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error: unknown fault site" in captured.err


class TestProfileErrors:
    """``repro profile`` answers bad inputs with one line, not a
    traceback (satellite: it used to dump KeyError/JSONDecodeError)."""

    @pytest.mark.parametrize(
        "make_path, expected",
        [
            (lambda d: d / "missing.jsonl", "trace file not found"),
            (lambda d: d, "cannot read trace"),  # a directory
        ],
        ids=["missing", "directory"],
    )
    def test_unreadable_paths(self, capsys, tmp_path, make_path, expected):
        code = main(["profile", str(make_path(tmp_path))])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert expected in captured.err
        assert "Traceback" not in captured.err

    def test_empty_file(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        code = main(["profile", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "contains no valid events" in captured.err
        assert "empty or not a JSONL trace" in captured.err

    def test_non_jsonl_file(self, capsys, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("this is not\na trace file\n")
        code = main(["profile", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "contains no valid events" in captured.err
        assert "2 corrupt line(s) skipped" in captured.err

    def test_partially_corrupt_trace_still_profiles(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--trace", str(trace)]
        ) == 0
        with open(trace, "a") as handle:
            handle.write("{torn line\n")
        capsys.readouterr()
        code = main(["profile", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace corruption" in out
        assert "bad_json" in out

    def test_corrupt_trace_reconciles_with_note(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        checkpoint = tmp_path / "ck.json"
        assert main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--trace", str(trace), "--checkpoint", str(checkpoint)]
        ) == 0
        # Corrupt one cache event line: the counters now under-report,
        # but the reader can prove corruption, so this is a note — not
        # a reconciliation failure.
        lines = trace.read_text().splitlines()
        index = next(i for i, line in enumerate(lines) if '"cache.' in line)
        lines[index] = lines[index][: len(lines[index]) // 2]
        trace.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        code = main(["profile", str(trace), "--checkpoint", str(checkpoint)])
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupt trace line(s) skipped" in out
        assert "reconciliation gap (corrupt trace)" in out
        assert "MISMATCH" not in out
