"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.task import Task
from repro.model.taskset import TaskSet


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_taskset() -> TaskSet:
    """Three tasks with memory phases, deadline-monotonic priorities."""
    return TaskSet.from_parameters(
        [
            # (name, C, l, u, T, D)
            ("hi", 1.0, 0.2, 0.2, 10.0, 8.0),
            ("mid", 2.0, 0.4, 0.4, 20.0, 14.0),
            ("lo", 4.0, 0.8, 0.8, 50.0, 40.0),
        ]
    )


@pytest.fixture
def figure1_like_taskset() -> TaskSet:
    """The Fig. 1 reconstruction (see repro.examples_support)."""
    from repro.examples_support import figure1_taskset

    return figure1_taskset()


@pytest.fixture
def single_task_set() -> TaskSet:
    return TaskSet(
        [
            Task.sporadic(
                "solo",
                exec_time=3.0,
                period=20.0,
                deadline=15.0,
                copy_in=1.0,
                copy_out=0.5,
                priority=0,
            )
        ]
    )
