"""Incremental MILP retargeting and the warm-started fixpoint.

``update_delay_milp`` mutates only the window-dependent right-hand
sides of a live model; the contract is *bit-identity* with a fresh
build at the new window — same matrices, same row order, same audit
verdict — or ``None`` when the interval count changed and the caller
must rebuild. On top of it, the analysis keeps one compiled model per
fixpoint and squeezes converged iterations closed with the LP bound;
neither may ever change a WCRT.
"""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisCache, cache_scope
from repro.analysis.interface import AnalysisOptions
from repro.analysis.proposed.formulation import (
    AnalysisMode,
    build_delay_milp,
    update_delay_milp,
)
from repro.analysis.proposed.response_time import (
    ProposedAnalysis,
    _IncrementalSlot,
)
from repro.errors import SolverError
from repro.milp.audit import audit_delay_milp
from repro.model.taskset import TaskSet
from repro.obs import recording

_COMPILED_FIELDS = (
    "objective",
    "row_matrix",
    "row_lower",
    "row_upper",
    "var_lower",
    "var_upper",
    "integrality",
)

#: Finite higher-priority WCRTs activate the jitter-aware refinement,
#: whose budget boundaries (``eta(w + R)``) move independently of the
#: paper-capped interval count — exactly the situation where an update
#: changes row bounds without changing the variable structure.
_HP_WCRT = {"a": 3.0, "b": 7.5}


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
        ]
    )


def _assert_compiled_equal(left, right) -> None:
    for field in _COMPILED_FIELDS:
        assert np.array_equal(getattr(left, field), getattr(right, field)), field
    assert left.objective_constant == right.objective_constant
    assert [v.name for v in left.variables] == [v.name for v in right.variables]


class TestSetRhs:
    def test_set_rhs_patches_the_cached_compilation_in_place(self, ts):
        task = ts.by_name("c")
        built = build_delay_milp(ts, task, 8.0, AnalysisMode.NLS)
        model = built.model
        compiled = model.compile()
        assert model.set_rhs("C7[a]", 123.0)
        # Same compiled object, already carrying the new row bounds.
        assert model.compile() is compiled
        con = model.constraint_named("C7[a]")
        index = list(model.constraints).index(con)
        lower, upper = con.bounds()
        assert compiled.row_lower[index] == lower
        assert compiled.row_upper[index] == upper

    def test_set_rhs_on_an_unknown_row_reports_false(self, ts):
        task = ts.by_name("c")
        model = build_delay_milp(ts, task, 8.0, AnalysisMode.NLS).model
        assert not model.set_rhs("no-such-row", 1.0)

    def test_set_rhs_rejects_non_finite_bounds(self, ts):
        task = ts.by_name("c")
        model = build_delay_milp(ts, task, 8.0, AnalysisMode.NLS).model
        with pytest.raises(SolverError):
            model.set_rhs("C7[a]", float("nan"))


class TestUpdateDelayMilp:
    @pytest.mark.parametrize("w1, w2", [(14.5, 17.25), (15.0, 17.5)])
    def test_update_is_bit_identical_to_a_fresh_build(self, ts, w1, w2):
        task = ts.by_name("c")
        built = build_delay_milp(ts, task, w1, AnalysisMode.NLS, hp_wcrt=_HP_WCRT)
        before = np.array(built.model.compile().row_upper)
        updated = update_delay_milp(built, ts, task, w2, _HP_WCRT)
        assert updated is not None
        assert updated.window == w2
        fresh = build_delay_milp(ts, task, w2, AnalysisMode.NLS, hp_wcrt=_HP_WCRT)
        _assert_compiled_equal(updated.model.compile(), fresh.model.compile())
        # The retarget was not a no-op: some row bound really moved.
        assert not np.array_equal(before, fresh.model.compile().row_upper)

    def test_update_refuses_an_interval_count_change(self, ts):
        task = ts.by_name("c")
        built = build_delay_milp(ts, task, 8.0, AnalysisMode.NLS)
        assert update_delay_milp(built, ts, task, 30.0, None) is None

    def test_case_b_models_are_window_independent(self, ts):
        marked = ts.with_ls_marks(["a"])
        task = marked.by_name("a")
        built = build_delay_milp(marked, task, 0.0, AnalysisMode.LS_CASE_B)
        assert update_delay_milp(built, marked, task, 99.0, None) is built

    def test_updated_model_still_passes_the_audit(self, ts):
        task = ts.by_name("c")
        built = build_delay_milp(ts, task, 14.5, AnalysisMode.NLS, hp_wcrt=_HP_WCRT)
        updated = update_delay_milp(built, ts, task, 17.25, _HP_WCRT)
        assert updated is not None
        assert audit_delay_milp(updated, ts, task).ok


class TestWarmStartedFixpoint:
    def test_successful_update_counts_as_a_warm_start(self, ts):
        task = ts.by_name("c")
        cache = AnalysisCache()
        analysis = ProposedAnalysis(cache=cache)
        slot = _IncrementalSlot()
        with cache_scope(cache), recording() as recorder:
            analysis._obtain_model(
                slot, ts, task, 14.5, AnalysisMode.NLS, _HP_WCRT
            )
            analysis._obtain_model(
                slot, ts, task, 17.25, AnalysisMode.NLS, _HP_WCRT
            )
        assert cache.counters.get("milp_warm_starts") == 1
        names = [e["name"] for e in recorder.events]
        assert "milp.incremental.update" in names

    def test_interval_count_change_is_a_visible_rebuild(self, ts):
        task = ts.by_name("c")
        cache = AnalysisCache()
        analysis = ProposedAnalysis(cache=cache)
        slot = _IncrementalSlot()
        with cache_scope(cache), recording() as recorder:
            analysis._obtain_model(slot, ts, task, 8.0, AnalysisMode.NLS, None)
            analysis._obtain_model(slot, ts, task, 30.0, AnalysisMode.NLS, None)
        assert not cache.counters.get("milp_warm_starts")
        names = [e["name"] for e in recorder.events]
        assert "milp.incremental.rebuild" in names

    def test_lp_squeeze_returns_the_incumbent_without_an_integer_solve(
        self, ts
    ):
        # When the LP bound cannot exceed the incumbent, a solved MILP
        # could not either (lp >= opt and the fixpoint is monotone), so
        # the iteration closes at exactly the incumbent value.
        task = ts.by_name("c")
        cache = AnalysisCache()
        analysis = ProposedAnalysis(cache=cache)
        incumbent = 1e6
        with cache_scope(cache):
            evaluated = analysis._delay_objective(
                ts,
                task,
                8.0,
                AnalysisMode.NLS,
                None,
                slot=_IncrementalSlot(),
                warm_objective=incumbent,
            )
        assert evaluated.objective == incumbent
        assert cache.counters.get("milp_warm_starts") == 1
        assert cache.counters.get("lp_solves") == 1
        assert not cache.counters.get("milp_solves")

    def test_wcrts_are_bit_identical_with_and_without_the_cache(self, ts):
        options = AnalysisOptions(stop_at_deadline=False)
        with cache_scope(AnalysisCache()):
            cached = ProposedAnalysis(options=options).analyze(ts)
        with cache_scope(AnalysisCache(enabled=False)):
            uncached = ProposedAnalysis(options=options).analyze(ts)
        assert [r.wcrt for r in cached.results] == [
            r.wcrt for r in uncached.results
        ]
        assert [r.iterations for r in cached.results] == [
            r.iterations for r in uncached.results
        ]
