"""Smoke tests: the example scripts run and tell their stories."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "greedy LS marking: schedulable=True" in out
        assert "'control'" in out.split("LS tasks=")[1]

    def test_figure1(self):
        out = _run("figure1_motivating_example.py")
        assert "MISSES" in out and out.count("MEETS") == 2

    def test_ls_case_study(self):
        out = _run("ls_assignment_case_study.py")
        assert "greedy               -> SCHEDULABLE" in out
        assert "all_nls              -> not schedulable" in out
        assert "tightest_deadlines   -> not schedulable" in out

    def test_custom_arrival_curves(self):
        out = _run("custom_arrival_curves.py")
        assert "arrival-curve values" in out
        assert "proposed" in out

    def test_task_chains(self):
        out = _run("task_chains.py")
        assert "reaction bound" in out
        assert "total reaction bound" in out

    def test_simulation_vs_analysis(self):
        out = _run("simulation_vs_analysis.py", "3")
        assert "all observed responses are within the analytic bounds" in out

    def test_worst_case_witness(self):
        out = _run("worst_case_witness.py")
        assert "mode=nls" in out
        assert "mode=ls_a" in out
        assert "mode=ls_b" in out
