"""k-protocol sweeps through every execution path, keyed stores, reports.

The sweep stack used to assume exactly ``("nps_carry", "wasly",
"proposed")``; these tests pin the k-protocol generalisation: a
five-protocol sweep is bit-identical across ``jobs=1``, ``jobs=N`` and
the socket service, persistent-store units are keyed by protocol tuple
*and* the protocol-specific options (no cross-protocol collisions),
reports pick an explicit baseline instead of hard-coding "proposed",
and the CLI/service layers reject or re-normalise zoo options at the
boundary.
"""

import dataclasses
import json
from xml.dom import minidom

import pytest

from repro.analysis.interface import AnalysisOptions, RegulationConfig
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    SweepPoint,
    SweepResult,
    ascii_plot,
    figure2_config,
    render_sweep_table,
    run_experiment,
    sweep_to_csv,
)
from repro.experiments.figures import save_sweep_svg, sweep_to_svg
from repro.experiments.report import baseline_protocol
from repro.experiments.units import unit_digest
from repro.generator.taskset_gen import GenerationConfig
from repro.service.worker import options_from_dict, options_to_dict

ZOO = ("nps_carry", "wasly", "proposed", "threshold", "regulated")


def _zoo_config(protocols=ZOO, sets=2):
    points = tuple(
        SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
        for u in (0.3, 0.5)
    )
    return ExperimentConfig(
        name="zoo",
        x_label="U",
        points=points,
        sets_per_point=sets,
        seed=17,
        method="closed_form",
        protocols=protocols,
    )


def _identical(a: SweepResult, b: SweepResult) -> None:
    assert [p.x for p in a.points] == [p.x for p in b.points]
    for pa, pb in zip(a.points, b.points):
        assert pa.ratios == pb.ratios
        assert pa.failures == pb.failures
        assert pa.sets_evaluated == pb.sets_evaluated
        assert dict(pa.analysis_stats) == dict(pb.analysis_stats)


class TestKProtocolSweep:
    def test_config_carries_five_protocols(self):
        cfg = figure2_config("fig2a", protocols=ZOO)
        assert cfg.protocols == ZOO

    def test_unknown_protocol_rejected_with_registry_listing(self):
        with pytest.raises(ExperimentError) as err:
            figure2_config("fig2a", protocols=("foo",))
        message = str(err.value)
        assert "unknown protocol(s) 'foo'" in message
        assert "registered protocols:" in message

    def test_empty_protocol_tuple_rejected(self):
        with pytest.raises(ExperimentError, match="empty protocol"):
            figure2_config("fig2a", protocols=())

    def test_five_protocol_ratios_cover_every_protocol(self):
        result = run_experiment(_zoo_config())
        for point in result.points:
            assert set(point.ratios) == set(ZOO)
            for ratio in point.ratios.values():
                assert 0.0 <= ratio <= 1.0

    def test_bit_identity_jobs_1_vs_n(self):
        config = _zoo_config()
        _identical(run_experiment(config), run_experiment(config, jobs=2))

    def test_bit_identity_service_path(self):
        from repro.service import run_service_sweep

        config = _zoo_config()
        sequential = run_experiment(config)
        service = run_service_sweep(config, workers=2)
        _identical(sequential, service)


class TestStoreKeying:
    """No cross-protocol collisions in the persistent unit store."""

    def test_unit_digest_covers_protocol_tuple(self):
        base = _zoo_config(protocols=("nps_carry", "threshold"))
        other = dataclasses.replace(
            base, protocols=("nps_carry", "regulated")
        )
        assert unit_digest(base, 0, 0, None, "count_unschedulable") != \
            unit_digest(other, 0, 0, None, "count_unschedulable")

    def test_unit_digest_covers_zoo_options(self):
        config = _zoo_config()
        plain = AnalysisOptions()
        thetas = AnalysisOptions(preemption_thresholds=(("t0", 0),))
        throttled = AnalysisOptions(
            regulation=RegulationConfig(budget=0.5, period=1.0)
        )
        digests = [
            unit_digest(config, 0, 0, opts, "count_unschedulable")
            for opts in (plain, thetas, throttled)
        ]
        assert len(set(digests)) == 3
        # None means "the defaults" (pinned by the service tests), so
        # it must collide with explicit default options — and only them.
        assert unit_digest(
            config, 0, 0, None, "count_unschedulable"
        ) == digests[0]

    def test_warm_store_serves_same_protocols_only(self, tmp_path):
        from repro.service import run_service_sweep

        cache = tmp_path / "store.sqlite"
        threshold_cfg = _zoo_config(protocols=("nps_carry", "threshold"))
        regulated_cfg = _zoo_config(protocols=("nps_carry", "regulated"))
        cold = run_service_sweep(
            threshold_cfg, workers=2, cache_path=str(cache),
            checkpoint_dir=str(tmp_path / "c1"),
        )
        # Same protocols again: every unit comes from the store.
        warm = run_service_sweep(
            threshold_cfg, workers=2, cache_path=str(cache),
            checkpoint_dir=str(tmp_path / "c2"),
        )
        assert [p.ratios for p in warm.points] == [
            p.ratios for p in cold.points
        ]
        assert [p.failures for p in warm.points] == [
            p.failures for p in cold.points
        ]
        for point in warm.points:
            stats = dict(point.analysis_stats)
            assert stats["unit_store.hits"] == threshold_cfg.sets_per_point
        # A different protocol tuple must NOT be served those entries —
        # and must still produce the sequential truth.
        crossed = run_service_sweep(
            regulated_cfg, workers=2, cache_path=str(cache),
            checkpoint_dir=str(tmp_path / "c3"),
        )
        for point in crossed.points:
            assert dict(point.analysis_stats).get("unit_store.hits", 0) == 0
        sequential = run_experiment(regulated_cfg)
        assert [p.ratios for p in crossed.points] == [
            p.ratios for p in sequential.points
        ]

    def test_changed_regulation_misses_the_store(self, tmp_path):
        from repro.service import run_service_sweep

        cache = tmp_path / "store.sqlite"
        config = _zoo_config(protocols=("nps_carry", "regulated"))
        tight = AnalysisOptions(
            regulation=RegulationConfig(budget=0.5, period=1.0)
        )
        loose = AnalysisOptions(
            regulation=RegulationConfig(budget=0.9, period=1.0)
        )
        run_service_sweep(
            config, workers=2, options=tight, cache_path=str(cache),
            checkpoint_dir=str(tmp_path / "c1"),
        )
        reran = run_service_sweep(
            config, workers=2, options=loose, cache_path=str(cache),
            checkpoint_dir=str(tmp_path / "c2"),
        )
        for point in reran.points:
            assert dict(point.analysis_stats).get("unit_store.hits", 0) == 0


class TestReportsAndFigures:
    def test_baseline_protocol_prefers_proposed(self):
        assert baseline_protocol(ZOO) == "proposed"
        assert baseline_protocol(("threshold", "regulated")) == "regulated"
        with pytest.raises(ValueError):
            baseline_protocol(())

    def test_table_advantage_lines_pair_against_one_baseline(self):
        result = run_experiment(_zoo_config())
        table = render_sweep_table(result)
        for protocol in ZOO:
            if protocol == "proposed":
                continue
            assert f"max advantage of proposed over {protocol}:" in table
        assert "advantage of proposed over proposed" not in table

    def test_table_without_proposed_does_not_crash(self):
        # The pre-zoo report unconditionally indexed "proposed".
        result = run_experiment(
            _zoo_config(protocols=("nps_carry", "threshold", "regulated"))
        )
        table = render_sweep_table(result)
        assert "max advantage of regulated over nps_carry:" in table
        assert "max advantage of regulated over threshold:" in table
        assert "proposed" not in table

    def test_explicit_baseline_override(self):
        result = run_experiment(
            _zoo_config(protocols=("nps_carry", "threshold"))
        )
        table = render_sweep_table(result, baseline="nps_carry")
        assert "max advantage of nps_carry over threshold:" in table

    def test_csv_and_ascii_cover_five_series(self):
        result = run_experiment(_zoo_config())
        header = sweep_to_csv(result).splitlines()[0]
        for protocol in ZOO:
            assert protocol in header
        plot = ascii_plot(result)
        assert "threshold" in plot and "regulated" in plot

    def test_svg_has_one_series_per_protocol(self):
        result = run_experiment(_zoo_config())
        svg = sweep_to_svg(result)
        document = minidom.parseString(svg)
        polylines = document.getElementsByTagName("polyline")
        assert len(polylines) == len(ZOO)
        for protocol in ZOO:
            assert protocol in svg

    def test_save_sweep_svg_writes_parseable_file(self, tmp_path):
        result = run_experiment(_zoo_config(protocols=("nps_carry",)))
        path = tmp_path / "zoo.svg"
        save_sweep_svg(result, str(path))
        document = minidom.parse(str(path))
        assert document.documentElement.tagName == "svg"


class TestCliBoundary:
    def test_unknown_protocols_flag_is_a_one_line_error(self, capsys):
        from repro.cli import main

        code = main([
            "figure", "fig2a", "--sets", "1", "--protocols", "foo",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: unknown protocol(s) 'foo'")
        assert "registered protocols:" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_malformed_regulation_flag(self, capsys):
        from repro.cli import main

        code = main([
            "figure", "fig2a", "--sets", "1", "--regulation", "bogus",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_thresholds_flag(self, capsys):
        from repro.cli import main

        code = main([
            "figure", "fig2a", "--sets", "1", "--thresholds", "a:b",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestServiceCodec:
    """Wire round-trips must preserve the digest-bearing repr."""

    def test_zoo_options_roundtrip_repr_identically(self):
        options = AnalysisOptions(
            preemption_thresholds=(("mid", 0), ("lo", 1)),
            regulation=RegulationConfig(budget=0.5, period=1.0),
        )
        wire = json.loads(json.dumps(options_to_dict(options)))
        rebuilt = options_from_dict(wire)
        assert repr(rebuilt) == repr(options)

    def test_default_options_roundtrip(self):
        options = AnalysisOptions()
        wire = json.loads(json.dumps(options_to_dict(options)))
        assert repr(options_from_dict(wire)) == repr(options)
        assert options_from_dict(None) is None
