"""Unit and property tests for the adversarial release search."""

import numpy as np
import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.nps import NpsAnalysis
from repro.analysis.wasly import WaslyAnalysis
from repro.model.taskset import TaskSet
from repro.sim.adversarial import find_worst_response
from repro.sim.interval_sim import WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import sporadic_plan


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("hi", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("mid", 2.0, 0.3, 0.3, 20.0, 18.0),
            ("lo", 4.0, 0.8, 0.8, 50.0, 45.0),
        ]
    )


class TestSearch:
    def test_finds_blocking_for_high_priority_victim(self, ts):
        result = find_worst_response(
            ts, "hi", NpsSimulator, rng=np.random.default_rng(1)
        )
        # The worst pattern must include lower-priority blocking:
        # response strictly above hi's own cost.
        assert result.worst_response > ts.by_name("hi").total_cost + 0.5
        assert result.patterns_tried > 5

    def test_beats_random_plans(self, ts):
        rng = np.random.default_rng(2)
        random_best = float("-inf")
        for _ in range(5):
            plan = sporadic_plan(ts, 200.0, rng)
            trace = NpsSimulator(ts).run(plan)
            random_best = max(random_best, trace.max_response_time("hi"))
        adv = find_worst_response(
            ts, "hi", NpsSimulator, rng=np.random.default_rng(3)
        )
        assert adv.worst_response >= random_best - 1e-9

    def test_observation_within_analysis_bound(self, ts):
        options = AnalysisOptions(stop_at_deadline=False)
        for victim in ("hi", "mid", "lo"):
            adv = find_worst_response(
                ts, victim, WaslySimulator, rng=np.random.default_rng(4)
            )
            bound = WaslyAnalysis(options).response_time(
                ts, ts.by_name(victim)
            )
            assert adv.worst_response <= bound.wcrt + 1e-6

    def test_nps_tightness_on_two_tasks(self):
        # For two NPS tasks the exact analysis is tight: the search
        # must achieve it exactly (blocking + own cost).
        ts = TaskSet.from_parameters(
            [
                ("hi", 1.0, 0.0, 0.0, 10.0, 10.0),
                ("lo", 4.0, 0.0, 0.0, 40.0, 40.0),
            ]
        )
        adv = find_worst_response(
            ts, "hi", NpsSimulator, rng=np.random.default_rng(5)
        )
        bound = NpsAnalysis().response_time(ts, ts.by_name("hi")).wcrt
        assert adv.worst_response == pytest.approx(bound, abs=1e-2)

    def test_result_trace_contains_victim_jobs(self, ts):
        adv = find_worst_response(
            ts, "mid", NpsSimulator, rng=np.random.default_rng(6)
        )
        assert adv.trace.jobs_of("mid")
        assert adv.victim == "mid"
