"""Unit tests for the protocol-[3] analysis."""

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.analysis.wasly import WaslyAnalysis
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
        ]
    )


class TestWasly:
    def test_ls_marks_ignored(self, ts):
        plain = WaslyAnalysis().analyze(ts)
        marked = WaslyAnalysis().analyze(ts.with_ls_marks(["a", "b"]))
        for p, m in zip(plain.results, marked.results):
            assert p.wcrt == pytest.approx(m.wcrt)

    def test_result_tagged_with_caller_task(self, ts):
        marked = ts.with_ls_marks(["a"])
        result = WaslyAnalysis().response_time(marked, marked.by_name("a"))
        assert result.task.latency_sensitive  # caller's object, not stripped

    def test_single_task_matches_proposed(self, single_task_set):
        task = single_task_set[0]
        wasly = WaslyAnalysis().response_time(single_task_set, task).wcrt
        prop = ProposedAnalysis().response_time(single_task_set, task).wcrt
        assert wasly == pytest.approx(prop)

    def test_wasly_never_better_than_proposed_all_nls(self, ts):
        # With no LS tasks the two formulations coincide except for the
        # blocking budget (2 for both here) -> equal results expected.
        options = AnalysisOptions(stop_at_deadline=False)
        for task in ts:
            w = WaslyAnalysis(options).response_time(ts, task).wcrt
            p = ProposedAnalysis(options).response_time(ts, task).wcrt
            assert w == pytest.approx(p, abs=1e-6)

    def test_closed_form_method(self, ts):
        analysis = WaslyAnalysis(method="closed_form")
        result = analysis.response_time(ts, ts.by_name("b"))
        assert result.wcrt >= WaslyAnalysis().response_time(
            ts, ts.by_name("b")
        ).wcrt - 1e-9

    def test_verdicts_consistent(self, ts):
        analysis = WaslyAnalysis()
        for task in ts:
            assert analysis.verdict(ts, task) == analysis.response_time(
                ts, task
            ).schedulable

    def test_protocol_label(self):
        assert WaslyAnalysis().protocol == "wasly"
