"""Tests for the jitter-aware carry refinement (opt-in tightening)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.interface import AnalysisOptions
from repro.analysis.proposed.intervals import interference_budget
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.analysis.wasly import WaslyAnalysis
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator
from repro.sim.releases import sporadic_plan
from tests.test_properties import small_tasksets

_EXACT = AnalysisOptions(stop_at_deadline=False, max_iterations=40)


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
        ]
    )


class TestInterferenceBudget:
    def test_defaults_to_paper_count(self):
        task = Task.sporadic("j", 1.0, 10.0)
        assert interference_budget(task, 15.0) == task.eta(15.0) + 1

    def test_refinement_never_exceeds_paper(self):
        task = Task.sporadic("j", 1.0, 10.0)
        for window in (1.0, 9.0, 15.0, 35.0):
            for wcrt in (0.5, 3.0, 9.9):
                refined = interference_budget(
                    task, window, {"j": wcrt}
                )
                assert refined <= task.eta(window) + 1

    def test_small_wcrt_drops_the_carry(self):
        # R_j = 0.5 on T_j = 10: a window of 9 fits one job, not two.
        task = Task.sporadic("j", 1.0, 10.0)
        assert interference_budget(task, 9.0, {"j": 0.5}) == 1
        assert interference_budget(task, 9.0) == 2

    def test_infinite_wcrt_falls_back(self):
        task = Task.sporadic("j", 1.0, 10.0)
        assert (
            interference_budget(task, 9.0, {"j": float("inf")})
            == task.eta(9.0) + 1
        )

    def test_unknown_task_falls_back(self):
        task = Task.sporadic("j", 1.0, 10.0)
        assert interference_budget(task, 9.0, {}) == task.eta(9.0) + 1


class TestRefinedAnalysis:
    def test_refined_at_most_paper(self, ts):
        paper = ProposedAnalysis(_EXACT)
        refined = ProposedAnalysis(_EXACT, carry_refinement=True)
        for task in ts:
            assert (
                refined.response_time(ts, task).wcrt
                <= paper.response_time(ts, task).wcrt + 1e-9
            )

    def test_refinement_strictly_helps_somewhere(self, ts):
        paper = ProposedAnalysis(_EXACT)
        refined = ProposedAnalysis(_EXACT, carry_refinement=True)
        gains = [
            paper.response_time(ts, t).wcrt
            - refined.response_time(ts, t).wcrt
            for t in ts
        ]
        assert max(gains) > 0.5  # the lowest-priority task gains

    def test_works_for_wasly_too(self, ts):
        paper = WaslyAnalysis(_EXACT)
        refined = WaslyAnalysis(_EXACT, carry_refinement=True)
        for task in ts:
            assert (
                refined.response_time(ts, task).wcrt
                <= paper.response_time(ts, task).wcrt + 1e-9
            )

    def test_cache_is_reused(self, ts):
        analysis = ProposedAnalysis(_EXACT, carry_refinement=True)
        analysis.analyze(ts)
        assert len(analysis._wcrt_cache) >= len(ts) - 1

    @settings(max_examples=8, deadline=None)
    @given(small_tasksets(ls_marks=True), st.integers(0, 10_000))
    def test_refined_bound_still_covers_simulation(self, ts, seed):
        rng = np.random.default_rng(seed)
        plan = sporadic_plan(ts, 400.0, rng)
        trace = ProposedSimulator(ts).run(plan)
        analysis = ProposedAnalysis(_EXACT, carry_refinement=True)
        for task in ts:
            result = analysis.response_time(ts, task)
            assume(result.converged)
            assert trace.max_response_time(task.name) <= result.wcrt + 1e-6


class TestRefinementSurcharge:
    """Pinned falsifying examples: the refined count must keep the
    structural intervals that the paper's surplus carries absorb."""

    def _check(self, ts, seed):
        rng = np.random.default_rng(seed)
        trace = ProposedSimulator(ts).run(sporadic_plan(ts, 400.0, rng))
        refined = ProposedAnalysis(_EXACT, carry_refinement=True)
        paper = ProposedAnalysis(_EXACT)
        for task in ts:
            bound = refined.response_time(ts, task).wcrt
            assert trace.max_response_time(task.name) <= bound + 1e-6, task.name
            assert bound <= paper.response_time(ts, task).wcrt + 1e-9, task.name

    def test_cancellation_bubble_from_hp_ls_promotion(self):
        # An urgent promotion of t1 cancels t2's copy-in, leaving a
        # CPU-idle interval that holds only the doomed copy-in.
        ts = TaskSet([
            Task.sporadic("t0", exec_time=0.5, period=16.0, deadline=16.0,
                          copy_in=0.0, copy_out=0.0, priority=0),
            Task.sporadic("t1", exec_time=0.5, period=8.8, deadline=8.0,
                          copy_in=0.0, copy_out=0.0, priority=1,
                          latency_sensitive=True),
            Task.sporadic("t2", exec_time=1.0, period=12.0, deadline=10.0,
                          copy_in=0.3, copy_out=0.3, priority=2,
                          latency_sensitive=True),
        ])
        self._check(ts, seed=156)

    def test_partial_interval_at_release(self):
        # t1 is released while t0's copy-in occupies the DMA with the
        # CPU idle: the in-progress interval delays t1 without any
        # higher-priority execution inside the window.
        ts = TaskSet([
            Task.sporadic("t0", exec_time=1.0, period=8.0, deadline=8.0,
                          copy_in=0.3, copy_out=0.3, priority=0),
            Task.sporadic("t1", exec_time=1.0, period=8.8, deadline=8.0,
                          copy_in=0.0, copy_out=0.0, priority=1,
                          latency_sensitive=True),
        ])
        self._check(ts, seed=0)
