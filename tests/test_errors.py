"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ModelError,
        errors.CurveError,
        errors.SolverError,
        errors.InfeasibleModelError,
        errors.UnboundedModelError,
        errors.AnalysisError,
        errors.SimulationError,
        errors.PartitioningError,
        errors.ExperimentError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_solver_error_specialisations():
    assert issubclass(errors.InfeasibleModelError, errors.SolverError)
    assert issubclass(errors.UnboundedModelError, errors.SolverError)


def test_catching_specific_before_general():
    try:
        raise errors.InfeasibleModelError("x")
    except errors.SolverError as caught:
        assert isinstance(caught, errors.InfeasibleModelError)
