"""Unit tests for the trace invariant checkers (Properties 1-4)."""

import pytest

from repro.errors import SimulationError
from repro.model.task import Task
from repro.sim.trace import Interval, Job, Trace
from repro.sim.validate import (
    check_blocking_bounds,
    check_phase_ordering,
    check_trace,
    count_blocking_intervals,
)


def _task(name, prio, ls=False):
    return Task.sporadic(
        name, exec_time=2.0, period=20.0, priority=prio,
        copy_in=0.5, copy_out=0.5, latency_sensitive=ls,
    )


def _three_interval_trace(blocking_intervals_for_hi=1, hi_ls=False):
    """Hand-built trace: lp tasks occupy intervals, hi executes last.

    Interval 0 only loads lp1; lp1 executes in interval 1, lp2 in
    interval 2, hi in interval 3; each copy-out opens the following
    interval. The ``hi`` release time selects how many lp-occupied
    intervals fall between its release and its execution start.
    """
    hi = _task("hi", 0, ls=hi_ls)
    lp1 = _task("lp1", 1)
    lp2 = _task("lp2", 2)
    intervals = [
        Interval(index=0, start=0.0, end=1.0, dma_load="lp1#0"),
        Interval(index=1, start=1.0, end=4.0, cpu_job="lp1#0",
                 dma_load="lp2#0"),
        Interval(index=2, start=4.0, end=7.0, cpu_job="lp2#0",
                 dma_load="hi#0", dma_unload="lp1#0"),
        Interval(index=3, start=7.0, end=9.5, cpu_job="hi#0",
                 dma_unload="lp2#0"),
        Interval(index=4, start=9.5, end=10.0, dma_unload="hi#0"),
    ]
    jobs = [
        Job(task=lp1, release=0.0, index=0, copy_in_start=0.0,
            copy_in_end=0.5, exec_start=1.0, exec_end=3.0, exec_interval=1,
            copy_out_start=4.0, copy_out_end=4.5),
        Job(task=lp2, release=0.0, index=0, copy_in_start=1.5,
            copy_in_end=2.0, exec_start=4.0, exec_end=6.0, exec_interval=2,
            copy_out_start=7.0, copy_out_end=7.5),
        Job(task=hi, release=1.5 if blocking_intervals_for_hi == 2 else 4.5,
            index=0, copy_in_start=4.5, copy_in_end=5.0, exec_start=7.0,
            exec_end=9.0, exec_interval=3, copy_out_start=9.5,
            copy_out_end=10.0),
    ]
    return Trace(jobs=jobs, intervals=intervals, protocol="proposed")


class TestPhaseOrdering:
    def test_wellformed_passes(self):
        check_phase_ordering(_three_interval_trace())

    def test_copy_in_in_wrong_interval_fails(self):
        trace = _three_interval_trace()
        hi_job = trace.jobs_of("hi")[0]
        hi_job.copy_in_start, hi_job.copy_in_end = 0.2, 0.7  # interval 0
        with pytest.raises(SimulationError):
            check_phase_ordering(trace)

    def test_copy_out_not_at_next_interval_start_fails(self):
        trace = _three_interval_trace()
        lp2 = trace.jobs_of("lp2")[0]
        lp2.copy_out_start = 6.7
        with pytest.raises(SimulationError):
            check_phase_ordering(trace)

    def test_urgent_copy_in_must_abut_execution(self):
        trace = _three_interval_trace()
        hi_job = trace.jobs_of("hi")[0]
        hi_job.copy_in_by = "cpu"
        hi_job.copy_in_start, hi_job.copy_in_end = 5.0, 5.5  # exec at 6.0
        with pytest.raises(SimulationError):
            check_phase_ordering(trace)


class TestBlockingBounds:
    def test_counts_lp_occupied_intervals(self):
        trace = _three_interval_trace(blocking_intervals_for_hi=2)
        hi_job = trace.jobs_of("hi")[0]
        assert count_blocking_intervals(trace, hi_job) == 2

    def test_release_mid_window_counts_partial(self):
        trace = _three_interval_trace(blocking_intervals_for_hi=1)
        hi_job = trace.jobs_of("hi")[0]
        assert count_blocking_intervals(trace, hi_job) == 1

    def test_nls_two_blockers_pass(self):
        trace = _three_interval_trace(blocking_intervals_for_hi=2)
        check_blocking_bounds(trace)

    def test_ls_two_blockers_fail(self):
        trace = _three_interval_trace(
            blocking_intervals_for_hi=2, hi_ls=True
        )
        with pytest.raises(SimulationError):
            check_blocking_bounds(trace)

    def test_ls_one_blocker_passes(self):
        trace = _three_interval_trace(
            blocking_intervals_for_hi=1, hi_ls=True
        )
        check_blocking_bounds(trace)


class TestCheckTrace:
    def test_nps_trace_skipped(self):
        trace = Trace(jobs=[], intervals=[], protocol="nps")
        check_trace(trace)  # no intervals: nothing to check

    def test_wasly_skips_blocking_bounds(self):
        # Two blockers are legal under [3] even for LS-marked tasks.
        trace = _three_interval_trace(
            blocking_intervals_for_hi=2, hi_ls=True
        )
        trace.protocol = "wasly"
        check_trace(trace)
