"""Fine-grained protocol-rule scenarios (R2-R5 corner cases).

Each test crafts a release pattern that forces one specific rule
interaction and checks the simulator's decision against the rule text.
"""

import pytest

from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator
from repro.sim.releases import ReleasePlan
from repro.sim.validate import check_trace


def _ts(rows, ls=()):
    return TaskSet.from_parameters(rows).with_ls_marks(ls)


class TestPromotionChoice:
    def test_highest_priority_ls_wins_urgency(self):
        """R4: two LS tasks released in the same interval — the
        higher-priority one becomes urgent."""
        ts = _ts(
            [
                ("ls_hi", 1.0, 0.2, 0.2, 20.0, 6.0),
                ("ls_lo", 1.0, 0.2, 0.2, 25.0, 12.0),
                ("lp", 4.0, 1.0, 1.0, 60.0, 60.0),
            ],
            ls=("ls_hi", "ls_lo"),
        )
        # lp's copy-in [0,1]; both LS released at 0.5 -> cancel + promote.
        plan = ReleasePlan(
            releases={"lp": (0.0,), "ls_hi": (0.5,), "ls_lo": (0.5,)},
            horizon=40.0,
        )
        trace = ProposedSimulator(ts).run(plan)
        check_trace(trace)
        hi = trace.jobs_of("ls_hi")[0]
        lo = trace.jobs_of("ls_lo")[0]
        assert hi.urgent and hi.copy_in_by == "cpu"
        assert not lo.urgent
        assert hi.exec_start < lo.exec_start

    def test_nls_release_does_not_promote(self):
        """R4 applies to LS tasks only: an NLS release during a
        cancelled interval stays in the queue."""
        ts = _ts(
            [
                ("ls", 1.0, 0.2, 0.2, 20.0, 18.0),
                ("nls", 1.0, 0.2, 0.2, 25.0, 22.0),
                ("lp", 4.0, 1.0, 1.0, 60.0, 60.0),
            ],
            ls=("ls",),
        )
        # Only the NLS task is released during lp's copy-in: no R3.
        plan = ReleasePlan(
            releases={"lp": (0.0,), "nls": (0.5,), "ls": (30.0,)},
            horizon=60.0,
        )
        trace = ProposedSimulator(ts).run(plan)
        lp = trace.jobs_of("lp")[0]
        nls = trace.jobs_of("nls")[0]
        assert not lp.was_cancelled  # NLS releases never cancel (R3)
        assert not nls.urgent


class TestCancellationScope:
    def test_ls_release_cancels_only_lower_priority(self):
        """R3: an LS release does not cancel a *higher*-priority
        copy-in."""
        ts = _ts(
            [
                ("hp", 1.0, 1.0, 0.2, 20.0, 19.0),
                ("ls", 1.0, 0.2, 0.2, 25.0, 20.0),
            ],
            ls=("ls",),
        )
        # hp's copy-in [0, 1.0]; ls released mid-copy at 0.5: hp
        # outranks ls, so the copy-in stands.
        plan = ReleasePlan(
            releases={"hp": (0.0,), "ls": (0.5,)}, horizon=40.0
        )
        trace = ProposedSimulator(ts).run(plan)
        assert not trace.jobs_of("hp")[0].was_cancelled

    def test_mid_priority_ls_cancels_lp_not_hp(self):
        """Victim selection respects the canceller's priority."""
        ts = _ts(
            [
                ("hp", 1.0, 0.5, 0.2, 20.0, 18.0),
                ("ls", 1.0, 0.2, 0.2, 25.0, 10.0),
                ("lp", 3.0, 2.0, 0.5, 60.0, 60.0),
            ],
            ls=("ls",),
        )
        # lp released alone: its copy-in [0,2]; ls arrives at 1.0 ->
        # cancels lp. hp arrives later and is untouched.
        plan = ReleasePlan(
            releases={"lp": (0.0,), "ls": (1.0,), "hp": (10.0,)},
            horizon=60.0,
        )
        trace = ProposedSimulator(ts).run(plan)
        assert trace.jobs_of("lp")[0].was_cancelled
        assert not trace.jobs_of("hp")[0].was_cancelled
        check_trace(trace)

    def test_cancelled_dma_time_is_wasted(self):
        """The aborted copy-in's DMA time delays the interval end."""
        ts = _ts(
            [
                ("ls", 1.0, 0.2, 0.2, 20.0, 18.0),
                ("lp", 3.0, 2.0, 0.5, 60.0, 60.0),
            ],
            ls=("ls",),
        )
        plan = ReleasePlan(
            releases={"lp": (0.0,), "ls": (1.5,)}, horizon=40.0
        )
        trace = ProposedSimulator(ts).run(plan)
        lp = trace.jobs_of("lp")[0]
        assert lp.was_cancelled
        (start, end), = lp.cancelled_copy_ins
        assert end == pytest.approx(1.5)  # aborted at the release

    def test_pipeline_recovers_after_cancellation(self):
        """The cancelled victim reloads and completes later (R3 puts
        it back in the ready queue)."""
        ts = _ts(
            [
                ("ls", 1.0, 0.2, 0.2, 20.0, 18.0),
                ("lp", 3.0, 2.0, 0.5, 60.0, 60.0),
            ],
            ls=("ls",),
        )
        plan = ReleasePlan(
            releases={"lp": (0.0,), "ls": (1.0,)}, horizon=60.0
        )
        trace = ProposedSimulator(ts).run(plan)
        lp = trace.jobs_of("lp")[0]
        assert lp.completed
        assert lp.copy_in_by == "dma"  # the reload went through the DMA
        # The reload starts no earlier than the cancellation instant
        # and runs its full duration this time.
        assert lp.copy_in_start >= 1.0 - 1e-9
        assert lp.copy_in_end - lp.copy_in_start == pytest.approx(2.0)


class TestEagerCopyOut:
    def test_copy_out_runs_without_followup_work(self):
        """R2: the last job's output is written back even when the
        system then goes idle."""
        ts = _ts([("solo", 2.0, 0.5, 0.5, 50.0, 45.0)])
        plan = ReleasePlan(releases={"solo": (0.0,)}, horizon=50.0)
        trace = ProposedSimulator(ts).run(plan)
        job = trace.jobs_of("solo")[0]
        assert job.completed
        # copy-out starts right at the interval after execution.
        assert job.copy_out_start == pytest.approx(job.exec_end)

    def test_urgent_jobs_copy_out_via_dma(self):
        """Property 2 holds for urgent executions too."""
        ts = _ts(
            [
                ("ls", 1.0, 0.2, 0.3, 20.0, 18.0),
                ("lp", 3.0, 2.0, 0.5, 60.0, 60.0),
            ],
            ls=("ls",),
        )
        plan = ReleasePlan(
            releases={"lp": (0.0,), "ls": (1.0,)}, horizon=60.0
        )
        trace = ProposedSimulator(ts).run(plan)
        ls = trace.jobs_of("ls")[0]
        assert ls.urgent
        assert ls.copy_out_end == pytest.approx(
            ls.copy_out_start + 0.3
        )
        check_trace(trace)
