"""Tests for the flow-aware rule families, baselines, SARIF, and CLI.

Fixture modules under ``tests/lint_fixtures/`` are valid-syntax true
positives; they are parsed and injected into (a copy of) the real
module mapping so rules see both the genuine anchors (EVENT_NAMES,
COUNTER_NAMES, the store) and the planted violation.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    LintViolation,
    SourceModule,
    load_baseline,
    load_project,
    run_lint,
    suppress_baseline,
    to_sarif,
    write_baseline,
)
from repro.lint.engine import load_repo_modules

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def _with_fixture(stem, name=None):
    """Real module mapping plus one parsed fixture module."""
    modules = dict(load_repo_modules())
    path = FIXTURES / f"{stem}.py"
    module_name = name or f"repro.lintfixture.{stem}"
    modules[module_name] = SourceModule.parse(
        module_name, str(path), path.read_text()
    )
    return modules


def _fixture_only(stem):
    path = FIXTURES / f"{stem}.py"
    name = f"repro.lintfixture.{stem}"
    return {name: SourceModule.parse(name, str(path), path.read_text())}


class TestTraceContractRule:
    def test_clean_tree_passes(self):
        assert run_lint(rules=["trace-contract"]) == []

    def test_unknown_event_name_flagged(self):
        violations = run_lint(
            _with_fixture("trace_bad"), rules=["trace-contract"]
        )
        assert any(
            "fixture.unknown.event" in v.message and v.severity == "error"
            for v in violations
        )

    def test_undeclared_payload_key_flagged(self):
        violations = run_lint(
            _with_fixture("trace_bad"), rules=["trace-contract"]
        )
        assert any("bogus_key" in v.message for v in violations)

    def test_literal_type_mismatch_flagged(self):
        violations = run_lint(
            _with_fixture("trace_bad"), rules=["trace-contract"]
        )
        assert any(
            "'not-a-number'" in v.message and "number" in v.message
            for v in violations
        )

    def test_dynamic_event_name_warns_not_crashes(self):
        violations = run_lint(
            _with_fixture("trace_dynamic"), rules=["trace-contract"]
        )
        dynamic = [
            v for v in violations
            if "dynamic" in v.message and "trace_dynamic" in v.path
        ]
        assert len(dynamic) == 1
        assert dynamic[0].severity == "warning"
        # The honest warnings are the only findings the fixture adds
        # (its unresolved call site also cascades into the real
        # forwarding closure via the name-based over-approximation).
        assert all(v.severity == "warning" for v in violations)

    def test_dead_catalogue_entry_flagged(self):
        modules = dict(load_repo_modules())
        units = modules["repro.experiments.units"]
        source = Path(units.path).read_text()
        target = 'writer.emit("checkpoint.saved", point=point_index)'
        assert target in source
        modules["repro.experiments.units"] = SourceModule.parse(
            units.name, units.path, source.replace(target, "pass")
        )
        violations = run_lint(modules, rules=["trace-contract"])
        assert any(
            "dead schema entry" in v.message
            and "checkpoint.saved" in v.message
            for v in violations
        )

    def test_renamed_emit_fails_contract(self):
        modules = dict(load_repo_modules())
        cache = modules["repro.analysis.cache"]
        source = Path(cache.path).read_text()
        tampered = source.replace('f"cache.{name}"', '"cache.renamed"')
        modules["repro.analysis.cache"] = SourceModule.parse(
            cache.name, cache.path, tampered
        )
        violations = run_lint(modules, rules=["trace-contract"])
        assert any("cache.renamed" in v.message for v in violations)

    def test_emit_sink_must_accept_envelope(self):
        modules = dict(load_repo_modules())
        events = modules["repro.obs.events"]
        source = Path(events.path).read_text()
        # Strip `point`/`unit` from the module-level emit's signature
        # and forwarding call — the drift this rule exists to prevent.
        assert source.count("    point: int | None = None,") >= 2
        tampered = source.replace(
            "    point: int | None = None,\n    unit: int | None = None,\n"
            "    **fields: object,\n"
            ") -> None:\n"
            '    """Emit an event to the active recorder; no-op when '
            "tracing is off.",
            "    **fields: object,\n"
            ") -> None:\n"
            '    """Emit an event to the active recorder; no-op when '
            "tracing is off.",
            1,
        )
        assert tampered != source
        modules["repro.obs.events"] = SourceModule.parse(
            events.name, events.path, tampered
        )
        violations = run_lint(modules, rules=["trace-contract"])
        assert any(
            "envelope parameter" in v.message for v in violations
        )

    def test_unlisted_counter_bump_flagged(self):
        modules = dict(load_repo_modules())
        cache = modules["repro.analysis.cache"]
        source = Path(cache.path).read_text()
        tampered = source.replace(
            '            self.bump("hits")\n',
            '            self.bump("hits")\n'
            '            self.bump("mystery")\n',
            1,
        )
        assert tampered != source
        modules["repro.analysis.cache"] = SourceModule.parse(
            cache.name, cache.path, tampered
        )
        violations = run_lint(modules, rules=["trace-contract"])
        assert any(
            "mystery" in v.message and "COUNTER_NAMES" in v.message
            for v in violations
        )

    def test_report_must_aggregate_stats(self):
        modules = dict(load_repo_modules())
        report = modules["repro.experiments.report"]
        source = Path(report.path).read_text()
        tampered = source.replace("aggregate_analysis_stats(", "_skipped(")
        assert tampered != source
        modules["repro.experiments.report"] = SourceModule.parse(
            report.name, report.path, tampered
        )
        violations = run_lint(modules, rules=["trace-contract"])
        assert any(
            "aggregate_analysis_stats" in v.message for v in violations
        )


class TestForkSafetyRule:
    def test_clean_tree_passes(self):
        assert run_lint(rules=["fork-safety"]) == []

    def test_connection_across_pool_boundary_flagged(self):
        violations = run_lint(
            _fixture_only("fork_bad"), rules=["fork-safety"]
        )
        leaks = [v for v in violations if "LeakyHolder.conn" in v.message]
        assert len(leaks) == 1
        assert "database connection" in leaks[0].message

    def test_getstate_curated_class_not_flagged(self):
        violations = run_lint(
            _fixture_only("fork_bad"), rules=["fork-safety"]
        )
        assert not any("CuratedHolder" in v.message for v in violations)

    def test_scope_stack_mutation_outside_cm_flagged(self):
        violations = run_lint(
            _fixture_only("fork_bad"), rules=["fork-safety"]
        )
        stack = [v for v in violations if "_SCOPES" in v.message]
        assert len(stack) == 1
        assert "push_scope" in stack[0].message

    def test_process_target_surface_flagged(self):
        violations = run_lint(
            _fixture_only("fork_bad"), rules=["fork-safety"]
        )
        leaks = [v for v in violations if "SpawnLeaky.log" in v.message]
        assert len(leaks) == 1
        assert "open file handle" in leaks[0].message
        assert "spawned-process boundary" in leaks[0].message
        assert "spawned_work" in leaks[0].message

    def test_process_lambda_target_warned(self):
        violations = run_lint(
            _fixture_only("fork_bad"), rules=["fork-safety"]
        )
        warned = [
            v for v in violations
            if "Process(target=...)" in v.message
            and "not a module-level function name" in v.message
        ]
        assert len(warned) == 1
        assert warned[0].severity == "warning"

    def test_real_stack_mutation_outside_cm_fails(self):
        modules = dict(load_repo_modules())
        cache = modules["repro.analysis.cache"]
        source = Path(cache.path).read_text()
        tampered = source.replace(
            "    return _SCOPES[-1] if _SCOPES else None",
            "    _SCOPES.clear()\n"
            "    return _SCOPES[-1] if _SCOPES else None",
            1,
        )
        assert tampered != source
        modules["repro.analysis.cache"] = SourceModule.parse(
            cache.name, cache.path, tampered
        )
        violations = run_lint(modules, rules=["fork-safety"])
        assert any("active_cache" in v.message for v in violations)


class TestDurableWriteRule:
    def test_clean_tree_passes(self):
        assert run_lint(rules=["durable-write"]) == []

    def test_missing_fsync_flagged(self):
        violations = run_lint(
            _fixture_only("durable_bad"), rules=["durable-write"]
        )
        lines = {v.line for v in violations}
        fixture = (FIXTURES / "durable_bad.py").read_text().splitlines()
        unsafe_line = next(
            i + 1 for i, text in enumerate(fixture)
            if "os.replace" in text
        )
        assert unsafe_line in lines

    def test_unsafe_publish_missing_both_obligations(self):
        violations = run_lint(
            _fixture_only("durable_bad"), rules=["durable-write"]
        )
        unsafe = [
            v for v in violations if "unsafe" not in v.message
        ]
        messages = " ".join(v.message for v in violations)
        assert "not preceded on every path" in messages
        assert "no directory fsync" in messages
        assert unsafe is not None

    def test_branch_without_fsync_flagged(self):
        # branchy_publish fsyncs on one path only; the dir sync is
        # present, so exactly the file-sync obligation fails.
        violations = run_lint(
            _fixture_only("durable_bad"), rules=["durable-write"]
        )
        fixture = (FIXTURES / "durable_bad.py").read_text().splitlines()
        branchy_replace = [
            i + 1 for i, text in enumerate(fixture)
            if text.strip().startswith("os.replace")
        ][1]
        branchy = [v for v in violations if v.line == branchy_replace]
        assert len(branchy) == 1
        assert "not preceded on every path" in branchy[0].message

    def test_safe_publish_not_flagged(self):
        violations = run_lint(
            _fixture_only("durable_bad"), rules=["durable-write"]
        )
        fixture = (FIXTURES / "durable_bad.py").read_text().splitlines()
        safe_replace = [
            i + 1 for i, text in enumerate(fixture)
            if text.strip().startswith("os.replace")
        ][2]
        assert not any(v.line == safe_replace for v in violations)

    def test_removing_real_fsync_fails(self):
        modules = dict(load_repo_modules())
        persistence = modules["repro.experiments.persistence"]
        source = Path(persistence.path).read_text()
        tampered = source.replace(
            "os.fsync(handle.fileno())", "handle.flush()"
        )
        assert tampered != source
        modules["repro.experiments.persistence"] = SourceModule.parse(
            persistence.name, persistence.path, tampered
        )
        violations = run_lint(modules, rules=["durable-write"])
        assert any(
            "not preceded on every path" in v.message for v in violations
        )

    def test_removing_real_dirsync_fails(self):
        modules = dict(load_repo_modules())
        persistence = modules["repro.experiments.persistence"]
        source = Path(persistence.path).read_text()
        tampered = source.replace("_fsync_directory(path.parent)", "pass")
        assert tampered != source
        modules["repro.experiments.persistence"] = SourceModule.parse(
            persistence.name, persistence.path, tampered
        )
        violations = run_lint(modules, rules=["durable-write"])
        assert any("no directory fsync" in v.message for v in violations)


class TestScreenSoundnessRule:
    def test_clean_tree_passes(self):
        assert run_lint(rules=["screen-soundness"]) == []

    def test_untagged_literal_producer_flagged(self):
        violations = run_lint(
            _with_fixture("screen_bad"), rules=["screen-soundness"]
        )
        assert any("untagged_screen()" in v.message for v in violations)

    def test_untagged_producer_via_local_flagged(self):
        violations = run_lint(
            _with_fixture("screen_bad"), rules=["screen-soundness"]
        )
        assert any(
            "untagged_screen_via_local()" in v.message for v in violations
        )

    def test_stripping_real_decorator_fails(self):
        modules = dict(load_repo_modules())
        rt = modules["repro.analysis.proposed.response_time"]
        source = Path(rt.path).read_text()
        tampered = source.replace("    @bound_producer\n", "", 1)
        assert tampered != source
        modules["repro.analysis.proposed.response_time"] = (
            SourceModule.parse(rt.name, rt.path, tampered)
        )
        violations = run_lint(modules, rules=["screen-soundness"])
        assert violations
        assert all("@bound_producer" in v.message for v in violations)

    def test_dropping_rank_guard_sql_fails(self):
        modules = dict(load_repo_modules())
        store = modules["repro.analysis.store"]
        source = Path(store.path).read_text()
        tampered = source.replace(
            "excluded.rank > entries.rank", "excluded.rank >= 0"
        )
        assert tampered != source
        modules["repro.analysis.store"] = SourceModule.parse(
            store.name, store.path, tampered
        )
        violations = run_lint(modules, rules=["screen-soundness"])
        assert any("rank" in v.message for v in violations)

    def test_inverted_entry_ranks_fail(self):
        modules = dict(load_repo_modules())
        store = modules["repro.analysis.store"]
        source = Path(store.path).read_text()
        tampered = source.replace(
            'ENTRY_RANKS = {"lp": 1, "milp": 2}',
            'ENTRY_RANKS = {"lp": 3, "milp": 2}',
        )
        assert tampered != source
        modules["repro.analysis.store"] = SourceModule.parse(
            store.name, store.path, tampered
        )
        violations = run_lint(modules, rules=["screen-soundness"])
        assert any("ENTRY_RANKS" in v.message for v in violations)


class TestProjectLoading:
    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "good.py").write_text("x = 1\n")
        (package / "bad.py").write_text("def broken(:\n")
        project = load_project(package)
        assert [v.rule for v in project.findings] == ["parse-error"]
        assert project.findings[0].path.endswith("bad.py")
        names = set(project.modules)
        assert any(name.endswith("good") for name in names)
        assert not any(name.endswith("bad") for name in names)

    def test_excluded_paths_skipped(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "keep.py").write_text("x = 1\n")
        (package / "skipme.py").write_text("def broken(:\n")
        project = load_project(package, exclude=("skipme",))
        assert project.findings == []
        assert len(project.skipped) == 1
        assert project.skipped[0].endswith("skipme.py")


class TestFingerprintsAndBaseline:
    def test_fingerprint_ignores_line_number(self):
        a = LintViolation("r", "p.py", 10, "msg")
        b = LintViolation("r", "p.py", 99, "msg")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_rule_path_message(self):
        base = LintViolation("r", "p.py", 1, "msg")
        assert base.fingerprint != LintViolation("r2", "p.py", 1, "msg").fingerprint
        assert base.fingerprint != LintViolation("r", "q.py", 1, "msg").fingerprint
        assert base.fingerprint != LintViolation("r", "p.py", 1, "other").fingerprint

    def test_baseline_round_trip_suppresses(self, tmp_path):
        violations = [
            LintViolation("r", "p.py", 1, "grandfathered"),
            LintViolation("r", "p.py", 2, "fresh"),
        ]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(violations[:1], baseline_path)
        baseline = load_baseline(baseline_path)
        remaining = suppress_baseline(violations, baseline)
        assert [v.message for v in remaining] == ["fresh"]

    def test_baseline_entries_carry_metadata(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            [LintViolation("r", "p.py", 1, "msg")], baseline_path
        )
        data = json.loads(baseline_path.read_text())
        assert data[0]["rule"] == "r"
        assert data[0]["path"] == "p.py"
        assert data[0]["message"] == "msg"

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_baseline(bad)
        bad.write_text("not json at all")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(bad)
        with pytest.raises(ValueError, match="cannot read"):
            load_baseline(tmp_path / "missing.json")

    def test_shipped_baseline_is_empty(self):
        shipped = REPO_ROOT / "tools" / "lint_baseline.json"
        assert json.loads(shipped.read_text()) == []


class TestSarif:
    def test_sarif_shape(self):
        log = to_sarif([
            LintViolation("rule-a", "src/x.py", 7, "broken", "error"),
            LintViolation("rule-b", "src/y.py", 0, "iffy", "warning"),
        ])
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "rule-a", "rule-b",
        ]
        first, second = run["results"]
        assert first["ruleId"] == "rule-a"
        assert first["level"] == "error"
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/x.py"
        assert location["region"]["startLine"] == 7
        # Line 0 (project-wide findings) clamps to SARIF's 1-minimum.
        assert (
            second["locations"][0]["physicalLocation"]["region"]["startLine"]
            == 1
        )
        assert "reproLint/v1" in first["fingerprints"]


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", "--strict"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "invariants hold" in captured.err

    def test_findings_exit_one(self, capsys, monkeypatch):
        import repro.lint as lint_pkg
        from repro.cli import main
        from repro.lint.engine import LoadedProject

        bad = SourceModule.parse(
            "repro.bad", "bad.py", "def f(x=[]):\n    return x\n"
        )
        monkeypatch.setattr(
            lint_pkg, "load_project",
            lambda: LoadedProject(modules={"repro.bad": bad}),
        )
        code = main(["lint", "--rule", "mutable-default-argument"])
        captured = capsys.readouterr()
        assert code == 1
        assert "mutable-default-argument" in captured.out
        assert "1 finding(s): 1 error(s), 0 warning(s)" in captured.err

    def test_warnings_fail_only_strict(self, capsys, monkeypatch):
        import repro.lint as lint_pkg
        from repro.cli import main
        from repro.lint.engine import LoadedProject

        modules = _with_fixture("trace_dynamic")

        monkeypatch.setattr(
            lint_pkg, "load_project",
            lambda: LoadedProject(modules=modules),
        )
        assert main(["lint", "--rule", "trace-contract"]) == 0
        capsys.readouterr()
        assert main(["lint", "--rule", "trace-contract", "--strict"]) == 1
        assert "warning" in capsys.readouterr().out

    def test_bad_baseline_exits_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "--baseline", "/no/such/file.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_update_baseline_requires_baseline_path(self, capsys):
        from repro.cli import main

        assert main(["lint", "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_sarif_written(self, tmp_path):
        from repro.cli import main

        sarif_path = tmp_path / "out.sarif"
        assert main(["lint", "--sarif", str(sarif_path)]) == 0
        log = json.loads(sarif_path.read_text())
        assert log["runs"][0]["results"] == []

    def test_standalone_tool_strict_baseline_clean(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "lint_rules.py"),
                "--strict",
                "--baseline",
                str(REPO_ROOT / "tools" / "lint_baseline.json"),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout == ""
