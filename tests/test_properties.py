"""Property-based cross-validation of analyses, simulators, and bounds.

These are the scientifically load-bearing tests of the reproduction:

* **Soundness** — no simulated schedule (a legal sporadic release
  pattern) may ever exhibit a response time above the corresponding
  analysis bound.
* **Dominance chain** — the MILP bound never exceeds the closed-form
  conservative bound.
* **Structural invariants** — every simulated proposed-protocol trace
  satisfies the paper's Properties 1-4.
* **Backend agreement** — the two MILP backends reach the same optimum
  on real delay formulations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.interface import AnalysisOptions
from repro.analysis.nps import NpsAnalysis
from repro.analysis.proposed.closed_form import closed_form_delay_bound
from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.analysis.wasly import WaslyAnalysis
from repro.milp import BranchBoundBackend, HighsBackend, SolveStatus
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import sporadic_plan, synchronous_plan
from repro.sim.validate import check_trace

_EXACT = AnalysisOptions(stop_at_deadline=False, max_iterations=40)


@st.composite
def small_tasksets(draw, max_tasks=4, ls_marks=False):
    """Small, low-utilisation task sets that keep MILPs tiny."""
    n = draw(st.integers(2, max_tasks))
    tasks = []
    for i in range(n):
        period = draw(st.sampled_from([8.0, 10.0, 16.0, 25.0, 40.0]))
        exec_time = draw(st.sampled_from([0.5, 1.0, 1.5, 2.0]))
        gamma = draw(st.sampled_from([0.0, 0.1, 0.3]))
        ls = ls_marks and draw(st.booleans())
        tasks.append(
            Task.sporadic(
                f"t{i}",
                exec_time=exec_time,
                period=period * (1 + i * 0.1),  # unique-ish periods
                deadline=period,
                copy_in=gamma * exec_time,
                copy_out=gamma * exec_time,
                priority=i,
                latency_sensitive=ls,
            )
        )
    return TaskSet(tasks)


class TestSoundnessAgainstSimulation:
    @settings(max_examples=12, deadline=None)
    @given(small_tasksets(), st.integers(0, 10_000))
    def test_nps_bound_covers_simulation(self, ts, seed):
        rng = np.random.default_rng(seed)
        plan = sporadic_plan(ts, 400.0, rng)
        trace = NpsSimulator(ts).run(plan)
        analysis = NpsAnalysis(_EXACT)
        for task in ts:
            bound = analysis.response_time(ts, task).wcrt
            observed = trace.max_response_time(task.name)
            assert observed <= bound + 1e-6, task.name

    @settings(max_examples=10, deadline=None)
    @given(small_tasksets(), st.integers(0, 10_000))
    def test_wasly_bound_covers_simulation(self, ts, seed):
        rng = np.random.default_rng(seed)
        plan = sporadic_plan(ts, 400.0, rng)
        trace = WaslySimulator(ts).run(plan)
        analysis = WaslyAnalysis(_EXACT)
        for task in ts:
            result = analysis.response_time(ts, task)
            assume(result.converged)
            observed = trace.max_response_time(task.name)
            assert observed <= result.wcrt + 1e-6, task.name

    @settings(max_examples=10, deadline=None)
    @given(small_tasksets(ls_marks=True), st.integers(0, 10_000))
    def test_proposed_bound_covers_simulation(self, ts, seed):
        rng = np.random.default_rng(seed)
        plan = sporadic_plan(ts, 400.0, rng)
        trace = ProposedSimulator(ts).run(plan)
        check_trace(trace)
        analysis = ProposedAnalysis(_EXACT)
        for task in ts:
            result = analysis.response_time(ts, task)
            assume(result.converged)
            observed = trace.max_response_time(task.name)
            assert observed <= result.wcrt + 1e-6, task.name

    @settings(max_examples=8, deadline=None)
    @given(small_tasksets(ls_marks=True))
    def test_proposed_bound_covers_synchronous_release(self, ts):
        plan = synchronous_plan(ts, 300.0)
        trace = ProposedSimulator(ts).run(plan)
        check_trace(trace)
        analysis = ProposedAnalysis(_EXACT)
        for task in ts:
            result = analysis.response_time(ts, task)
            assume(result.converged)
            assert trace.max_response_time(task.name) <= result.wcrt + 1e-6


class TestDominance:
    @settings(max_examples=12, deadline=None)
    @given(small_tasksets())
    def test_milp_never_exceeds_closed_form(self, ts):
        analysis = ProposedAnalysis(_EXACT)
        for task in ts:
            result = analysis.response_time(ts, task)
            assume(result.converged)
            closed = closed_form_delay_bound(
                ts, task, blocking_intervals=2, urgent_possible=True,
                deadline_cap=1e12,
            )
            # The fixpoint keeps max(response, new_response) on
            # convergence, so the reported WCRT can sit up to
            # convergence_eps above the true fixpoint (and hence above
            # the closed form); allow that slack plus float headroom.
            assert result.wcrt <= closed + _EXACT.convergence_eps + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(small_tasksets())
    def test_carry_nps_dominates_exact_nps(self, ts):
        exact = NpsAnalysis(_EXACT, variant="exact")
        carry = NpsAnalysis(_EXACT, variant="carry")
        for task in ts:
            r_exact = exact.response_time(ts, task)
            r_carry = carry.response_time(ts, task)
            if r_carry.converged and r_exact.converged:
                assert r_carry.wcrt >= r_exact.wcrt - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(small_tasksets(ls_marks=True))
    def test_verdict_equals_full_analysis(self, ts):
        analysis = ProposedAnalysis()
        for task in ts:
            assert analysis.verdict(ts, task) == analysis.response_time(
                ts, task
            ).schedulable


class TestBackendAgreementOnDelayMilps:
    @settings(max_examples=8, deadline=None)
    @given(small_tasksets(max_tasks=3, ls_marks=True), st.floats(1.0, 30.0))
    def test_backends_agree(self, ts, window):
        task = ts[len(ts) // 2]
        mode = (
            AnalysisMode.LS_CASE_A
            if task.latency_sensitive
            else AnalysisMode.NLS
        )
        built = build_delay_milp(ts, task, window, mode)
        a = built.model.solve(HighsBackend())
        b = built.model.solve(BranchBoundBackend(max_nodes=100_000))
        assert a.status is SolveStatus.OPTIMAL
        assert b.status is SolveStatus.OPTIMAL
        assert abs(a.objective - b.objective) <= 1e-5


class TestSimulatedInvariants:
    @settings(max_examples=10, deadline=None)
    @given(small_tasksets(ls_marks=True), st.integers(0, 10_000))
    def test_proposed_trace_invariants(self, ts, seed):
        rng = np.random.default_rng(seed)
        plan = sporadic_plan(ts, 300.0, rng)
        trace = ProposedSimulator(ts).run(plan)
        check_trace(trace)
        assert len(trace.completed_jobs()) == len(trace.jobs)

    @settings(max_examples=10, deadline=None)
    @given(small_tasksets(), st.integers(0, 10_000))
    def test_wasly_trace_phase_ordering(self, ts, seed):
        rng = np.random.default_rng(seed)
        plan = sporadic_plan(ts, 300.0, rng)
        trace = WaslySimulator(ts).run(plan)
        check_trace(trace)
