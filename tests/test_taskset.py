"""Unit tests for TaskSet."""

import pytest

from repro.errors import ModelError
from repro.model.task import Task
from repro.model.taskset import TaskSet


def _mk(name, prio, ls=False, exec_time=1.0):
    return Task.sporadic(
        name, exec_time=exec_time, period=10.0, priority=prio,
        copy_in=0.1, copy_out=0.2, latency_sensitive=ls,
    )


class TestConstruction:
    def test_sorted_by_priority(self):
        ts = TaskSet([_mk("b", 2), _mk("a", 0), _mk("c", 1)])
        assert [t.name for t in ts] == ["a", "c", "b"]

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            TaskSet([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ModelError):
            TaskSet([_mk("a", 0), _mk("a", 1)])

    def test_rejects_duplicate_priorities(self):
        with pytest.raises(ModelError):
            TaskSet([_mk("a", 0), _mk("b", 0)])

    def test_from_parameters_deadline_monotonic(self):
        ts = TaskSet.from_parameters(
            [
                ("long", 1.0, 0.1, 0.1, 50.0, 45.0),
                ("short", 1.0, 0.1, 0.1, 10.0, 8.0),
            ]
        )
        assert ts.by_name("short").priority < ts.by_name("long").priority


class TestLookups:
    def test_by_name(self):
        ts = TaskSet([_mk("a", 0), _mk("b", 1)])
        assert ts.by_name("b").priority == 1

    def test_by_name_missing(self):
        ts = TaskSet([_mk("a", 0)])
        with pytest.raises(ModelError):
            ts.by_name("zzz")

    def test_contains_task_and_name(self):
        a = _mk("a", 0)
        ts = TaskSet([a, _mk("b", 1)])
        assert a in ts
        assert "a" in ts
        assert "zzz" not in ts
        assert 42 not in ts

    def test_require_member_rejects_modified_task(self):
        a = _mk("a", 0)
        ts = TaskSet([a, _mk("b", 1)])
        stranger = a.with_priority(9)
        with pytest.raises(ModelError):
            ts.require_member(stranger)

    def test_indexing_and_len(self):
        ts = TaskSet([_mk("a", 0), _mk("b", 1)])
        assert len(ts) == 2
        assert ts[0].name == "a"


class TestPriorityPartitions:
    @pytest.fixture
    def ts(self):
        return TaskSet(
            [
                _mk("a", 0, ls=True),
                _mk("b", 1),
                _mk("c", 2, ls=True),
                _mk("d", 3),
            ]
        )

    def test_hp_lp(self, ts):
        c = ts.by_name("c")
        assert [t.name for t in ts.hp(c)] == ["a", "b"]
        assert [t.name for t in ts.lp(c)] == ["d"]

    def test_ls_partitions(self, ts):
        b = ts.by_name("b")
        assert [t.name for t in ts.hp_ls(b)] == ["a"]
        assert [t.name for t in ts.lp_ls(b)] == ["c"]
        assert [t.name for t in ts.hp_nls(b)] == []
        assert [t.name for t in ts.lp_nls(b)] == ["d"]

    def test_gamma_ls_nls(self, ts):
        assert {t.name for t in ts.ls_tasks} == {"a", "c"}
        assert {t.name for t in ts.nls_tasks} == {"b", "d"}

    def test_highest_priority_task_has_no_hp(self, ts):
        assert ts.hp(ts.by_name("a")) == ()

    def test_lowest_priority_task_has_no_lp(self, ts):
        assert ts.lp(ts.by_name("d")) == ()


class TestAggregatesAndDerivation:
    def test_utilization_sums(self):
        ts = TaskSet([_mk("a", 0, exec_time=1.0), _mk("b", 1, exec_time=2.0)])
        assert ts.utilization == pytest.approx(0.3)
        assert ts.total_utilization == pytest.approx(0.3 + 2 * 0.03)

    def test_max_copy_phases(self):
        ts = TaskSet([_mk("a", 0), _mk("b", 1)])
        assert ts.max_copy_in() == pytest.approx(0.1)
        assert ts.max_copy_out() == pytest.approx(0.2)

    def test_max_copy_with_exclusion(self):
        a = Task.sporadic("a", 1.0, 10.0, copy_in=5.0, priority=0)
        b = Task.sporadic("b", 1.0, 10.0, copy_in=1.0, priority=1)
        ts = TaskSet([a, b])
        assert ts.max_copy_in(exclude=ts.by_name("a")) == pytest.approx(1.0)

    def test_with_ls_marks(self):
        ts = TaskSet([_mk("a", 0), _mk("b", 1)])
        marked = ts.with_ls_marks(["b"])
        assert not marked.by_name("a").latency_sensitive
        assert marked.by_name("b").latency_sensitive
        # original untouched
        assert not ts.by_name("b").latency_sensitive

    def test_with_ls_marks_unknown_name(self):
        ts = TaskSet([_mk("a", 0)])
        with pytest.raises(ModelError):
            ts.with_ls_marks(["nope"])

    def test_with_task_replaced(self):
        ts = TaskSet([_mk("a", 0), _mk("b", 1)])
        replacement = _mk("b", 1, exec_time=9.0)
        updated = ts.with_task_replaced(replacement)
        assert updated.by_name("b").exec_time == 9.0

    def test_with_task_replaced_unknown(self):
        ts = TaskSet([_mk("a", 0)])
        with pytest.raises(ModelError):
            ts.with_task_replaced(_mk("zzz", 5))

    def test_equality_and_hash(self):
        ts1 = TaskSet([_mk("a", 0), _mk("b", 1)])
        ts2 = TaskSet([_mk("b", 1), _mk("a", 0)])
        assert ts1 == ts2
        assert hash(ts1) == hash(ts2)
