"""Sweep checkpoint/resume: atomicity, config keying, bit-identical ratios."""

import json

import pytest

import repro.experiments.runner as runner_module
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    FailureRecord,
    PointResult,
    SweepPoint,
    run_experiment,
)
from repro.experiments.persistence import (
    config_digest,
    load_checkpoint,
    save_checkpoint,
    load_sweep,
    save_sweep,
)
from repro.experiments.runner import SweepResult
from repro.generator.taskset_gen import GenerationConfig


@pytest.fixture
def config():
    points = tuple(
        SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
        for u in (0.2, 0.4, 0.6)
    )
    return ExperimentConfig(
        name="mini",
        x_label="U",
        points=points,
        sets_per_point=3,
        seed=7,
        method="closed_form",
    )


class TestCheckpointFile:
    def test_roundtrip_including_failures(self, tmp_path, config):
        record = FailureRecord(
            x=0.2, protocol="wasly", seed=7, taskset_index=1,
            taskset_digest="ab" * 8, error_type="SolverError",
            message="boom", degradation=2,
        )
        point = PointResult(
            x=0.2, ratios={"wasly": 0.5}, sets_evaluated=3,
            elapsed_seconds=1.0, failures=(record,),
        )
        path = tmp_path / "ck.json"
        save_checkpoint(path, config, {0: point})
        loaded = load_checkpoint(path, config)
        assert loaded == {0: point}

    def test_atomic_write_leaves_no_temp_file(self, tmp_path, config):
        path = tmp_path / "ck.json"
        point = PointResult(
            x=0.2, ratios={"proposed": 1.0}, sets_evaluated=3,
            elapsed_seconds=0.1,
        )
        save_checkpoint(path, config, {0: point})
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_digest_mismatch_is_rejected(self, tmp_path, config):
        path = tmp_path / "ck.json"
        save_checkpoint(path, config, {})
        import dataclasses

        other = dataclasses.replace(config, seed=99)
        assert config_digest(other) != config_digest(config)
        with pytest.raises(ExperimentError) as excinfo:
            load_checkpoint(path, other)
        assert "different experiment" in str(excinfo.value)

    def test_corrupt_json_is_rejected(self, tmp_path, config):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_checkpoint(path, config)

    def test_missing_file(self, tmp_path, config):
        path = tmp_path / "absent.json"
        assert load_checkpoint(path, config, missing_ok=True) == {}
        with pytest.raises(ExperimentError):
            load_checkpoint(path, config)


class TestResume:
    def test_interrupted_sweep_resumes_bit_identical(
        self, tmp_path, config, monkeypatch
    ):
        baseline = run_experiment(config)

        path = tmp_path / "ck.json"
        original_run_point = runner_module.run_point
        calls = []

        def counting_run_point(point, *args, **kwargs):
            calls.append(point.x)
            if len(calls) == 2:
                raise KeyboardInterrupt  # simulate a mid-sweep kill
            return original_run_point(point, *args, **kwargs)

        monkeypatch.setattr(runner_module, "run_point", counting_run_point)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(config, checkpoint_path=str(path))
        assert calls == [0.2, 0.4]
        # Point 0 was persisted before the kill.
        assert set(load_checkpoint(path, config)) == {0}

        calls.clear()
        monkeypatch.setattr(
            runner_module,
            "run_point",
            lambda *a, **k: (calls.append(a[0].x), original_run_point(*a, **k))[1],
        )
        resumed = run_experiment(config, checkpoint_path=str(path), resume=True)
        # Only the unfinished points were re-evaluated.
        assert calls == [0.4, 0.6]
        for got, expected in zip(resumed.points, baseline.points):
            assert got.x == expected.x
            assert got.ratios == expected.ratios  # bit-identical floats
            assert got.sets_evaluated == expected.sets_evaluated

    def test_completed_checkpoint_reruns_nothing(self, tmp_path, config, monkeypatch):
        path = tmp_path / "ck.json"
        first = run_experiment(config, checkpoint_path=str(path))

        def exploding_run_point(*args, **kwargs):
            raise AssertionError("no point should be re-evaluated")

        monkeypatch.setattr(runner_module, "run_point", exploding_run_point)
        second = run_experiment(config, checkpoint_path=str(path), resume=True)
        for got, expected in zip(second.points, first.points):
            assert got.ratios == expected.ratios

    def test_without_resume_checkpoint_is_overwritten(self, tmp_path, config):
        path = tmp_path / "ck.json"
        run_experiment(config, checkpoint_path=str(path))
        result = run_experiment(config, checkpoint_path=str(path))
        payload = json.loads(path.read_text())
        assert set(payload["points"]) == {"0", "1", "2"}
        assert len(result.points) == 3


class TestSweepSerializationWithFailures:
    def test_sweep_roundtrip_keeps_ledger(self, tmp_path, config, monkeypatch):
        import repro.experiments.units as rm
        from repro.errors import SolverError

        original = rm.is_schedulable

        def flaky(taskset, protocol, **kwargs):
            if protocol == "wasly":
                raise SolverError("boom")
            return original(taskset, protocol, **kwargs)

        monkeypatch.setattr(rm, "is_schedulable", flaky)
        result = run_experiment(config)
        assert result.failures

        path = tmp_path / "sweep.json"
        save_sweep(result, path)
        loaded = load_sweep(path)
        assert isinstance(loaded, SweepResult)
        assert loaded.failures == result.failures
        assert [p.ratios for p in loaded.points] == [
            p.ratios for p in result.points
        ]

    def test_legacy_payload_without_failures_loads(self, tmp_path, config):
        result = run_experiment(config)
        from repro.experiments.persistence import sweep_to_dict, sweep_from_dict

        payload = sweep_to_dict(result)
        for point in payload["points"]:
            point.pop("failures", None)
        loaded = sweep_from_dict(payload)
        assert loaded.points[0].failures == ()
