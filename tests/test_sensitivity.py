"""Unit tests for the sensitivity-analysis module."""

import pytest

from repro.analysis.sensitivity import (
    SCALERS,
    critical_scaling_factor,
    scale_deadline,
    scale_execution,
    scale_memory,
    scaled_taskset,
)
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
        ]
    )


class TestScalers:
    def test_execution_scales_all_phases(self):
        task = Task.sporadic("t", 2.0, 10.0, copy_in=0.4, copy_out=0.2)
        scaled = scale_execution(task, 1.5)
        assert scaled.exec_time == pytest.approx(3.0)
        assert scaled.copy_in == pytest.approx(0.6)
        assert scaled.copy_out == pytest.approx(0.3)

    def test_memory_scales_only_copies(self):
        task = Task.sporadic("t", 2.0, 10.0, copy_in=0.4, copy_out=0.2)
        scaled = scale_memory(task, 2.0)
        assert scaled.exec_time == 2.0
        assert scaled.copy_in == pytest.approx(0.8)

    def test_deadline_scaler(self):
        task = Task.sporadic("t", 2.0, 10.0, deadline=8.0)
        assert scale_deadline(task, 0.5).deadline == pytest.approx(4.0)

    def test_scaled_taskset_rejects_nonpositive(self, ts):
        with pytest.raises(AnalysisError):
            scaled_taskset(ts, scale_execution, 0.0)

    def test_registry(self):
        assert set(SCALERS) == {"execution", "memory", "deadline"}


class TestCriticalScaling:
    def test_execution_factor_above_one_for_easy_set(self, ts):
        result = critical_scaling_factor(
            ts, "execution", protocol="nps", tolerance=0.05
        )
        assert result.schedulable_at_one
        assert result.critical_factor > 1.0
        # Boundary property: feasible at the factor, infeasible a bit above.
        from repro.analysis.schedulability import is_schedulable

        f = result.critical_factor
        assert is_schedulable(scaled_taskset(ts, scale_execution, f), "nps")
        if f < 4.0:  # not clamped at the search bound
            assert not is_schedulable(
                scaled_taskset(ts, scale_execution, f + 0.1), "nps"
            )

    def test_memory_knob_monotone(self, ts):
        result = critical_scaling_factor(
            ts, "memory", protocol="nps", tolerance=0.05
        )
        assert result.critical_factor > 0.0

    def test_deadline_knob_finds_smallest(self, ts):
        result = critical_scaling_factor(
            ts, "deadline", protocol="nps", tolerance=0.05
        )
        # The set is schedulable at 1.0, so the critical tightening is
        # below 1.
        assert result.critical_factor <= 1.0
        assert result.schedulable_at_one

    def test_hopeless_set_reports_zero(self):
        overload = TaskSet.from_parameters(
            [
                ("x", 9.0, 0.5, 0.5, 10.0, 10.0),
                ("y", 5.0, 0.5, 0.5, 10.0, 10.0),
            ]
        )
        result = critical_scaling_factor(
            overload, "execution", protocol="nps", lower=0.9, upper=2.0
        )
        assert result.critical_factor == 0.0

    def test_unknown_knob(self, ts):
        with pytest.raises(AnalysisError):
            critical_scaling_factor(ts, "voltage")

    def test_bad_bounds(self, ts):
        with pytest.raises(AnalysisError):
            critical_scaling_factor(ts, "execution", lower=2.0, upper=1.0)

    def test_proposed_protocol_closed_form(self, ts):
        # Fast smoke of the proposed pipeline through the bisection.
        result = critical_scaling_factor(
            ts,
            "execution",
            protocol="proposed",
            method="closed_form",
            tolerance=0.1,
        )
        assert result.evaluations >= 2
