"""Tests for the flow-analysis core (repro.lint.dataflow / callgraph)."""

import ast

from repro.lint.callgraph import (
    argument_for,
    resolve_keyword_keys,
    resolve_string_values,
)
from repro.lint.dataflow import (
    FunctionFlow,
    ProjectModel,
    build_cfg,
    call_name,
    dotted,
    project_model,
)
from repro.lint.engine import SourceModule


def _module(name, source):
    return SourceModule.parse(name, f"{name.replace('.', '/')}.py", source)


def _model(**sources):
    return ProjectModel({
        name: _module(name, src) for name, src in sources.items()
    })


def _flow(source, name="f"):
    tree = ast.parse(source)
    fn = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name == name
    )
    return FunctionFlow(fn)


def _stmt_calling(flow, callee):
    from repro.lint.dataflow import shallow_calls

    for block in flow.cfg:
        for stmt in block.statements:
            for call in shallow_calls(stmt):
                if call_name(call) == callee:
                    return stmt
    raise AssertionError(f"no statement calling {callee}")


class TestDotted:
    def test_attribute_chain(self):
        assert dotted(ast.parse("a.b.c", mode="eval").body) == "a.b.c"

    def test_plain_name(self):
        assert dotted(ast.parse("x", mode="eval").body) == "x"

    def test_computed_target_is_none(self):
        assert dotted(ast.parse("a[0].b", mode="eval").body) is None


class TestProjectModel:
    def test_indexes_functions_methods_and_classes(self):
        model = _model(m=(
            "class C:\n"
            "    def method(self):\n"
            "        return 1\n"
            "def plain():\n"
            "    return 2\n"
        ))
        assert "m:C.method" in model.functions
        assert "m:plain" in model.functions
        assert model.functions["m:C.method"].is_method
        assert model.class_named("C") is not None

    def test_each_call_collected_exactly_once(self):
        model = _model(m=(
            "def f(x):\n"
            "    if g(x):\n"
            "        return h(x)\n"
            "    for item in items(x):\n"
            "        consume(item)\n"
            "    return tail(x)\n"
        ))
        names = sorted(
            call_name(site.call) for site in model.calls
        )
        assert names == ["consume", "g", "h", "items", "tail"]

    def test_sites_calling_name_matches_same_module_only(self):
        model = _model(
            a="def target():\n    return 0\ndef caller():\n    return target()\n",
            b="def other():\n    return target()\n",
        )
        fn = model.functions["a:target"]
        sites = model.sites_calling(fn)
        assert [site.module for site in sites] == ["a"]

    def test_sites_calling_attribute_matches_everywhere(self):
        model = _model(
            a="class C:\n    def target(self):\n        return 0\n",
            b="def use(c):\n    return c.target()\n",
        )
        fn = model.functions["a:C.target"]
        assert [site.module for site in model.sites_calling(fn)] == ["b"]

    def test_project_model_cached_by_identity(self):
        modules = {"m": _module("m", "x = 1\n")}
        assert project_model(modules) is project_model(modules)


class TestCfg:
    def test_linear_body_is_single_block(self):
        blocks = build_cfg(ast.parse(
            "def f():\n    a()\n    b()\n"
        ).body[0])
        assert len(blocks[0].statements) == 2

    def test_if_branches_rejoin(self):
        flow = _flow(
            "def f(c):\n"
            "    if c:\n"
            "        left()\n"
            "    else:\n"
            "        right()\n"
            "    after()\n"
        )
        after = _stmt_calling(flow, "after")
        names = {call_name(c) for c in flow.must_precede_calls(after)}
        # Neither branch executes on every path.
        assert "left" not in names and "right" not in names

    def test_loop_body_may_run_zero_times(self):
        flow = _flow(
            "def f(items):\n"
            "    for item in items:\n"
            "        inside(item)\n"
            "    after()\n"
        )
        after = _stmt_calling(flow, "after")
        names = {call_name(c) for c in flow.must_precede_calls(after)}
        assert "inside" not in names

    def test_break_skips_orelse(self):
        flow = _flow(
            "def f(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            break\n"
            "    else:\n"
            "        only_without_break()\n"
            "    after()\n"
        )
        after = _stmt_calling(flow, "after")
        names = {call_name(c) for c in flow.must_precede_calls(after)}
        # The break path never runs the orelse.
        assert "only_without_break" not in names


class TestMustPrecede:
    def test_straight_line_call_precedes(self):
        flow = _flow("def f():\n    first()\n    second()\n")
        second = _stmt_calling(flow, "second")
        names = {call_name(c) for c in flow.must_precede_calls(second)}
        assert "first" in names

    def test_call_in_both_branches_precedes(self):
        flow = _flow(
            "def f(c):\n"
            "    if c:\n"
            "        sync()\n"
            "    else:\n"
            "        sync()\n"
            "    publish()\n"
        )
        publish = _stmt_calling(flow, "publish")
        names = {call_name(c) for c in flow.must_precede_calls(publish)}
        assert "sync" in names

    def test_call_in_one_branch_does_not_precede(self):
        flow = _flow(
            "def f(c):\n"
            "    if c:\n"
            "        sync()\n"
            "    publish()\n"
        )
        publish = _stmt_calling(flow, "publish")
        names = {call_name(c) for c in flow.must_precede_calls(publish)}
        assert "sync" not in names

    def test_try_handler_entered_with_try_entry_facts(self):
        flow = _flow(
            "def f():\n"
            "    before()\n"
            "    try:\n"
            "        risky()\n"
            "    except OSError:\n"
            "        handle()\n"
            "    after()\n"
        )
        handle = _stmt_calling(flow, "handle")
        names = {call_name(c) for c in flow.must_precede_calls(handle)}
        # The exception may fire before risky() completed...
        assert "risky" not in names
        # ...but never before the statement preceding the try.
        assert "before" in names

    def test_with_body_inlined(self):
        flow = _flow(
            "def f(p):\n"
            "    with open(p) as h:\n"
            "        sync(h)\n"
            "    publish()\n"
        )
        publish = _stmt_calling(flow, "publish")
        names = {call_name(c) for c in flow.must_precede_calls(publish)}
        assert {"open", "sync"} <= names


class TestReachingDefinitions:
    def test_reassignment_kills_previous_definition(self):
        flow = _flow(
            "def f():\n"
            "    x = first()\n"
            "    x = second()\n"
            "    use(x)\n"
        )
        use = _stmt_calling(flow, "use")
        defs = flow.reaching(use, "x")
        assert [call_name(d) for d in defs] == ["second"]

    def test_branches_merge_both_definitions(self):
        flow = _flow(
            "def f(c):\n"
            "    if c:\n"
            "        x = left()\n"
            "    else:\n"
            "        x = right()\n"
            "    use(x)\n"
        )
        use = _stmt_calling(flow, "use")
        names = sorted(call_name(d) for d in flow.reaching(use, "x"))
        assert names == ["left", "right"]

    def test_parameter_is_entry_definition(self):
        flow = _flow("def f(x):\n    use(x)\n")
        use = _stmt_calling(flow, "use")
        defs = flow.reaching(use, "x")
        assert len(defs) == 1
        assert isinstance(defs[0], ast.arg)

    def test_with_binding_defines_target(self):
        flow = _flow(
            "def f(p):\n"
            "    with open(p) as h:\n"
            "        use(h)\n"
        )
        use = _stmt_calling(flow, "use")
        defs = flow.reaching(use, "h")
        assert [call_name(d) for d in defs] == ["open"]


class TestCallgraphResolution:
    def test_constant_resolves(self):
        model = _model(m="x = 1\n")
        expr = ast.parse("'lit'", mode="eval").body
        result = resolve_string_values(expr, None, model)
        assert result.values == {"lit"} and result.complete

    def test_ifexp_resolves_both_arms(self):
        model = _model(m="x = 1\n")
        expr = ast.parse("'a' if c else 'b'", mode="eval").body
        result = resolve_string_values(expr, None, model)
        assert result.values == {"a", "b"}

    def test_parameter_resolved_through_call_sites(self):
        model = _model(m=(
            "def sink(name):\n"
            "    emitted(f'cache.{name}')\n"
            "def one():\n"
            "    sink('hits')\n"
            "def two():\n"
            "    sink('misses')\n"
        ))
        site = next(
            s for s in model.calls if call_name(s.call) == "emitted"
        )
        result = resolve_string_values(
            site.call.args[0], site.enclosing, model
        )
        assert result.values == {"cache.hits", "cache.misses"}
        assert result.complete

    def test_method_positional_shift(self):
        model = _model(m=(
            "class C:\n"
            "    def fire(self, site):\n"
            "        emitted(site)\n"
            "def go(c):\n"
            "    c.fire('solver.fault')\n"
        ))
        fn = model.functions["m:C.fire"]
        site = next(
            s for s in model.calls if call_name(s.call) == "c.fire"
        )
        arg = argument_for(site, fn, "site")
        assert isinstance(arg, ast.Constant) and arg.value == "solver.fault"

    def test_unresolvable_marks_incomplete(self):
        model = _model(m=(
            "def sink(name):\n"
            "    emitted(name)\n"
        ))
        site = next(
            s for s in model.calls if call_name(s.call) == "emitted"
        )
        result = resolve_string_values(
            site.call.args[0], site.enclosing, model
        )
        assert not result.complete

    def test_forwarding_cycle_terminates(self):
        model = _model(m=(
            "def a(name):\n"
            "    b(name)\n"
            "def b(name):\n"
            "    a(name)\n"
            "    emitted(name)\n"
            "def entry():\n"
            "    b('real.event')\n"
        ))
        site = next(
            s for s in model.calls if call_name(s.call) == "emitted"
        )
        result = resolve_string_values(
            site.call.args[0], site.enclosing, model
        )
        assert "real.event" in result.values

    def test_kwargs_forwarding_resolves_keys(self):
        model = _model(m=(
            "def sink(name, **fields):\n"
            "    emit(name, **fields)\n"
            "def go():\n"
            "    sink('x', alpha=1, beta=2)\n"
        ))
        site = next(
            s for s in model.calls if call_name(s.call) == "emit"
        )
        result = resolve_keyword_keys(site.call, site.enclosing, model)
        assert result.values == {"alpha", "beta"}
        assert result.complete

    def test_non_kwargs_star_expansion_incomplete(self):
        model = _model(m=(
            "def go(d):\n"
            "    emit('x', **d)\n"
        ))
        site = next(
            s for s in model.calls if call_name(s.call) == "emit"
        )
        result = resolve_keyword_keys(site.call, site.enclosing, model)
        assert not result.complete
