"""Unit tests for the task model."""

import pytest

from repro.curves import PeriodicJitterArrival, SporadicArrival
from repro.errors import ModelError
from repro.model.task import Task


class TestConstruction:
    def test_sporadic_factory_defaults(self):
        task = Task.sporadic("t", exec_time=2.0, period=10.0)
        assert task.deadline == 10.0
        assert task.copy_in == 0.0
        assert task.copy_out == 0.0
        assert not task.latency_sensitive

    def test_total_cost(self):
        task = Task.sporadic("t", 2.0, 10.0, copy_in=0.5, copy_out=0.25)
        assert task.total_cost == pytest.approx(2.75)

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            Task.sporadic("", 1.0, 10.0)

    def test_rejects_nonpositive_exec(self):
        with pytest.raises(ModelError):
            Task.sporadic("t", 0.0, 10.0)

    def test_rejects_negative_copy_phases(self):
        with pytest.raises(ModelError):
            Task.sporadic("t", 1.0, 10.0, copy_in=-0.1)
        with pytest.raises(ModelError):
            Task.sporadic("t", 1.0, 10.0, copy_out=-0.1)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ModelError):
            Task.sporadic("t", 1.0, 10.0, deadline=0.0)

    def test_rejects_nonpositive_footprint(self):
        with pytest.raises(ModelError):
            Task.sporadic("t", 1.0, 10.0, footprint=0)

    def test_deadline_below_cost_is_allowed_but_flagged(self):
        task = Task.sporadic("t", 3.0, 10.0, deadline=3.5, copy_in=1.0)
        assert task.trivially_unschedulable

    def test_deadline_at_cost_not_flagged(self):
        task = Task.sporadic("t", 3.0, 10.0, deadline=4.0, copy_in=0.5,
                             copy_out=0.5)
        assert not task.trivially_unschedulable


class TestProperties:
    def test_period_from_sporadic_curve(self):
        assert Task.sporadic("t", 1.0, 12.5).period == 12.5

    def test_period_from_jitter_curve(self):
        task = Task(
            name="t",
            exec_time=1.0,
            copy_in=0.0,
            copy_out=0.0,
            deadline=9.0,
            priority=0,
            arrivals=PeriodicJitterArrival(10.0, 2.0),
        )
        assert task.period == 10.0

    def test_utilization(self):
        task = Task.sporadic("t", 2.0, 10.0, copy_in=0.5, copy_out=0.5)
        assert task.utilization == pytest.approx(0.2)
        assert task.total_utilization == pytest.approx(0.3)

    def test_eta_shorthand(self):
        task = Task.sporadic("t", 1.0, 10.0)
        assert task.eta(15.0) == SporadicArrival(10.0).eta(15.0)


class TestDerivation:
    def test_as_latency_sensitive_returns_copy(self):
        task = Task.sporadic("t", 1.0, 10.0)
        marked = task.as_latency_sensitive()
        assert marked.latency_sensitive
        assert not task.latency_sensitive
        assert marked.name == task.name

    def test_as_latency_sensitive_noop_returns_self(self):
        task = Task.sporadic("t", 1.0, 10.0, latency_sensitive=True)
        assert task.as_latency_sensitive(True) is task

    def test_with_priority(self):
        task = Task.sporadic("t", 1.0, 10.0, priority=3)
        assert task.with_priority(7).priority == 7

    def test_repr_contains_ls_tag(self):
        assert "NLS" in repr(Task.sporadic("t", 1.0, 10.0))
        assert "LS" in repr(
            Task.sporadic("t", 1.0, 10.0, latency_sensitive=True)
        )
