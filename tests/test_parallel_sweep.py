"""The parallel sweep engine: bit-identity, checkpoints, ordering."""

import dataclasses

import pytest

import repro.experiments.persistence as persistence_module
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    PointResult,
    SweepPoint,
    SweepResult,
    run_experiment,
    run_point,
)
from repro.experiments.config import figure2_config
from repro.experiments.persistence import load_checkpoint
from repro.generator.taskset_gen import GenerationConfig


def _reduced(inset: str, sets: int = 2, step: slice = slice(2, 5, 2)):
    config = figure2_config(inset, sets_per_point=sets, seed=2020)
    return dataclasses.replace(config, points=config.points[step])


def _identical(a: SweepResult, b: SweepResult) -> None:
    assert [p.x for p in a.points] == [p.x for p in b.points]
    for pa, pb in zip(a.points, b.points):
        assert pa.ratios == pb.ratios
        assert pa.failures == pb.failures
        assert pa.sets_evaluated == pb.sets_evaluated
        assert dict(pa.analysis_stats) == dict(pb.analysis_stats)


class TestBitIdentity:
    """Satellite: parallel + cached equals the sequential seed path."""

    def test_fig2a_reduced_parallel_matches_sequential(self):
        config = _reduced("fig2a")
        sequential = run_experiment(config)
        parallel = run_experiment(config, jobs=2)
        _identical(sequential, parallel)

    def test_fig2a_reduced_service_matches_sequential(self):
        # Third leg of the equivalence matrix: jobs=1 == jobs=N ==
        # service (socket-dispatched workers, no persistent store).
        from repro.service import run_service_sweep

        config = _reduced("fig2a")
        sequential = run_experiment(config)
        service = run_service_sweep(config, workers=2)
        _identical(sequential, service)

    def test_fig2d_reduced_parallel_matches_sequential(self):
        config = _reduced("fig2d", sets=2, step=slice(3, 5))
        sequential = run_experiment(config)
        parallel = run_experiment(config, jobs=2)
        _identical(sequential, parallel)

    def test_parallel_cache_hit_rate_nonzero(self):
        config = _reduced("fig2a", step=slice(2, 3))
        result = run_experiment(config, jobs=2)
        stats = result.points[0].analysis_stats
        assert stats["hits"] > 0
        assert stats["milp_solves"] > 0

    def test_failure_ledger_identical_under_parallelism(self):
        # ls_policy="bogus" makes every "proposed" evaluation raise
        # AnalysisError inside the worker — a deterministic failure
        # that (unlike a monkeypatch) crosses process boundaries.
        points = tuple(
            SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
            for u in (0.2, 0.4)
        )
        config = ExperimentConfig(
            name="ledger",
            x_label="U",
            points=points,
            sets_per_point=3,
            seed=11,
            method="closed_form",
            ls_policy="bogus",
        )
        sequential = run_experiment(config)
        parallel = run_experiment(config, jobs=2)
        _identical(sequential, parallel)
        assert sequential.failures  # the injection actually fired
        assert [f.taskset_index for f in parallel.failures] == [
            f.taskset_index for f in sequential.failures
        ]

    def test_raise_policy_propagates_from_workers(self):
        points = (
            SweepPoint(0.2, GenerationConfig(n=3, utilization=0.2, gamma=0.1)),
        )
        config = ExperimentConfig(
            name="boom",
            x_label="U",
            points=points,
            sets_per_point=2,
            seed=11,
            method="closed_form",
            ls_policy="bogus",
        )
        with pytest.raises(Exception):
            run_experiment(config, jobs=2, failure_policy="raise")


class TestParallelCheckpointing:
    """Satellite: parent-only writes, one atomic write per point."""

    @pytest.fixture
    def config(self):
        points = tuple(
            SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
            for u in (0.2, 0.4, 0.6)
        )
        return ExperimentConfig(
            name="ckpt",
            x_label="U",
            points=points,
            sets_per_point=2,
            seed=11,
            method="closed_form",
        )

    def test_one_write_per_point(self, tmp_path, config, monkeypatch):
        path = tmp_path / "sweep.ckpt"
        writes = []
        original = persistence_module.save_checkpoint

        def counting_save(p, cfg, completed, point=None):
            writes.append(len(completed))
            return original(p, cfg, completed, point=point)

        monkeypatch.setattr(persistence_module, "save_checkpoint", counting_save)
        run_experiment(config, jobs=2, checkpoint_path=str(path))
        # Exactly one write per completed point, monotonically growing.
        assert len(writes) == len(config.points)
        assert writes == sorted(writes)
        assert load_checkpoint(path, config).keys() == {0, 1, 2}

    def test_parallel_resume_skips_completed_points(self, tmp_path, config):
        path = tmp_path / "sweep.ckpt"
        # Truncate a full checkpoint down to point 0, then resume the
        # remaining two points in parallel.
        run_experiment(config, checkpoint_path=str(path))
        completed = load_checkpoint(path, config)
        persistence_module.save_checkpoint(path, config, {0: completed[0]})
        resumed = run_experiment(
            config, jobs=2, checkpoint_path=str(path), resume=True
        )
        fresh = run_experiment(config)
        _identical(resumed, fresh)
        assert load_checkpoint(path, config).keys() == {0, 1, 2}

    def test_parallel_checkpoint_resumes_sequentially_too(self, tmp_path, config):
        path = tmp_path / "sweep.ckpt"
        parallel = run_experiment(config, jobs=2, checkpoint_path=str(path))
        resumed = run_experiment(
            config, checkpoint_path=str(path), resume=True
        )
        _identical(parallel, resumed)


class TestSweepResultOrdering:
    """Satellite: out-of-order assembly sorts by x before series()."""

    def _point(self, x: float) -> PointResult:
        return PointResult(
            x=x,
            ratios={"proposed": x / 10.0},
            sets_evaluated=1,
            elapsed_seconds=0.0,
        )

    @pytest.fixture
    def config(self):
        points = tuple(
            SweepPoint(x, GenerationConfig(n=3, utilization=0.2, gamma=0.1))
            for x in (1.0, 2.0, 3.0)
        )
        return ExperimentConfig(
            name="order",
            x_label="x",
            points=points,
            sets_per_point=1,
            seed=1,
            protocols=("proposed",),
            method="closed_form",
        )

    def test_out_of_order_points_are_sorted(self, config):
        shuffled = SweepResult(
            config=config,
            points=tuple(self._point(x) for x in (3.0, 1.0, 2.0)),
        )
        assert shuffled.x_values == [1.0, 2.0, 3.0]
        assert shuffled.series("proposed") == [
            (1.0, 0.1), (2.0, 0.2), (3.0, 0.3),
        ]

    def test_in_order_points_untouched(self, config):
        ordered_points = tuple(self._point(x) for x in (1.0, 2.0, 3.0))
        result = SweepResult(config=config, points=ordered_points)
        assert result.points == ordered_points


class TestEngineValidation:
    def test_jobs_must_be_positive(self):
        points = (
            SweepPoint(0.2, GenerationConfig(n=3, utilization=0.2, gamma=0.1)),
        )
        config = ExperimentConfig(
            name="bad",
            x_label="U",
            points=points,
            sets_per_point=1,
            seed=1,
            method="closed_form",
        )
        with pytest.raises(ExperimentError):
            run_experiment(config, jobs=0)

    def test_run_point_populates_analysis_stats(self):
        point = SweepPoint(
            0.2, GenerationConfig(n=3, utilization=0.2, gamma=0.1)
        )
        config = ExperimentConfig(
            name="stats",
            x_label="U",
            points=(point,),
            sets_per_point=2,
            seed=11,
            method="milp",
        )
        result = run_point(point, config, seed=11)
        assert result.analysis_stats  # counters collected per unit
        assert result.analysis_stats["misses"] >= 0

    def test_parallel_progress_called_once_per_point(self):
        points = tuple(
            SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
            for u in (0.2, 0.4)
        )
        config = ExperimentConfig(
            name="prog",
            x_label="U",
            points=points,
            sets_per_point=2,
            seed=11,
            method="closed_form",
        )
        seen = []
        run_experiment(config, jobs=2, progress=lambda p: seen.append(p.x))
        assert sorted(seen) == [0.2, 0.4]
