"""Unit tests for MILP expressions and constraints."""

import pytest

from repro.errors import SolverError
from repro.milp.expr import Constraint, LinExpr, Var


@pytest.fixture
def x():
    return Var("x", 0.0, 10.0)


@pytest.fixture
def y():
    return Var("y", 0.0, 1.0, integer=True)


class TestVar:
    def test_binary_detection(self, x, y):
        assert y.is_binary
        assert not x.is_binary

    def test_integer_with_wide_bounds_not_binary(self):
        assert not Var("z", 0, 5, integer=True).is_binary

    def test_rejects_crossed_bounds(self):
        with pytest.raises(SolverError):
            Var("bad", 5.0, 1.0)

    def test_repr_mentions_kind(self, x, y):
        assert "cont" in repr(x)
        assert "bin" in repr(y)


class TestArithmetic:
    def test_var_plus_var(self, x, y):
        expr = x + y
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 1.0

    def test_var_times_scalar(self, x):
        expr = 3 * x
        assert expr.terms[x] == 3.0

    def test_combined_affine(self, x, y):
        expr = 2 * x - 3 * y + 5
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == -3.0
        assert expr.constant == 5.0

    def test_negation(self, x):
        assert (-x).terms[x] == -1.0

    def test_rsub(self, x):
        expr = 10 - x
        assert expr.constant == 10.0
        assert expr.terms[x] == -1.0

    def test_sum_collapses_duplicates(self, x):
        expr = x + x + x
        assert expr.terms[x] == 3.0

    def test_total_like_lpsum(self, x, y):
        expr = LinExpr.total([x, 2 * y, 4])
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 2.0
        assert expr.constant == 4.0

    def test_total_of_empty(self):
        expr = LinExpr.total([])
        assert expr.terms == {}
        assert expr.constant == 0.0

    def test_expr_times_expr_rejected(self, x, y):
        with pytest.raises(SolverError):
            (x + 1) * (y + 1)  # type: ignore[operator]

    def test_from_rejects_garbage(self):
        with pytest.raises(SolverError):
            LinExpr.from_("nonsense")  # type: ignore[arg-type]

    def test_value_evaluation(self, x, y):
        expr = 2 * x + y - 1
        assert expr.value({x: 3.0, y: 1.0}) == pytest.approx(6.0)


class TestConstraints:
    def test_le_builds_constraint(self, x, y):
        con = x + y <= 5
        assert isinstance(con, Constraint)
        assert con.sense == "<="
        assert con.bounds() == (-float("inf"), 5.0)

    def test_ge_bounds(self, x):
        con = x >= 2
        assert con.bounds() == (2.0, float("inf"))

    def test_eq_bounds(self, x, y):
        con = x + 2 * y == 4
        assert con.bounds() == (4.0, 4.0)

    def test_var_eq_var(self, x, y):
        con = x == y
        assert isinstance(con, Constraint)
        assert con.sense == "=="

    def test_satisfied(self, x, y):
        con = x + y <= 5
        assert con.satisfied({x: 2.0, y: 1.0})
        assert not con.satisfied({x: 5.0, y: 1.0})

    def test_satisfied_eq_with_tolerance(self, x):
        con = x == 3
        assert con.satisfied({x: 3.0000001}, tol=1e-3)
        assert not con.satisfied({x: 3.01}, tol=1e-3)

    def test_named(self, x):
        con = (x <= 1).named("cap")
        assert con.name == "cap"
        assert "cap" in repr(con)

    def test_invalid_sense_rejected(self, x):
        with pytest.raises(SolverError):
            Constraint(LinExpr({x: 1.0}), "<")
