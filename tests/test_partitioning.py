"""Unit tests for multicore partitioning heuristics."""

import pytest

from repro.errors import PartitioningError
from repro.model.partitioning import partition_tasks
from repro.model.platform import Platform
from repro.model.task import Task


def _task(name, util, prio, footprint=None):
    period = 10.0
    return Task.sporadic(
        name,
        exec_time=util * period,
        period=period,
        priority=prio,
        footprint=footprint,
    )


class TestPartitioning:
    def test_first_fit_packs_in_order(self):
        platform = Platform.homogeneous(2)
        tasks = [_task("a", 0.6, 0), _task("b", 0.5, 1), _task("c", 0.3, 2)]
        result = partition_tasks(tasks, platform, "first_fit")
        # decreasing: a(0.6)->core0, b(0.5)->core1, c(0.3)->core0
        assert result.core_of(tasks[0]) == 0
        assert result.core_of(tasks[1]) == 1
        assert result.core_of(tasks[2]) == 0

    def test_worst_fit_balances(self):
        platform = Platform.homogeneous(2)
        tasks = [_task("a", 0.4, 0), _task("b", 0.4, 1), _task("c", 0.1, 2)]
        result = partition_tasks(tasks, platform, "worst_fit")
        utils = result.per_core_utilization
        assert max(utils) - min(utils) < 0.4  # c lands on the lighter core

    def test_best_fit_fills_tightest(self):
        platform = Platform.homogeneous(2)
        tasks = [_task("a", 0.7, 0), _task("b", 0.2, 1), _task("c", 0.25, 2)]
        result = partition_tasks(tasks, platform, "best_fit")
        # Decreasing order: a (0.7) opens core 0; c (0.25) best-fits the
        # tighter core 0; b (0.2) no longer fits there and opens core 1.
        assert result.core_of(tasks[2]) == result.core_of(tasks[0])
        assert result.core_of(tasks[1]) != result.core_of(tasks[0])

    def test_unplaceable_task_raises(self):
        platform = Platform.homogeneous(1)
        tasks = [_task("a", 0.7, 0), _task("b", 0.7, 1)]
        with pytest.raises(PartitioningError):
            partition_tasks(tasks, platform)

    def test_respects_footprints(self):
        platform = Platform.homogeneous(1, memory_bytes=1024)
        tasks = [_task("a", 0.1, 0, footprint=4096)]
        with pytest.raises(PartitioningError):
            partition_tasks(tasks, platform)

    def test_unknown_heuristic(self):
        platform = Platform.homogeneous(1)
        with pytest.raises(PartitioningError):
            partition_tasks([_task("a", 0.1, 0)], platform, "magic")  # type: ignore[arg-type]

    def test_invalid_capacity(self):
        platform = Platform.homogeneous(1)
        with pytest.raises(PartitioningError):
            partition_tasks([_task("a", 0.1, 0)], platform, capacity=0.0)

    def test_empty_core_is_none(self):
        platform = Platform.homogeneous(3)
        tasks = [_task("a", 0.1, 0)]
        result = partition_tasks(tasks, platform)
        assert result.assignments[0] is not None
        assert result.assignments[1] is None
        assert result.assignments[2] is None

    def test_core_of_unassigned_raises(self):
        platform = Platform.homogeneous(1)
        result = partition_tasks([_task("a", 0.1, 0)], platform)
        with pytest.raises(PartitioningError):
            result.core_of(_task("ghost", 0.1, 5))

    def test_all_assignments_are_valid_tasksets(self):
        platform = Platform.homogeneous(2)
        tasks = [_task(f"t{i}", 0.15, i) for i in range(8)]
        result = partition_tasks(tasks, platform, "worst_fit")
        placed = sum(len(ts) for ts in result.assignments if ts is not None)
        assert placed == 8
        for ts in result.assignments:
            if ts is not None:
                assert ts.total_utilization <= 1.0 + 1e-9
