"""Unit tests for ASCII Gantt rendering."""

import pytest

from repro.examples_support import figure1_plan, figure1_taskset
from repro.sim.gantt import render_gantt, summarize_responses
from repro.sim.interval_sim import WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import ReleasePlan
from repro.sim.trace import Trace


@pytest.fixture
def wasly_trace():
    return WaslySimulator(figure1_taskset()).run(figure1_plan())


class TestRenderGantt:
    def test_contains_rows_and_legend(self, wasly_trace):
        art = render_gantt(wasly_trace, width=80)
        assert "CPU |" in art
        assert "DMA |" in art
        assert "ivl |" in art
        assert "legend:" in art

    def test_respects_width(self, wasly_trace):
        art = render_gantt(wasly_trace, width=50)
        for line in art.splitlines():
            if line.startswith(("CPU", "DMA", "ivl")):
                assert len(line) <= 50 + 5  # row label + bar

    def test_until_truncates(self, wasly_trace):
        art = render_gantt(wasly_trace, width=60, until=5.0)
        assert "0..5" in art

    def test_task_names_appear(self, wasly_trace):
        art = render_gantt(wasly_trace, width=120)
        assert "ti" in art
        assert "lp1" in art

    def test_nps_trace_has_no_dma_row(self):
        ts = figure1_taskset()
        trace = NpsSimulator(ts).run(figure1_plan())
        art = render_gantt(trace, width=60)
        assert "DMA |" not in art

    def test_empty_trace(self):
        art = render_gantt(Trace(jobs=[], protocol="nps"))
        assert "CPU |" in art


class TestSummarizeResponses:
    def test_table_shape(self, wasly_trace):
        table = summarize_responses(wasly_trace)
        lines = table.splitlines()
        assert lines[0].startswith("task")
        assert len(lines) == 5  # header + 4 tasks

    def test_miss_flagged(self, wasly_trace):
        table = summarize_responses(wasly_trace)
        ti_line = next(l for l in table.splitlines() if l.startswith("ti"))
        assert "NO" in ti_line

    def test_incomplete_task_shows_na(self):
        from repro.model.task import Task
        from repro.sim.trace import Job

        task = Task.sporadic("ghost", 1.0, 10.0)
        trace = Trace(jobs=[Job(task=task, release=0.0, index=0)])
        assert "n/a" in summarize_responses(trace)
