"""The protocol zoo: registry, threshold/regulated analyses + simulators.

Covers the tentpole's contract from three sides: the registry as the
single authority on protocol names, the two new analyses against their
discrete-event simulators (observed <= bound over a seeded taskset
matrix plus adversarial release search), and the degenerate cases that
tie the newcomers back to the established baselines (``regulated`` with
no regulation == ``nps_carry``, an unregulated ``RegulatedSimulator``
== ``NpsSimulator``).
"""

import numpy as np
import pytest

from repro.analysis import registry as registry_module
from repro.analysis.interface import AnalysisOptions, RegulationConfig
from repro.analysis.nps import NpsAnalysis
from repro.analysis.regulated import (
    RegulatedAnalysis,
    regulated_cost,
    regulated_duration,
)
from repro.analysis.registry import (
    ProtocolSpec,
    make_analysis,
    protocol_spec,
    register_protocol,
    registered_protocols,
    simulable_protocols,
    simulator_class,
)
from repro.analysis.schedulability import analyze_taskset
from repro.analysis.threshold import (
    ThresholdAnalysis,
    max_phase,
    resolve_thresholds,
)
from repro.errors import AnalysisError, ReproError
from repro.generator.taskset_gen import GenerationConfig, generate_tasksets
from repro.model.taskset import TaskSet
from repro.sim.adversarial import find_worst_response
from repro.sim.nps_sim import NpsSimulator
from repro.sim.regulated_sim import RegulatedSimulator
from repro.sim.releases import sporadic_plan, synchronous_plan
from repro.sim.threshold_sim import ThresholdSimulator


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("hi", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("mid", 2.0, 0.3, 0.3, 20.0, 18.0),
            ("lo", 4.0, 0.8, 0.8, 50.0, 45.0),
        ]
    )


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert registered_protocols() == (
            "nps", "nps_carry", "wasly", "proposed", "threshold", "regulated",
        )

    def test_unknown_protocol_lists_the_registry(self):
        with pytest.raises(AnalysisError) as err:
            protocol_spec("edf")
        message = str(err.value)
        assert "unknown protocol 'edf'" in message
        assert "registered protocols:" in message
        assert "threshold" in message and "regulated" in message

    def test_analysis_only_protocol_has_no_simulator(self):
        assert "nps_carry" not in simulable_protocols()
        with pytest.raises(AnalysisError, match="analysis-only"):
            simulator_class("nps_carry")

    def test_simulator_classes_resolve_lazily(self):
        assert simulator_class("threshold") is ThresholdSimulator
        assert simulator_class("regulated") is RegulatedSimulator

    def test_duplicate_name_rejected_identical_spec_idempotent(self):
        spec = protocol_spec("nps")
        # Re-registering the exact same spec object is a no-op ...
        assert register_protocol(spec) is spec
        # ... but a *different* spec under a taken name is an error.
        clash = ProtocolSpec(name="nps", make_analysis=spec.make_analysis)
        with pytest.raises(AnalysisError, match="already registered"):
            register_protocol(clash)

    def test_out_of_tree_protocol_flows_through_analyze_taskset(self, ts):
        spec = ProtocolSpec(
            name="zoo_test_nps",
            make_analysis=lambda options, method: NpsAnalysis(
                options, variant="carry"
            ),
            description="test-only alias of nps_carry",
        )
        register_protocol(spec)
        try:
            result = analyze_taskset(ts, "zoo_test_nps")
            reference = analyze_taskset(ts, "nps_carry")
            assert [r.wcrt for r in result.results] == [
                r.wcrt for r in reference.results
            ]
        finally:
            del registry_module._REGISTRY["zoo_test_nps"]

    def test_make_analysis_tags_protocols(self):
        assert make_analysis("threshold").protocol == "threshold"
        assert make_analysis("regulated").protocol == "regulated"


class TestThresholdAnalysis:
    def test_default_thresholds_equal_priorities(self, ts):
        resolved = resolve_thresholds(ts, None)
        assert resolved == {
            task.name: task.priority for task in ts.tasks
        }

    def test_unknown_task_name_rejected(self, ts):
        with pytest.raises(ReproError, match="no task named 'ghost'"):
            resolve_thresholds(ts, (("ghost", 0),))

    def test_threshold_above_priority_rejected(self, ts):
        # theta must be at least as urgent (numerically <=) as the
        # task's own priority; a *lazier* threshold is meaningless.
        with pytest.raises(AnalysisError):
            resolve_thresholds(ts, (("hi", 2),))

    def test_max_phase_is_the_largest_chunk(self, ts):
        assert max_phase(ts.by_name("mid")) == 2.0

    def test_blocking_never_exceeds_nps_blocking(self, ts):
        # With default thresholds every phase boundary is preemptible,
        # so the single-blocker term shrinks from a whole lp job to its
        # largest phase.
        threshold = ThresholdAnalysis(AnalysisOptions())
        thresholds = resolve_thresholds(ts, None)
        nps = NpsAnalysis(AnalysisOptions(), variant="carry")
        for task in ts.tasks:
            assert threshold.blocking(ts, task, thresholds) <= nps.blocking(
                ts, task
            )
        hi = ts.by_name("hi")
        assert threshold.blocking(ts, hi, thresholds) == pytest.approx(
            max_phase(ts.by_name("lo"))
        )

    def test_bounds_cover_own_cost(self, ts):
        analysis = ThresholdAnalysis(
            AnalysisOptions(stop_at_deadline=False)
        )
        result = analysis.analyze(ts)
        for task_result in result.results:
            own = task_result.task.total_cost
            assert task_result.wcrt >= own

    def test_custom_thresholds_shield_the_holder(self, ts):
        # Giving "lo" threshold 0 makes its started jobs immune to all
        # preemption: its own bound can only improve, and it must not
        # get worse for any setting.
        default = ThresholdAnalysis(
            AnalysisOptions(stop_at_deadline=False)
        ).analyze(ts)
        shielded = ThresholdAnalysis(
            AnalysisOptions(
                stop_at_deadline=False,
                preemption_thresholds=(("lo", 0),),
            )
        ).analyze(ts)
        lo_default = default.result_for("lo")
        lo_shielded = shielded.result_for("lo")
        assert lo_shielded.wcrt <= lo_default.wcrt + 1e-9

    def test_details_expose_blocking_and_threshold(self, ts):
        result = ThresholdAnalysis(AnalysisOptions()).response_time(
            ts, ts.by_name("mid")
        )
        assert "blocking" in result.details
        assert result.details["threshold"] == ts.by_name("mid").priority


class TestRegulatedAnalysis:
    def test_regulation_config_validation(self):
        with pytest.raises(ValueError, match="budget"):
            RegulationConfig(budget=0.0, period=1.0)
        with pytest.raises(ValueError, match="budget"):
            RegulationConfig(budget=2.0, period=1.0)
        with pytest.raises(ValueError, match="period"):
            RegulationConfig(budget=0.5, period=0.0)
        assert RegulationConfig(budget=1.0, period=1.0).budget == 1.0

    def test_regulated_duration_formula(self):
        reg = RegulationConfig(budget=0.5, period=1.0)
        # demand 1.0 needs ceil(1.0/0.5)=2 budget windows: 2 stalls.
        assert regulated_duration(1.0, reg) == pytest.approx(2.0)
        # demand 0.4 fits one window: one stall's worth of slowdown.
        assert regulated_duration(0.4, reg) == pytest.approx(0.9)
        assert regulated_duration(0.0, reg) == 0.0
        assert regulated_duration(1.0, None) == 1.0

    def test_full_budget_is_no_regulation(self, ts):
        reg = RegulationConfig(budget=2.0, period=2.0)
        for task in ts.tasks:
            assert regulated_cost(task, reg) == pytest.approx(
                task.total_cost
            )

    def test_unregulated_analysis_matches_nps_carry(self, ts):
        options = AnalysisOptions(stop_at_deadline=False)
        regulated = RegulatedAnalysis(options).analyze(ts)
        carry = NpsAnalysis(options, variant="carry").analyze(ts)
        assert [r.wcrt for r in regulated.results] == [
            r.wcrt for r in carry.results
        ]

    def test_regulation_only_inflates(self, ts):
        options = AnalysisOptions(
            stop_at_deadline=False,
            regulation=RegulationConfig(budget=0.5, period=1.0),
        )
        tight = RegulatedAnalysis(
            AnalysisOptions(stop_at_deadline=False)
        ).analyze(ts)
        throttled = RegulatedAnalysis(options).analyze(ts)
        for free, reg in zip(tight.results, throttled.results):
            assert reg.wcrt >= free.wcrt - 1e-9


class TestSimulators:
    def test_threshold_sim_runs_all_jobs(self, ts):
        trace = ThresholdSimulator(ts).run(synchronous_plan(ts, 100.0))
        assert trace.protocol == "threshold"
        for task in ts.tasks:
            assert trace.jobs_of(task.name)

    def test_threshold_sim_preempts_at_phase_boundaries_only(self, ts):
        # Under threshold scheduling "lo" is never split mid-phase:
        # every job's phases are contiguous chunks, so its measured
        # response is a sum of phase lengths plus waiting, never less
        # than its own cost.
        rng = np.random.default_rng(7)
        trace = ThresholdSimulator(ts).run(sporadic_plan(ts, 300.0, rng))
        lo_jobs = [j for j in trace.jobs_of("lo") if j.completed]
        assert lo_jobs
        for job in lo_jobs:
            assert job.response_time >= ts.by_name("lo").total_cost - 1e-9

    def test_unregulated_sim_is_nps(self, ts):
        plan = synchronous_plan(ts, 150.0)
        nps = NpsSimulator(ts).run(plan)
        reg = RegulatedSimulator(ts).run(plan)
        def shape(trace):
            return [
                (j.name, j.release, j.copy_in_start, j.copy_in_end,
                 j.exec_start, j.exec_end, j.copy_out_start, j.copy_out_end)
                for j in trace.jobs
            ]

        assert shape(nps) == shape(reg)

    def test_regulated_sim_stalls_memory_phases(self, ts):
        plan = synchronous_plan(ts, 150.0)
        free = RegulatedSimulator(ts).run(plan)
        throttled = RegulatedSimulator(
            ts, regulation=RegulationConfig(budget=0.1, period=1.0)
        ).run(plan)
        # Same job population, strictly later finishes for jobs whose
        # memory demand exceeds one budget.
        assert len(free.jobs) == len(throttled.jobs)
        lo_free = free.jobs_of("lo")[0]
        lo_throttled = throttled.jobs_of("lo")[0]
        assert lo_throttled.copy_out_end > lo_free.copy_out_end


class TestCrossValidation:
    """Observed response <= analysis bound, adversarially searched."""

    def test_threshold_observed_within_bound(self, ts):
        options = AnalysisOptions(stop_at_deadline=False)
        analysis = ThresholdAnalysis(options)
        for seed, victim in enumerate(("hi", "mid", "lo")):
            adv = find_worst_response(
                ts, victim, ThresholdSimulator,
                rng=np.random.default_rng(40 + seed),
            )
            bound = analysis.response_time(ts, ts.by_name(victim)).wcrt
            assert adv.worst_response <= bound + 1e-6

    def test_threshold_custom_thetas_observed_within_bound(self, ts):
        thresholds = (("mid", 0), ("lo", 1))
        options = AnalysisOptions(
            stop_at_deadline=False, preemption_thresholds=thresholds
        )
        analysis = ThresholdAnalysis(options)
        for seed, victim in enumerate(("hi", "mid", "lo")):
            adv = find_worst_response(
                ts, victim,
                lambda taskset: ThresholdSimulator(
                    taskset, thresholds=thresholds
                ),
                rng=np.random.default_rng(50 + seed),
            )
            bound = analysis.response_time(ts, ts.by_name(victim)).wcrt
            assert adv.worst_response <= bound + 1e-6

    def test_regulated_observed_within_bound(self, ts):
        regulation = RegulationConfig(budget=0.5, period=1.0)
        options = AnalysisOptions(
            stop_at_deadline=False, regulation=regulation
        )
        analysis = RegulatedAnalysis(options)
        for seed, victim in enumerate(("hi", "mid", "lo")):
            adv = find_worst_response(
                ts, victim,
                lambda taskset: RegulatedSimulator(
                    taskset, regulation=regulation
                ),
                rng=np.random.default_rng(60 + seed),
            )
            bound = analysis.response_time(ts, ts.by_name(victim)).wcrt
            assert adv.worst_response <= bound + 1e-6

    @pytest.mark.parametrize("seed", [101, 202])
    def test_generated_matrix_threshold(self, seed):
        config = GenerationConfig(n=4, utilization=0.35, gamma=0.15)
        options = AnalysisOptions(stop_at_deadline=False)
        analysis = ThresholdAnalysis(options)
        for taskset in generate_tasksets(config, count=2, seed=seed):
            victim = taskset.tasks[0].name
            adv = find_worst_response(
                taskset, victim, ThresholdSimulator,
                restarts=6, rng=np.random.default_rng(seed),
            )
            bound = analysis.response_time(
                taskset, taskset.by_name(victim)
            ).wcrt
            assert adv.worst_response <= bound + 1e-6

    @pytest.mark.parametrize("seed", [303, 404])
    def test_generated_matrix_regulated(self, seed):
        config = GenerationConfig(n=4, utilization=0.3, gamma=0.15)
        regulation = RegulationConfig(budget=0.6, period=1.0)
        options = AnalysisOptions(
            stop_at_deadline=False, regulation=regulation
        )
        analysis = RegulatedAnalysis(options)
        for taskset in generate_tasksets(config, count=2, seed=seed):
            victim = taskset.tasks[-1].name
            adv = find_worst_response(
                taskset, victim,
                lambda ts_: RegulatedSimulator(ts_, regulation=regulation),
                restarts=6, rng=np.random.default_rng(seed),
            )
            bound = analysis.response_time(
                taskset, taskset.by_name(victim)
            ).wcrt
            assert adv.worst_response <= bound + 1e-6
