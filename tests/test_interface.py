"""Unit tests for analysis result types and options."""

import math

import pytest

from repro.analysis.interface import AnalysisOptions, TaskResult, TaskSetResult
from repro.model.task import Task
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet(
        [
            Task.sporadic("a", 1.0, 10.0, deadline=8.0, priority=0),
            Task.sporadic("b", 2.0, 20.0, deadline=15.0, priority=1),
        ]
    )


def _result(task, wcrt):
    return TaskResult(task=task, wcrt=wcrt)


class TestTaskResult:
    def test_schedulable_boundary(self, ts):
        task = ts.by_name("a")
        assert _result(task, 8.0).schedulable
        assert not _result(task, 8.01).schedulable

    def test_slack(self, ts):
        task = ts.by_name("a")
        assert _result(task, 5.0).slack == pytest.approx(3.0)
        assert _result(task, math.inf).slack == -math.inf

    def test_infinite_wcrt_unschedulable(self, ts):
        assert not _result(ts.by_name("a"), math.inf).schedulable


class TestTaskSetResult:
    def test_requires_all_tasks(self, ts):
        with pytest.raises(ValueError):
            TaskSetResult(
                taskset=ts,
                results=(_result(ts.by_name("a"), 1.0),),
                protocol="nps",
            )

    def test_schedulable_aggregation(self, ts):
        good = TaskSetResult(
            taskset=ts,
            results=(
                _result(ts.by_name("a"), 7.0),
                _result(ts.by_name("b"), 10.0),
            ),
            protocol="nps",
        )
        assert good.schedulable
        assert good.first_miss is None

    def test_first_miss_is_highest_priority(self, ts):
        result = TaskSetResult(
            taskset=ts,
            results=(
                _result(ts.by_name("b"), 99.0),
                _result(ts.by_name("a"), 99.0),
            ),
            protocol="nps",
        )
        assert result.first_miss.task.name == "a"

    def test_result_for(self, ts):
        result = TaskSetResult(
            taskset=ts,
            results=(
                _result(ts.by_name("a"), 1.0),
                _result(ts.by_name("b"), 2.0),
            ),
            protocol="nps",
        )
        assert result.result_for("b").wcrt == 2.0
        with pytest.raises(KeyError):
            result.result_for("zzz")

    def test_summary_rows_order(self, ts):
        result = TaskSetResult(
            taskset=ts,
            results=(
                _result(ts.by_name("a"), 1.0),
                _result(ts.by_name("b"), 2.0),
            ),
            protocol="nps",
        )
        assert [row[0] for row in result.summary_rows()] == ["a", "b"]


class TestAnalysisOptions:
    def test_defaults(self):
        options = AnalysisOptions()
        assert options.stop_at_deadline
        assert options.time_limit is None

    def test_frozen(self):
        options = AnalysisOptions()
        with pytest.raises(AttributeError):
            options.max_iterations = 5  # type: ignore[misc]
