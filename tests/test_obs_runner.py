"""End-to-end tracing through the sweep engine: determinism, reconciliation.

Satellite of the observability PR: the same configuration traced with
``jobs=1`` and ``jobs=4`` must yield identical aggregated event
counters and identical ``repro profile`` tables (timestamps excluded),
and every trace must reconcile exactly with the run's
``analysis_stats`` and failure ledger.
"""

import dataclasses

import pytest

from repro.experiments import (
    ExperimentConfig,
    SweepPoint,
    run_experiment,
)
from repro.experiments.config import figure2_config
from repro.generator.taskset_gen import GenerationConfig
from repro.obs import (
    aggregate_events,
    compare_profiles,
    read_trace,
    reconcile,
    render_profile,
)


def _reduced(inset: str, method: str = "closed_form", sets: int = 2):
    config = figure2_config(inset, sets_per_point=sets, seed=2020, method=method)
    return dataclasses.replace(config, points=config.points[2:5:2])


def _traced_run(config, tmp_path, label, **kwargs):
    path = tmp_path / f"{label}.jsonl"
    result = run_experiment(config, trace_path=str(path), **kwargs)
    return result, read_trace(path)


class TestTraceDeterminism:
    """jobs=1 and jobs=4 agree on every work-event aggregate."""

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("traces")
        config = _reduced("fig2a")
        sequential = _traced_run(config, tmp_path, "seq")
        parallel = _traced_run(config, tmp_path, "par", jobs=4)
        return sequential, parallel

    def test_aggregated_counters_identical(self, runs):
        (_, seq_events), (_, par_events) = runs
        assert compare_profiles(seq_events, par_events) == []

    def test_profile_tables_identical(self, runs):
        # The full `repro profile --no-timings` rendering — counts,
        # cache counters, solve outcomes — must match byte-for-byte.
        (_, seq_events), (_, par_events) = runs
        seq_table = render_profile(aggregate_events(seq_events), timings=False)
        par_table = render_profile(aggregate_events(par_events), timings=False)
        assert seq_table == par_table

    def test_both_traces_reconcile_with_results(self, runs):
        for result, events in runs:
            report = aggregate_events(events)
            assert reconcile(report, result.points) == []

    def test_run_lifecycle_events_present(self, runs):
        (_, seq_events), _ = runs
        names = [e["name"] for e in seq_events]
        assert names[0] == "run.start"
        assert names[-1] == "run.end"
        assert names.count("point.end") == 2

    def test_every_event_is_stamped_with_the_run_id(self, runs):
        (_, seq_events), (_, par_events) = runs
        runs_seen = {e["run"] for e in seq_events + par_events}
        assert len(runs_seen) == 1  # same config digest on both paths


class TestMilpTraceReconciliation:
    def test_milp_run_reconciles_and_records_solves(self, tmp_path):
        config = _reduced("fig2a", method="milp")
        result, events = _traced_run(config, tmp_path, "milp", jobs=2)
        report = aggregate_events(events)
        assert reconcile(report, result.points) == []
        assert report.counts.get("solve", 0) > 0
        assert report.counts.get("fixpoint.iteration", 0) > 0
        assert report.cache_counters["milp_solves"] > 0
        # Cache traffic in the trace equals the sweep-table counters.
        assert report.cache_counters["milp_solves"] == sum(
            p.analysis_stats["milp_solves"] for p in result.points
        )


class TestFailureEvents:
    def _failing_config(self):
        # ls_policy="bogus" deterministically raises inside every
        # "proposed" evaluation — the same injection the parallel
        # sweep tests use, so it crosses process boundaries.
        points = tuple(
            SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
            for u in (0.2, 0.4)
        )
        return ExperimentConfig(
            name="ledger",
            x_label="U",
            points=points,
            sets_per_point=3,
            seed=11,
            method="closed_form",
            ls_policy="bogus",
        )

    def test_failure_event_count_matches_ledger(self, tmp_path):
        config = self._failing_config()
        result, events = _traced_run(config, tmp_path, "fail", jobs=2)
        report = aggregate_events(events)
        assert result.failures  # the injection actually fired
        assert report.failures == len(result.failures)
        assert reconcile(report, result.points) == []

    def test_failure_events_deterministic_across_jobs(self, tmp_path):
        config = self._failing_config()
        _, seq_events = _traced_run(config, tmp_path, "fseq")
        _, par_events = _traced_run(config, tmp_path, "fpar", jobs=2)
        assert compare_profiles(seq_events, par_events) == []


class TestResumedRuns:
    def test_resumed_points_emit_no_work_events(self, tmp_path):
        config = _reduced("fig2a")
        ckpt = tmp_path / "sweep.ckpt"
        run_experiment(config, checkpoint_path=str(ckpt))
        path = tmp_path / "resume.jsonl"
        result = run_experiment(
            config,
            checkpoint_path=str(ckpt),
            resume=True,
            trace_path=str(path),
        )
        events = read_trace(path)
        report = aggregate_events(events)
        # All points came from the checkpoint: lifecycle events only.
        assert len(result.points) == 2
        assert report.counts.get("solve", 0) == 0
        assert report.counts.get("protocol.verdict", 0) == 0
        names = {e["name"] for e in events}
        assert names == {"run.start", "run.end"}

    def test_untraced_run_writes_nothing(self, tmp_path):
        config = _reduced("fig2a")
        run_experiment(config)
        assert list(tmp_path.iterdir()) == []
