"""Unit tests for the arrival-curve event models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.curves import (
    BurstyArrival,
    PeriodicJitterArrival,
    SporadicArrival,
    StaircaseCurve,
)
from repro.errors import CurveError


class TestSporadicArrival:
    def test_zero_window_has_no_events(self):
        assert SporadicArrival(10.0).eta(0.0) == 0

    def test_negative_window_has_no_events(self):
        assert SporadicArrival(10.0).eta(-5.0) == 0

    def test_window_below_period(self):
        assert SporadicArrival(10.0).eta(9.99) == 1

    def test_window_exactly_period(self):
        # Half-open window of length T captures exactly one event.
        assert SporadicArrival(10.0).eta(10.0) == 1

    def test_window_just_past_period(self):
        assert SporadicArrival(10.0).eta(10.5) == 2

    def test_floating_point_noise_does_not_overcount(self):
        # 3 * (0.1 + 0.2) style noise must not produce an extra event.
        curve = SporadicArrival(0.30000000000000004)
        assert curve.eta(0.9000000000000001) == 3

    def test_eta_closed_includes_boundary_release(self):
        curve = SporadicArrival(10.0)
        assert curve.eta_closed(10.0) == 2
        assert curve.eta_closed(0.0) == 1

    def test_earliest_release(self):
        curve = SporadicArrival(7.5)
        assert curve.earliest_release(0) == 0.0
        assert curve.earliest_release(3) == pytest.approx(22.5)

    def test_delta_min_inverse_of_eta(self):
        curve = SporadicArrival(4.0)
        for n in range(1, 6):
            delta = curve.delta_min(n)
            assert curve.eta(delta) >= n

    def test_invalid_period(self):
        with pytest.raises(CurveError):
            SporadicArrival(0.0)
        with pytest.raises(CurveError):
            SporadicArrival(-1.0)

    def test_equality_and_hash(self):
        assert SporadicArrival(5.0) == SporadicArrival(5.0)
        assert hash(SporadicArrival(5.0)) == hash(SporadicArrival(5.0))
        assert SporadicArrival(5.0) != SporadicArrival(6.0)

    @given(st.floats(0.1, 1e6), st.floats(0.0, 1e6), st.floats(0.0, 1e6))
    def test_subadditive_and_monotone(self, period, d1, d2):
        curve = SporadicArrival(period)
        assert curve.eta(d1 + d2) <= curve.eta(d1) + curve.eta(d2) + 1
        small, large = sorted([d1, d2])
        assert curve.eta(small) <= curve.eta(large)


class TestPeriodicJitterArrival:
    def test_no_jitter_matches_sporadic(self):
        pj = PeriodicJitterArrival(10.0, 0.0)
        sp = SporadicArrival(10.0)
        for delta in (0.0, 1.0, 9.9, 10.0, 25.0, 100.0):
            assert pj.eta(delta) == sp.eta(delta)

    def test_jitter_adds_events(self):
        pj = PeriodicJitterArrival(10.0, jitter=5.0)
        assert pj.eta(6.0) == 2  # two releases can be squeezed by jitter

    def test_zero_window(self):
        assert PeriodicJitterArrival(10.0, 5.0).eta(0.0) == 0

    def test_invalid_parameters(self):
        with pytest.raises(CurveError):
            PeriodicJitterArrival(0.0, 1.0)
        with pytest.raises(CurveError):
            PeriodicJitterArrival(5.0, -1.0)

    def test_generic_earliest_release_bisection(self):
        pj = PeriodicJitterArrival(10.0, jitter=0.0)
        assert pj.earliest_release(2) == pytest.approx(20.0, abs=1e-6)


class TestBurstyArrival:
    def test_burst_limited_by_d_min(self):
        curve = BurstyArrival(period=10.0, jitter=50.0, d_min=1.0)
        # jitter alone would allow 6 events in delta=5; d_min caps at 5.
        assert curve.eta(5.0) == 5

    def test_periodic_limit_for_large_windows(self):
        curve = BurstyArrival(period=10.0, jitter=5.0, d_min=1.0)
        assert curve.eta(100.0) == 11  # (100+5)/10 rounded up

    def test_invalid_d_min_greater_than_period(self):
        with pytest.raises(CurveError):
            BurstyArrival(period=5.0, jitter=0.0, d_min=6.0)

    def test_invalid_negatives(self):
        with pytest.raises(CurveError):
            BurstyArrival(period=-5.0, jitter=0.0, d_min=1.0)
        with pytest.raises(CurveError):
            BurstyArrival(period=5.0, jitter=-1.0, d_min=1.0)


class TestStaircaseCurve:
    def test_basic_steps(self):
        curve = StaircaseCurve([(0.0, 1), (5.0, 2), (12.0, 3)])
        assert curve.eta(0.0) == 0
        assert curve.eta(1.0) == 1
        assert curve.eta(5.0) == 2
        assert curve.eta(11.0) == 2
        assert curve.eta(12.0) == 3

    def test_tail_extrapolation(self):
        curve = StaircaseCurve([(0.0, 1), (10.0, 2)], tail_period=10.0)
        assert curve.eta(20.0) == 3
        assert curve.eta(30.0) == 4

    def test_default_tail_uses_last_gap(self):
        curve = StaircaseCurve([(0.0, 1), (4.0, 2)])
        assert curve.eta(8.0) == 3

    def test_rejects_decreasing_counts(self):
        with pytest.raises(CurveError):
            StaircaseCurve([(0.0, 2), (5.0, 1)])

    def test_rejects_duplicate_positions(self):
        with pytest.raises(CurveError):
            StaircaseCurve([(5.0, 1), (5.0, 2)])

    def test_rejects_empty(self):
        with pytest.raises(CurveError):
            StaircaseCurve([])

    def test_validate_passes_for_wellformed(self):
        StaircaseCurve([(0.0, 1), (5.0, 2)]).validate()

    def test_rejects_degenerate_tail_period(self):
        with pytest.raises(CurveError):
            StaircaseCurve([(0.0, 1)], tail_period=1e-12)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 200).map(lambda k: k * 0.5),
                st.integers(1, 50),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda t: t[0],
        )
    )
    def test_monotone_for_any_steps(self, raw_steps):
        ordered = sorted(raw_steps)
        counts = []
        acc = 0
        for _, c in ordered:
            acc = max(acc, c) if not counts else max(counts[-1], c)
            counts.append(acc)
        steps = [(d, c) for (d, _), c in zip(ordered, counts)]
        curve = StaircaseCurve(steps)
        probes = [0.0, 0.5, 1.0, 10.0, 50.0, 150.0, 500.0]
        values = [curve.eta(p) for p in probes]
        assert values == sorted(values)
