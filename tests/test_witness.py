"""Unit tests for the worst-case schedule witness decoder."""

import pytest

from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.analysis.proposed.witness import (
    extract_witness,
    validate_witness,
)
from repro.errors import AnalysisError
from repro.milp import HighsBackend
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
        ]
    ).with_ls_marks(["a"])


def _solved(ts, name, window, mode):
    task = ts.by_name(name)
    built = build_delay_milp(ts, task, window, mode)
    solution = built.model.solve(HighsBackend())
    return built, solution


class TestExtract:
    def test_final_interval_is_task(self, ts):
        built, solution = _solved(ts, "b", 12.0, AnalysisMode.NLS)
        witness = extract_witness(built, solution, "b")
        assert witness.intervals[-1].executes == "b"
        assert witness.total_delay == pytest.approx(
            solution.objective, abs=1e-6
        )
        validate_witness(witness)

    def test_copy_in_of_task_in_second_last(self, ts):
        built, solution = _solved(ts, "b", 12.0, AnalysisMode.NLS)
        witness = extract_witness(built, solution, "b")
        assert witness.intervals[-2].copy_in_of == "b"

    def test_case_b_witness(self, ts):
        built, solution = _solved(ts, "a", 0.0, AnalysisMode.LS_CASE_B)
        witness = extract_witness(built, solution, "a")
        assert len(witness.intervals) == 2
        validate_witness(witness)

    def test_render_mentions_tasks(self, ts):
        built, solution = _solved(ts, "c", 20.0, AnalysisMode.NLS)
        witness = extract_witness(built, solution, "c")
        text = witness.render()
        assert "worst-case window for c" in text
        assert "exec" in text

    def test_wasly_witness_has_no_urgent(self, ts):
        built, solution = _solved(ts, "b", 12.0, AnalysisMode.WASLY)
        witness = extract_witness(built, solution, "b")
        assert not any(iv.urgent for iv in witness.intervals)
        validate_witness(witness)

    def test_rejects_unsolved(self, ts):
        from repro.milp.solution import MilpSolution, SolveStatus

        built, _ = _solved(ts, "b", 12.0, AnalysisMode.NLS)
        bad = MilpSolution(status=SolveStatus.INFEASIBLE)
        with pytest.raises(AnalysisError):
            extract_witness(built, bad, "b")


class TestValidate:
    def test_detects_wrong_final_occupant(self, ts):
        built, solution = _solved(ts, "b", 12.0, AnalysisMode.NLS)
        witness = extract_witness(built, solution, "b")
        from dataclasses import replace

        broken = replace(
            witness,
            intervals=witness.intervals[:-1]
            + (replace(witness.intervals[-1], executes="zzz"),),
        )
        with pytest.raises(AnalysisError):
            validate_witness(broken)
