"""Unit tests for the MILP model container and compilation."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.milp.model import MilpModel


class TestVariableRegistration:
    def test_duplicate_names_rejected(self):
        m = MilpModel()
        m.var("x")
        with pytest.raises(SolverError):
            m.var("x")

    def test_binary_bounds(self):
        m = MilpModel()
        b = m.binary("b")
        assert (b.lower, b.upper, b.integer) == (0.0, 1.0, True)

    def test_indices_assigned_in_order(self):
        m = MilpModel()
        vs = [m.var(f"v{i}") for i in range(5)]
        assert [v.index for v in vs] == list(range(5))


class TestConstraintRegistration:
    def test_foreign_variable_rejected(self):
        m1, m2 = MilpModel("a"), MilpModel("b")
        x1 = m1.var("x")
        with pytest.raises(SolverError):
            m2.add(x1 <= 1)

    def test_non_constraint_rejected(self):
        m = MilpModel()
        m.var("x")
        with pytest.raises(SolverError):
            m.add(True)  # type: ignore[arg-type]

    def test_add_all_names_with_prefix(self):
        m = MilpModel()
        x = m.var("x")
        m.add_all([x <= 1, x <= 2], prefix="cap")
        assert [c.name for c in m.constraints] == ["cap[0]", "cap[1]"]


class TestCompile:
    def test_empty_model_rejected(self):
        with pytest.raises(SolverError):
            MilpModel().compile()

    def test_matrix_shape_and_content(self):
        m = MilpModel()
        x = m.var("x", 0, 4)
        b = m.binary("b")
        m.add(x + 2 * b <= 3)
        m.add(x - b >= 1)
        m.maximize(x + 10 * b)
        c = m.compile()
        assert c.row_matrix.shape == (2, 2)
        np.testing.assert_allclose(c.objective, [1.0, 10.0])
        np.testing.assert_allclose(c.row_matrix[0], [1.0, 2.0])
        assert c.row_upper[0] == 3.0
        assert c.row_lower[1] == 1.0
        assert list(c.integrality) == [0, 1]

    def test_minimize_negates(self):
        m = MilpModel()
        x = m.var("x", 0, 4)
        m.minimize(x + 1)
        c = m.compile()
        np.testing.assert_allclose(c.objective, [-1.0])
        assert c.objective_constant == -1.0

    def test_stats(self):
        m = MilpModel()
        m.var("x")
        m.binary("b")
        m.add(m.variables[0] <= 1)
        assert m.stats() == {"variables": 2, "integers": 1, "constraints": 1}


class TestCheckAssignment:
    def test_reports_violations(self):
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add((x <= 3).named("cap"))
        violated = m.check_assignment([5.0])
        assert len(violated) == 1
        assert violated[0].name == "cap"

    def test_length_mismatch(self):
        m = MilpModel()
        m.var("x")
        with pytest.raises(SolverError):
            m.check_assignment([1.0, 2.0])

    def test_clean_assignment(self):
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add(x <= 3)
        assert m.check_assignment([2.0]) == []

    def test_upper_violation_inside_tolerance_passes(self):
        # Overshoot strictly below tol (default 1e-6) is accepted; the
        # exact edge is left alone (float addition rounds across it).
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add(x <= 3)
        assert m.check_assignment([3.0 + 0.5e-6]) == []

    def test_upper_violation_beyond_tolerance_fails(self):
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add(x <= 3)
        assert len(m.check_assignment([3.0 + 2e-6])) == 1

    def test_lower_sense_edge(self):
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add(x >= 1)
        assert m.check_assignment([1.0 - 0.5e-6]) == []
        assert len(m.check_assignment([1.0 - 2e-6])) == 1

    def test_equality_edges_both_sides(self):
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add(x == 2)
        assert m.check_assignment([2.0 + 0.5e-6]) == []
        assert m.check_assignment([2.0 - 0.5e-6]) == []
        assert len(m.check_assignment([2.0 + 2e-6])) == 1
        assert len(m.check_assignment([2.0 - 2e-6])) == 1

    def test_custom_tolerance(self):
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add(x <= 3)
        assert m.check_assignment([3.05], tol=0.1) == []
        assert len(m.check_assignment([3.05], tol=0.01)) == 1

    def test_zero_tolerance_is_exact(self):
        m = MilpModel()
        x = m.var("x", 0, 10)
        m.add(x <= 3)
        assert m.check_assignment([3.0], tol=0.0) == []
        assert len(m.check_assignment([np.nextafter(3.0, 4.0)], tol=0.0)) == 1
