"""Unit and cross-validation tests for the two MILP backends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.milp import (
    BranchBoundBackend,
    HighsBackend,
    MilpModel,
    SolveStatus,
)
from repro.milp.expr import LinExpr


def knapsack_model(values, weights, capacity):
    m = MilpModel("knapsack")
    xs = [m.binary(f"x{i}") for i in range(len(values))]
    m.add(LinExpr.total(w * x for w, x in zip(weights, xs)) <= capacity)
    m.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
    return m, xs


class TestHighsBackend:
    def test_simple_lp(self):
        m = MilpModel()
        x = m.continuous("x", 0, 4)
        m.maximize(x)
        sol = m.solve(HighsBackend())
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(4.0)

    def test_knapsack(self):
        m, xs = knapsack_model([10, 13, 7], [5, 6, 4], 10)
        sol = m.solve(HighsBackend())
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(20.0)  # items 1 and 2
        assert sol[xs[1]] == pytest.approx(1.0)

    def test_infeasible(self):
        m = MilpModel()
        x = m.continuous("x", 0, 1)
        m.add(x >= 2)
        m.maximize(x)
        assert m.solve(HighsBackend()).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = MilpModel()
        x = m.continuous("x")
        m.maximize(x)
        assert m.solve(HighsBackend()).status is SolveStatus.UNBOUNDED

    def test_objective_constant_carried(self):
        m = MilpModel()
        x = m.continuous("x", 0, 3)
        m.maximize(x + 7)
        assert m.solve(HighsBackend()).objective == pytest.approx(10.0)

    def test_integer_values_snapped(self):
        m, xs = knapsack_model([3, 5], [2, 3], 5)
        sol = m.solve(HighsBackend())
        for x in xs:
            assert sol[x] in (0.0, 1.0)

    def test_value_by_name(self):
        m = MilpModel()
        x = m.continuous("velocity", 0, 2)
        m.maximize(x)
        sol = m.solve(HighsBackend())
        assert sol.value_by_name("velocity") == pytest.approx(2.0)
        with pytest.raises(KeyError):
            sol.value_by_name("missing")

    def test_binaries_set(self):
        m, xs = knapsack_model([1, 100], [1, 1], 1)
        sol = m.solve(HighsBackend())
        assert sol.binaries_set() == ("x1",)


class TestBranchBoundBackend:
    def test_knapsack(self):
        m, _ = knapsack_model([10, 13, 7], [5, 6, 4], 10)
        sol = m.solve(BranchBoundBackend())
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(20.0)

    def test_infeasible(self):
        m = MilpModel()
        x = m.continuous("x", 0, 1)
        m.add(x >= 2)
        m.maximize(x)
        assert m.solve(BranchBoundBackend()).status is SolveStatus.INFEASIBLE

    def test_equality_constraints(self):
        m = MilpModel()
        x = m.var("x", 0, 10, integer=True)
        y = m.var("y", 0, 10, integer=True)
        m.add(x + y == 7)
        m.maximize(2 * x + y)
        sol = m.solve(BranchBoundBackend())
        assert sol.objective == pytest.approx(14.0)
        assert sol[x] == pytest.approx(7.0)

    def test_node_budget_reports_safe_bound(self):
        # A model the budget cannot finish: the dual bound must still
        # be an upper bound on the true optimum.
        rng = np.random.default_rng(3)
        values = rng.integers(10, 100, size=14).tolist()
        weights = rng.integers(5, 50, size=14).tolist()
        m, _ = knapsack_model(values, weights, int(sum(weights) * 0.4))
        exact = m.solve(HighsBackend()).objective
        sol = m.solve(BranchBoundBackend(max_nodes=3))
        assert sol.status in (SolveStatus.TIME_LIMIT, SolveStatus.OPTIMAL)
        assert sol.objective >= exact - 1e-6

    def test_rejects_bad_budget(self):
        with pytest.raises(SolverError):
            BranchBoundBackend(max_nodes=0)

    def test_pure_lp(self):
        m = MilpModel()
        x = m.continuous("x", 0, 2.5)
        m.maximize(3 * x)
        sol = m.solve(BranchBoundBackend())
        assert sol.objective == pytest.approx(7.5)


class TestBackendAgreement:
    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(2, 6),
        st.integers(0, 10_000),
    )
    def test_backends_agree_on_random_knapsacks(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(1, 40, size=n).tolist()
        weights = rng.integers(1, 20, size=n).tolist()
        capacity = max(1, int(sum(weights) * 0.5))
        m, _ = knapsack_model(values, weights, capacity)
        a = m.solve(HighsBackend())
        b = m.solve(BranchBoundBackend())
        assert a.status is SolveStatus.OPTIMAL
        assert b.status is SolveStatus.OPTIMAL
        assert a.objective == pytest.approx(b.objective, abs=1e-6)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000))
    def test_backends_agree_with_equalities_and_continuous(self, seed):
        rng = np.random.default_rng(seed)
        m = MilpModel()
        xs = [m.binary(f"b{i}") for i in range(4)]
        z = m.continuous("z", 0, 10)
        coefs = rng.integers(1, 5, size=4).tolist()
        m.add(LinExpr.total(c * x for c, x in zip(coefs, xs)) + z <= 12)
        m.add(xs[0] + xs[1] == 1)
        weights = rng.integers(1, 9, size=4).tolist()
        m.maximize(LinExpr.total(w * x for w, x in zip(weights, xs)) + 0.5 * z)
        a = m.solve(HighsBackend())
        b = m.solve(BranchBoundBackend())
        assert a.objective == pytest.approx(b.objective, abs=1e-6)
