"""Small utilities and the package's public surface."""

import pytest

import repro
from repro.milp.solution import SolveStatus
from repro.types import TIME_EPS, time_eq, time_leq, time_lt


class TestTimeHelpers:
    def test_time_eq_within_eps(self):
        assert time_eq(1.0, 1.0 + TIME_EPS / 2)
        assert not time_eq(1.0, 1.0 + 10 * TIME_EPS)

    def test_time_leq_boundary(self):
        assert time_leq(1.0 + TIME_EPS / 2, 1.0)
        assert not time_leq(1.1, 1.0)

    def test_time_lt_strict(self):
        assert time_lt(0.9, 1.0)
        assert not time_lt(1.0 - TIME_EPS / 2, 1.0)


class TestSolveStatus:
    def test_has_solution(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.TIME_LIMIT.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.UNBOUNDED.has_solution
        assert not SolveStatus.ERROR.has_solution


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)

    @pytest.mark.parametrize(
        "name",
        [
            "Task",
            "TaskSet",
            "TaskChain",
            "analyze_taskset",
            "is_schedulable",
            "greedy_ls_assignment",
            "audsley_opa",
            "load_taskset",
        ],
    )
    def test_key_symbols_importable(self, name):
        assert getattr(repro, name) is not None
