"""Unit tests for the task-set schedulability front end."""

import pytest

from repro.analysis.schedulability import (
    PROTOCOLS,
    analyze_taskset,
    is_schedulable,
)
from repro.errors import AnalysisError
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
        ]
    )


class TestAnalyzeTaskset:
    def test_all_protocols_produce_results(self, ts):
        for protocol in PROTOCOLS:
            result = analyze_taskset(ts, protocol)
            assert len(result.results) == len(ts)
            assert result.protocol in protocol  # "nps" prefix of "nps_carry"

    def test_unknown_protocol(self, ts):
        with pytest.raises(AnalysisError):
            analyze_taskset(ts, "edf")

    def test_proposed_with_greedy_policy(self, ts):
        result = analyze_taskset(ts, "proposed", ls_policy="greedy")
        assert result.schedulable

    def test_unknown_ls_policy(self, ts):
        with pytest.raises(AnalysisError):
            analyze_taskset(ts, "proposed", ls_policy="psychic")

    def test_as_marked_respects_flags(self, ts):
        marked = ts.with_ls_marks(["a"])
        result = analyze_taskset(marked, "proposed", ls_policy="as_marked")
        a_result = result.result_for("a")
        assert "case_b_wcrt" in a_result.details


class TestIsSchedulable:
    def test_easy_set_all_protocols(self, ts):
        for protocol in PROTOCOLS:
            assert is_schedulable(ts, protocol), protocol

    def test_overloaded_set_all_protocols(self):
        overload = TaskSet.from_parameters(
            [
                ("x", 9.0, 0.5, 0.5, 10.0, 10.0),
                ("y", 5.0, 0.5, 0.5, 10.0, 10.0),
            ]
        )
        for protocol in PROTOCOLS:
            assert not is_schedulable(overload, protocol), protocol

    def test_unknown_ls_policy(self, ts):
        with pytest.raises(AnalysisError):
            is_schedulable(ts, "proposed", ls_policy="psychic")

    def test_as_marked_policy(self, ts):
        assert is_schedulable(ts, "proposed", ls_policy="as_marked")

    def test_closed_form_only_accepts(self, ts):
        # closed_form is strictly more pessimistic: a closed-form pass
        # implies a MILP pass.
        if is_schedulable(ts, "proposed", method="closed_form"):
            assert is_schedulable(ts, "proposed", method="milp")

    def test_nps_carry_more_pessimistic_than_nps(self):
        # Any set the carry variant accepts, the exact variant accepts.
        ts = TaskSet.from_parameters(
            [
                ("a", 1.0, 0.1, 0.1, 10.0, 9.0),
                ("b", 3.0, 0.2, 0.2, 15.0, 14.0),
                ("c", 2.0, 0.2, 0.2, 30.0, 28.0),
            ]
        )
        if is_schedulable(ts, "nps_carry"):
            assert is_schedulable(ts, "nps")
