"""Chaos: torn checkpoint writes, fs errors, durable atomic persistence.

The ``checkpoint.torn`` site simulates a crash between temp-write and
rename (``lost``), a non-atomic writer leaving a truncated target
(``truncate``), and silent payload garbling caught only by the
per-point content digests (``corrupt_point``); ``fs.error`` simulates
transient filesystem failures. Contract: resume after any of them
re-solves exactly the damaged points and converges to the fault-free
result.
"""

import json
import os

import pytest

from repro.errors import ExperimentError, InjectedCrashError
from repro.experiments import ExperimentConfig, SweepPoint, run_experiment
from repro.experiments.persistence import (
    cleanup_stale_tmp,
    config_digest,
    load_checkpoint,
    load_checkpoint_recovering,
    read_checkpoint_points,
    save_checkpoint,
)
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.generator.taskset_gen import GenerationConfig
from repro.obs import events as obs
from repro.obs import read_trace


@pytest.fixture
def config():
    points = tuple(
        SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
        for u in (0.2, 0.4)
    )
    return ExperimentConfig(
        name="chaos-ckpt",
        x_label="U",
        points=points,
        sets_per_point=2,
        seed=11,
        method="closed_form",
    )


def _identical(a, b):
    assert [p.x for p in a.points] == [p.x for p in b.points]
    for pa, pb in zip(a.points, b.points):
        assert pa.ratios == pb.ratios
        assert pa.failures == pb.failures
        assert dict(pa.analysis_stats) == dict(pb.analysis_stats)


class TestDurableWrites:
    def test_save_fsyncs_file_and_directory(
        self, config, tmp_path, monkeypatch
    ):
        baseline = run_experiment(config)
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        save_checkpoint(
            tmp_path / "c.json", config, {0: baseline.points[0]}
        )
        # Once for the temp file, once for the containing directory.
        assert len(synced) >= 2

    def test_stale_tmp_cleanup(self, tmp_path):
        path = tmp_path / "c.json"
        tmp = tmp_path / "c.json.tmp"
        tmp.write_text("{half-written")
        assert cleanup_stale_tmp(path) is True
        assert not tmp.exists()
        assert cleanup_stale_tmp(path) is False

    def test_run_experiment_cleans_stale_tmp_on_startup(
        self, config, tmp_path
    ):
        path = tmp_path / "c.json"
        (tmp_path / "c.json.tmp").write_text("{half-written")
        run_experiment(config, checkpoint_path=str(path))
        assert not (tmp_path / "c.json.tmp").exists()
        assert load_checkpoint(path, config).keys() == {0, 1}

    def test_transient_fs_error_is_retried(self, config, tmp_path):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(FaultSpec(site="fs.error", times=2),), name="flaky-fs"
        )
        path = tmp_path / "c.json"
        recorder = obs.EventRecorder()
        with injecting(plan), obs.recording(recorder):
            save_checkpoint(path, config, {0: baseline.points[0]})
        assert load_checkpoint(path, config).keys() == {0}
        retries = [
            e for e in recorder.events if e["name"] == "checkpoint.retry"
        ]
        assert len(retries) == 2

    def test_persistent_fs_error_fails_loudly(self, config, tmp_path):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(FaultSpec(site="fs.error", times=None),), name="dead-fs"
        )
        with injecting(plan):
            with pytest.raises(ExperimentError, match="cannot write"):
                save_checkpoint(
                    tmp_path / "c.json", config, {0: baseline.points[0]}
                )


class TestTornWrites:
    def _crash_then_resume(self, config, tmp_path, mode, point=None):
        plan = FaultPlan(
            specs=(FaultSpec(site="checkpoint.torn", mode=mode, point=point),),
            name=f"torn-{mode}",
        )
        path = tmp_path / "c.json"
        with pytest.raises(InjectedCrashError, match="torn"):
            run_experiment(config, checkpoint_path=str(path), fault_plan=plan)
        return path

    def test_lost_rename_leaves_tmp_and_resumes(self, config, tmp_path):
        baseline = run_experiment(config)
        path = self._crash_then_resume(config, tmp_path, "lost")
        # The crash signature atomic writes are designed for: temp file
        # on disk, target untouched (here: never created).
        assert (tmp_path / "c.json.tmp").exists()
        assert not path.exists()
        resumed = run_experiment(
            config, checkpoint_path=str(path), resume=True
        )
        _identical(resumed, baseline)
        assert not (tmp_path / "c.json.tmp").exists()  # startup cleanup

    def test_truncated_target_resumes_from_scratch(self, config, tmp_path):
        baseline = run_experiment(config)
        path = self._crash_then_resume(config, tmp_path, "truncate")
        with pytest.raises(ExperimentError, match="unreadable checkpoint"):
            load_checkpoint(path, config)
        resumed = run_experiment(
            config, checkpoint_path=str(path), resume=True
        )
        _identical(resumed, baseline)

    def test_corrupt_point_resolves_only_that_point(self, config, tmp_path):
        baseline = run_experiment(config)
        # Tear the write that completes point 1: point 0's entry stays
        # pristine, point 1's payload no longer matches its digest.
        path = self._crash_then_resume(config, tmp_path, "corrupt_point", point=1)
        points, problems = load_checkpoint_recovering(path, config)
        assert points.keys() == {0}
        assert len(problems) == 1 and "digest" in problems[0]
        trace = tmp_path / "resume.jsonl"
        resumed = run_experiment(
            config,
            checkpoint_path=str(path),
            resume=True,
            trace_path=str(trace),
        )
        _identical(resumed, baseline)
        events = read_trace(trace)
        # Only the damaged point was re-solved...
        assert [e["point"] for e in events if e["name"] == "point.end"] == [1]
        # ...and the recovery is visible in the trace.
        assert any(
            e["name"] == "checkpoint.recovered" for e in events
        )


class TestDigestVerification:
    def test_strict_load_raises_on_garbled_point(self, config, tmp_path):
        baseline = run_experiment(config)
        path = tmp_path / "c.json"
        save_checkpoint(path, config, {0: baseline.points[0]})
        payload = json.loads(path.read_text())
        payload["points"]["0"]["point"]["ratios"] = {"nps": 1.0}
        path.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="content digest"):
            load_checkpoint(path, config)
        # The tolerant reader heals around exactly that point.
        assert load_checkpoint(path, config, tolerant=True) == {}
        assert read_checkpoint_points(path, tolerant=True) == {}
        with pytest.raises(ExperimentError, match="content digest"):
            read_checkpoint_points(path)

    def test_wrong_config_digest_never_healed(self, config, tmp_path):
        import dataclasses

        baseline = run_experiment(config)
        path = tmp_path / "c.json"
        save_checkpoint(path, config, {0: baseline.points[0]})
        other = dataclasses.replace(config, seed=999)
        with pytest.raises(ExperimentError, match="different experiment"):
            load_checkpoint_recovering(path, other)

    def test_version_1_checkpoints_still_load(self, config, tmp_path):
        from repro.experiments.persistence import (
            _config_to_dict,
            _point_to_dict,
        )

        baseline = run_experiment(config)
        path = tmp_path / "v1.json"
        path.write_text(
            json.dumps(
                {
                    "checkpoint_version": 1,
                    "config_digest": config_digest(config),
                    "config": _config_to_dict(config),
                    # v1: plain point dicts, no per-point digest.
                    "points": {"0": _point_to_dict(baseline.points[0])},
                }
            )
        )
        loaded = load_checkpoint(path, config)
        assert loaded[0].ratios == baseline.points[0].ratios

    def test_unsupported_version_rejected(self, config, tmp_path):
        path = tmp_path / "vX.json"
        path.write_text(
            json.dumps(
                {"checkpoint_version": 99, "config_digest": "x", "points": {}}
            )
        )
        with pytest.raises(ExperimentError, match="unsupported checkpoint"):
            load_checkpoint(path, config)
