"""Unit tests for the iterative response-time driver (proposed protocol)."""

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.proposed.closed_form import closed_form_delay_bound
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.errors import ModelError
from repro.milp import BranchBoundBackend
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
        ]
    )


class TestNlsIteration:
    def test_converges(self, ts):
        result = ProposedAnalysis().response_time(ts, ts.by_name("a"))
        assert result.converged
        assert result.wcrt > ts.by_name("a").total_cost

    def test_single_task_value(self, single_task_set):
        task = single_task_set[0]
        result = ProposedAnalysis().response_time(single_task_set, task)
        expected = (
            (task.copy_in + task.copy_out)
            + max(task.exec_time, task.copy_in)
            + task.copy_out
        )
        assert result.wcrt == pytest.approx(expected)

    def test_milp_at_most_closed_form(self, ts):
        options = AnalysisOptions(stop_at_deadline=False)
        for task in ts:
            milp = ProposedAnalysis(options).response_time(ts, task).wcrt
            closed = closed_form_delay_bound(
                ts, task, blocking_intervals=2, urgent_possible=True,
                deadline_cap=1e9,
            )
            assert milp <= closed + 1e-6

    def test_closed_form_method(self, ts):
        analysis = ProposedAnalysis(method="closed_form")
        result = analysis.response_time(ts, ts.by_name("a"))
        assert result.details["method"] == "closed_form"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ProposedAnalysis(method="oracle")

    def test_lp_relaxation_dominates_milp(self, ts):
        options = AnalysisOptions(stop_at_deadline=False)
        for task in ts:
            milp = ProposedAnalysis(options).response_time(ts, task)
            lp = ProposedAnalysis(options, method="lp").response_time(
                ts, task
            )
            assert lp.wcrt >= milp.wcrt - 1e-6

    def test_lp_verdict_accepts_subset_of_milp(self, ts):
        for task in ts:
            lp_ok = ProposedAnalysis(method="lp").verdict(ts, task)
            if lp_ok:
                assert ProposedAnalysis().verdict(ts, task)

    def test_alternative_backend(self, ts):
        # The branch-and-bound backend must reproduce HiGHS' fixpoint.
        highs = ProposedAnalysis().response_time(ts, ts.by_name("a")).wcrt
        bb = ProposedAnalysis(
            backend_factory=lambda: BranchBoundBackend(max_nodes=50_000)
        ).response_time(ts, ts.by_name("a")).wcrt
        assert bb == pytest.approx(highs, abs=1e-5)


class TestLsIteration:
    def test_ls_result_reports_both_cases(self, ts):
        marked = ts.with_ls_marks(["a"])
        result = ProposedAnalysis().response_time(marked, marked.by_name("a"))
        assert "case_a_wcrt" in result.details
        assert "case_b_wcrt" in result.details
        assert result.wcrt == pytest.approx(
            max(
                result.details["case_a_wcrt"],
                result.details["case_b_wcrt"],
            )
        )

    def test_ls_blocking_no_worse_than_nls_for_victim(self, ts):
        # Marking 'a' LS can only reduce a's own bound (one blocker
        # instead of two) as long as case (b) does not dominate.
        options = AnalysisOptions(stop_at_deadline=False)
        nls = ProposedAnalysis(options).response_time(ts, ts.by_name("a"))
        marked = ts.with_ls_marks(["a"])
        ls = ProposedAnalysis(options).response_time(
            marked, marked.by_name("a")
        )
        assert ls.details["case_a_wcrt"] <= nls.wcrt + 1e-6


class TestVerdicts:
    def test_verdict_matches_full_analysis(self, ts):
        analysis = ProposedAnalysis()
        for marks in ((), ("a",), ("a", "b")):
            marked = ts.with_ls_marks(marks)
            for task in marked:
                full = analysis.response_time(marked, task).schedulable
                fast = analysis.verdict(marked, task)
                assert fast == full, (marks, task.name)

    def test_first_unschedulable_none_for_good_set(self, ts):
        assert ProposedAnalysis().first_unschedulable(ts) is None

    def test_first_unschedulable_finds_miss(self):
        ts = TaskSet.from_parameters(
            [
                ("tight", 1.0, 0.1, 0.1, 10.0, 1.5),
                ("heavy", 8.0, 0.8, 0.8, 40.0, 40.0),
            ]
        )
        miss = ProposedAnalysis().first_unschedulable(ts)
        assert miss is not None and miss.name == "tight"

    def test_is_schedulable_utilization_short_circuit(self):
        overload = TaskSet.from_parameters(
            [
                ("x", 9.0, 0.5, 0.5, 10.0, 10.0),
                ("y", 5.0, 0.5, 0.5, 10.0, 10.0),
            ]
        )
        assert not ProposedAnalysis().is_schedulable(overload)

    def test_requires_membership(self, ts, single_task_set):
        with pytest.raises(ModelError):
            ProposedAnalysis().response_time(ts, single_task_set[0])
