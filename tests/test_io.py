"""Unit tests for task-set serialisation."""

import pytest

from repro.errors import ModelError
from repro.io import (
    load_taskset,
    save_taskset,
    taskset_from_csv,
    taskset_from_json,
    taskset_to_csv,
    taskset_to_json,
)
from repro.model.task import Task
from repro.model.taskset import TaskSet


@pytest.fixture
def ts():
    return TaskSet(
        [
            Task.sporadic("a", 1.0, 10.0, deadline=8.0, copy_in=0.2,
                          copy_out=0.3, priority=0, latency_sensitive=True,
                          footprint=4096),
            Task.sporadic("b", 2.0, 20.0, deadline=18.0, copy_in=0.4,
                          copy_out=0.4, priority=1),
        ]
    )


class TestCsv:
    def test_round_trip_parameters(self, ts):
        back = taskset_from_csv(taskset_to_csv(ts))
        for name in ("a", "b"):
            original, loaded = ts.by_name(name), back.by_name(name)
            assert loaded.exec_time == original.exec_time
            assert loaded.copy_in == original.copy_in
            assert loaded.period == original.period
            assert loaded.deadline == original.deadline

    def test_csv_does_not_carry_ls_marks(self, ts):
        back = taskset_from_csv(taskset_to_csv(ts))
        assert not back.by_name("a").latency_sensitive

    def test_missing_columns(self):
        with pytest.raises(ModelError):
            taskset_from_csv("name,wcet\na,1\n")

    def test_malformed_number(self):
        with pytest.raises(ModelError):
            taskset_from_csv("name,C,l,u,T,D\na,soon,0,0,10,9\n")

    def test_empty_body(self):
        with pytest.raises(ModelError):
            taskset_from_csv("name,C,l,u,T,D\n")


class TestJson:
    def test_lossless_round_trip(self, ts):
        back = taskset_from_json(taskset_to_json(ts))
        assert back == ts  # Task equality covers all compared fields
        assert back.by_name("a").latency_sensitive
        assert back.by_name("a").footprint == 4096

    def test_defaults_for_optional_fields(self):
        text = (
            '{"tasks": [{"name": "x", "exec_time": 1.0, "period": 10.0,'
            ' "deadline": 9.0, "priority": 0}]}'
        )
        ts = taskset_from_json(text)
        assert ts.by_name("x").copy_in == 0.0
        assert not ts.by_name("x").latency_sensitive

    def test_invalid_json(self):
        with pytest.raises(ModelError):
            taskset_from_json("{nope")

    def test_missing_tasks_key(self):
        with pytest.raises(ModelError):
            taskset_from_json('{"jobs": []}')

    def test_missing_required_field(self):
        with pytest.raises(ModelError):
            taskset_from_json('{"tasks": [{"name": "x"}]}')


class TestFiles:
    def test_save_load_csv(self, ts, tmp_path):
        path = tmp_path / "set.csv"
        save_taskset(ts, path)
        assert len(load_taskset(path)) == 2

    def test_save_load_json(self, ts, tmp_path):
        path = tmp_path / "set.json"
        save_taskset(ts, path)
        assert load_taskset(path) == ts

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_taskset(tmp_path / "ghost.csv")
