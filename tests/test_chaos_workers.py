"""Chaos: worker death, pool recovery, requeue, probe, quarantine.

The ``worker.death`` site kills the process evaluating a (point, task
set) unit — ``exit`` via ``os._exit`` (the pool breaks, taking every
in-flight unit's future with it), ``raise`` via an unexpected
non-Repro exception. The engine's contract:

* a unit whose worker died once is requeued (attempt + 1) and, being
  deterministic, merges bit-identically — the sweep equals the
  fault-free sequential run;
* a unit that kills workers twice is quarantined into the failure
  ledger (``WorkerCrashError`` per protocol) without contaminating any
  other unit;
* unexpected worker exceptions are never silently swallowed: ledgered
  under the lenient policies, propagated under RAISE, and
  KeyboardInterrupt/SystemExit always propagate.
"""

import dataclasses

import pytest

from repro.errors import WorkerCrashError
from repro.experiments import ExperimentConfig, SweepPoint, run_experiment
from repro.faults import FaultPlan, FaultSpec
from repro.generator.taskset_gen import GenerationConfig
from repro.obs import read_trace


@pytest.fixture
def config():
    points = tuple(
        SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
        for u in (0.2, 0.4)
    )
    return ExperimentConfig(
        name="chaos-workers",
        x_label="U",
        points=points,
        sets_per_point=2,
        seed=11,
        method="closed_form",
    )


def _identical(a, b):
    assert [p.x for p in a.points] == [p.x for p in b.points]
    for pa, pb in zip(a.points, b.points):
        assert pa.ratios == pb.ratios
        assert pa.failures == pb.failures
        assert dict(pa.analysis_stats) == dict(pb.analysis_stats)


class TestDeathOnce:
    def test_requeued_unit_merges_bit_identically(self, config, tmp_path):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=1, unit=0,
                    attempt=0,
                ),
            ),
            name="death-once",
        )
        trace = tmp_path / "trace.jsonl"
        result = run_experiment(
            config, jobs=2, fault_plan=plan, trace_path=str(trace)
        )
        _identical(result, baseline)
        events = read_trace(trace)
        names = [e["name"] for e in events]
        assert "worker.pool_broken" in names
        assert "worker.requeued" in names
        # The worker's own fault event died with it; the parent
        # synthesised the proof from the plan.
        deaths = [e for e in events if e["name"] == "fault.worker.death"]
        assert len(deaths) == 1
        assert deaths[0]["point"] == 1 and deaths[0]["unit"] == 0
        assert deaths[0]["f"]["synthesized"] is True

    def test_raise_mode_retries_then_succeeds(self, config):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="raise", point=0, unit=1,
                    attempt=0,
                ),
            ),
            name="raise-once",
        )
        result = run_experiment(config, jobs=2, fault_plan=plan)
        _identical(result, baseline)


class TestQuarantine:
    def test_persistent_killer_is_quarantined(self, config):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=1, unit=0,
                    times=None,
                ),
            ),
            name="death-always",
        )
        result = run_experiment(config, jobs=2, fault_plan=plan)
        # The poisoned unit is ledgered, one record per protocol...
        ledger = result.points[1].failures
        assert {f.error_type for f in ledger} == {"WorkerCrashError"}
        assert {f.taskset_index for f in ledger} == {0}
        assert len(ledger) == len(config.protocols)
        assert ledger[0].taskset_digest  # reproducible offline
        # ...and every other unit is untouched.
        assert result.points[0].ratios == baseline.points[0].ratios
        assert result.points[1].sets_evaluated == config.sets_per_point

    def test_quarantine_counts_unschedulable_by_default(self, config):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=0, unit=0,
                    times=None,
                ),
            ),
            name="death-always",
        )
        counted = run_experiment(config, jobs=2, fault_plan=plan)
        skipped = run_experiment(
            config, jobs=2, fault_plan=plan, failure_policy="skip"
        )
        # COUNT_UNSCHEDULABLE keeps the unit in the denominator; SKIP
        # drops it — the conservative ratio can only be lower.
        for protocol in config.protocols:
            assert (
                counted.points[0].ratios[protocol]
                <= skipped.points[0].ratios[protocol]
            )

    def test_raise_policy_propagates_worker_crash(self, config):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=0, unit=0,
                    times=None,
                ),
            ),
            name="death-always",
        )
        with pytest.raises(WorkerCrashError, match="quarantined"):
            run_experiment(
                config, jobs=2, fault_plan=plan, failure_policy="raise"
            )

    def test_raise_mode_exception_is_ledgered_not_dropped(self, config):
        # An unexpected exception escaping a worker twice must land in
        # the ledger (satellite: the old engine swallowed it into a
        # bare BaseException re-raise with no record).
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="raise", point=0, unit=0,
                    times=None,
                ),
            ),
            name="raise-always",
        )
        result = run_experiment(config, jobs=2, fault_plan=plan)
        ledger = result.points[0].failures
        assert {f.error_type for f in ledger} == {"RuntimeError"}
        assert {f.taskset_index for f in ledger} == {0}
        assert "injected unexpected worker error" in ledger[0].message

    def test_raise_mode_propagates_under_raise_policy(self, config):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="raise", point=0, unit=0,
                ),
            ),
            name="raise-once",
        )
        with pytest.raises(RuntimeError, match="injected unexpected"):
            run_experiment(
                config, jobs=2, fault_plan=plan, failure_policy="raise"
            )


class TestCheckpointDuringRecovery:
    def test_checkpoint_survives_crash_recovery(self, config, tmp_path):
        from repro.experiments.persistence import load_checkpoint

        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=0, unit=1,
                    attempt=0,
                ),
            ),
            name="death-once",
        )
        result = run_experiment(
            config, jobs=2, fault_plan=plan, checkpoint_path=str(path)
        )
        stored = load_checkpoint(path, config)
        assert stored.keys() == {0, 1}
        assert stored[0].ratios == result.points[0].ratios


class TestSequentialEquivalence:
    def test_injected_parallel_equals_injected_sequential(self, config):
        # Unit-scoped budgets make the *injected* runs equivalent too:
        # a solver fault plan fires identically under jobs=1 and jobs=2.
        from repro.analysis.interface import AnalysisOptions
        from repro.milp import ResilienceConfig

        config = dataclasses.replace(config, method="milp", protocols=("proposed",))
        options = AnalysisOptions(
            resilience=ResilienceConfig(backoff_base=0.0, backoff_jitter=0.0)
        )
        plan = FaultPlan(
            specs=(FaultSpec(site="solver.fault", mode="crash"),),
            name="crash-per-unit",
        )
        sequential = run_experiment(config, options=options, fault_plan=plan)
        parallel = run_experiment(
            config, options=options, fault_plan=plan, jobs=2
        )
        _identical(parallel, sequential)
