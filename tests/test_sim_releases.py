"""Unit tests for release-plan generation."""

import pytest

from repro.errors import SimulationError
from repro.sim.releases import (
    ReleasePlan,
    periodic_plan,
    sporadic_plan,
    synchronous_plan,
)


class TestReleasePlan:
    def test_rejects_unsorted(self):
        with pytest.raises(SimulationError):
            ReleasePlan(releases={"a": (5.0, 1.0)}, horizon=10.0)

    def test_rejects_negative_release(self):
        with pytest.raises(SimulationError):
            ReleasePlan(releases={"a": (-1.0,)}, horizon=10.0)

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(SimulationError):
            ReleasePlan(releases={}, horizon=0.0)

    def test_total_jobs(self):
        plan = ReleasePlan(
            releases={"a": (0.0, 5.0), "b": (1.0,)}, horizon=10.0
        )
        assert plan.total_jobs == 3

    def test_for_task_missing_returns_empty(self):
        plan = ReleasePlan(releases={"a": (0.0,)}, horizon=10.0)
        assert plan.for_task("zzz") == ()


class TestPeriodicPlans:
    def test_periodic_counts(self, tiny_taskset):
        plan = periodic_plan(tiny_taskset, horizon=100.0)
        assert len(plan.for_task("hi")) == 10  # T=10 in [0, 100)
        assert len(plan.for_task("mid")) == 5
        assert len(plan.for_task("lo")) == 2

    def test_phases_shift_releases(self, tiny_taskset):
        plan = periodic_plan(tiny_taskset, horizon=50.0, phases={"hi": 3.0})
        assert plan.for_task("hi")[0] == 3.0

    def test_negative_phase_rejected(self, tiny_taskset):
        with pytest.raises(SimulationError):
            periodic_plan(tiny_taskset, 50.0, phases={"hi": -1.0})

    def test_synchronous_is_zero_phase(self, tiny_taskset):
        plan = synchronous_plan(tiny_taskset, horizon=40.0)
        for task in tiny_taskset:
            assert plan.for_task(task.name)[0] == 0.0


class TestSporadicPlans:
    def test_respects_min_interarrival(self, tiny_taskset, rng):
        plan = sporadic_plan(tiny_taskset, 500.0, rng)
        for task in tiny_taskset:
            times = plan.for_task(task.name)
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(g >= task.period - 1e-9 for g in gaps)

    def test_reproducible(self, tiny_taskset):
        import numpy as np

        p1 = sporadic_plan(tiny_taskset, 200.0, np.random.default_rng(5))
        p2 = sporadic_plan(tiny_taskset, 200.0, np.random.default_rng(5))
        assert p1.releases == p2.releases

    def test_rejects_negative_extra(self, tiny_taskset, rng):
        with pytest.raises(SimulationError):
            sporadic_plan(tiny_taskset, 100.0, rng, max_extra_fraction=-0.5)
