"""Edge cases across the stack: zero memory phases, ties, extremes."""

import numpy as np
import pytest

from repro.analysis.schedulability import analyze_taskset, is_schedulable
from repro.curves import PeriodicJitterArrival
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import sporadic_plan
from repro.sim.validate import check_trace


class TestZeroMemoryPhases:
    """gamma = 0: the protocols degenerate to pure CPU pipelines."""

    @pytest.fixture
    def ts(self):
        return TaskSet.from_parameters(
            [
                ("a", 1.0, 0.0, 0.0, 10.0, 9.0),
                ("b", 2.0, 0.0, 0.0, 20.0, 18.0),
                ("c", 3.0, 0.0, 0.0, 40.0, 36.0),
            ]
        )

    def test_all_protocols_analyze(self, ts):
        for protocol in ("nps", "nps_carry", "wasly", "proposed"):
            result = analyze_taskset(ts, protocol)
            for r in result.results:
                assert r.wcrt >= r.task.exec_time

    def test_nps_equals_pure_execution_costs(self, ts):
        result = analyze_taskset(ts, "nps")
        # a: blocked by c (3.0) + own 1.0
        assert result.result_for("a").wcrt == pytest.approx(4.0)

    def test_simulators_run(self, ts, rng):
        plan = sporadic_plan(ts, 300.0, rng)
        for sim_cls in (NpsSimulator, WaslySimulator, ProposedSimulator):
            trace = sim_cls(ts).run(plan)
            check_trace(trace)
            assert len(trace.completed_jobs()) == len(trace.jobs)


class TestDegenerateShapes:
    def test_single_task_everywhere(self, single_task_set):
        for protocol in ("nps", "nps_carry", "wasly", "proposed"):
            assert is_schedulable(single_task_set, protocol), protocol

    def test_two_identical_period_tasks(self):
        ts = TaskSet.from_parameters(
            [
                ("a", 1.0, 0.1, 0.1, 10.0, 9.0),
                ("b", 1.0, 0.1, 0.1, 10.0, 9.5),
            ]
        )
        for protocol in ("nps", "wasly", "proposed"):
            assert is_schedulable(ts, protocol), protocol

    def test_many_tiny_tasks(self):
        ts = TaskSet.from_parameters(
            [
                (f"t{i}", 0.1, 0.01, 0.01, 10.0 + i, 9.0 + i)
                for i in range(12)
            ]
        )
        assert is_schedulable(ts, "proposed", method="closed_form")

    def test_memory_dominated_task(self):
        # Copy phases much larger than execution: DMA-bound workload.
        ts = TaskSet.from_parameters(
            [
                ("mem", 0.5, 3.0, 3.0, 20.0, 18.0),
                ("cpu", 2.0, 0.1, 0.1, 15.0, 14.0),
            ]
        )
        result = analyze_taskset(ts, "proposed")
        for r in result.results:
            assert r.wcrt >= r.task.total_cost - 1e-9

    def test_jittery_arrivals_through_proposed(self):
        jittery = Task(
            name="jit",
            exec_time=1.0,
            copy_in=0.2,
            copy_out=0.2,
            deadline=9.0,
            priority=0,
            arrivals=PeriodicJitterArrival(10.0, jitter=4.0),
        )
        steady = Task.sporadic(
            "steady", 2.0, 20.0, deadline=18.0, copy_in=0.3, copy_out=0.3,
            priority=1,
        )
        ts = TaskSet([jittery, steady])
        result = analyze_taskset(ts, "proposed")
        # The jittery task contributes eta(t)+1 >= 2 interfering jobs
        # to 'steady' even for small windows.
        assert result.result_for("steady").wcrt > steady.total_cost

    def test_deadline_equal_to_cost(self):
        ts = TaskSet(
            [
                Task.sporadic(
                    "exact", 2.0, 20.0, deadline=3.0, copy_in=0.5,
                    copy_out=0.5, priority=0,
                )
            ]
        )
        # Alone, the task needs l + u (pipeline fill) + max(C, l) + u:
        # more than its serialized cost -> not schedulable at D = cost
        # under the interval protocols, but schedulable under NPS.
        assert is_schedulable(ts, "nps")
        assert not is_schedulable(ts, "proposed")

    def test_priority_gaps_allowed(self):
        ts = TaskSet(
            [
                Task.sporadic("a", 1.0, 10.0, deadline=9.0, priority=5),
                Task.sporadic("b", 2.0, 20.0, deadline=18.0, priority=40),
            ]
        )
        assert [t.name for t in ts] == ["a", "b"]
        assert is_schedulable(ts, "proposed")


class TestLongHorizonStability:
    def test_dense_workload_simulation(self, rng):
        ts = TaskSet.from_parameters(
            [
                ("a", 2.0, 0.4, 0.4, 10.0, 10.0),
                ("b", 4.0, 0.8, 0.8, 20.0, 20.0),
            ]
        ).with_ls_marks(["a"])
        plan = sporadic_plan(ts, 2000.0, rng, max_extra_fraction=0.1)
        trace = ProposedSimulator(ts).run(plan)
        check_trace(trace)
        # ~0.84 utilisation incl. memory: everything must still drain.
        assert len(trace.completed_jobs()) == len(trace.jobs)
