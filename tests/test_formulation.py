"""Unit tests for the delay-MILP constraint builder."""

import sys

import pytest

import repro.analysis.proposed.formulation as _formulation
from repro.analysis.proposed.closed_form import ls_case_b_bound
from repro.analysis.proposed.formulation import (
    AnalysisMode,
    build_delay_milp,
)
from repro.errors import AnalysisError
from repro.milp import HighsBackend, SolveStatus
from repro.milp.audit import audit_delay_milp
from repro.model.taskset import TaskSet


@pytest.fixture(autouse=True)
def _audit_every_model(monkeypatch):
    """Audit every model this module builds, structure and census.

    Wraps ``build_delay_milp`` so each successful build is run through
    :func:`repro.milp.audit.audit_delay_milp` before the test sees it —
    any structural defect or census drift fails the building test with
    the full audit report.
    """
    real = _formulation.build_delay_milp

    def audited(taskset, task, *args, **kwargs):
        built = real(taskset, task, *args, **kwargs)
        report = audit_delay_milp(built, taskset, task)
        assert report.ok, report.render()
        return built

    monkeypatch.setattr(_formulation, "build_delay_milp", audited)
    # The module-level name imported above must be wrapped too.
    monkeypatch.setattr(sys.modules[__name__], "build_delay_milp", audited)


@pytest.fixture
def mixed_ts():
    ts = TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 8.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 15.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 30.0),
            ("d", 4.0, 0.5, 0.5, 80.0, 60.0),
        ]
    )
    return ts.with_ls_marks(["a", "c"])


def _solve(built):
    return built.model.solve(HighsBackend())


class TestModeDispatch:
    def test_nls_mode_rejects_ls_task(self, mixed_ts):
        task = mixed_ts.by_name("c")  # LS
        with pytest.raises(AnalysisError):
            build_delay_milp(mixed_ts, task, 10.0, AnalysisMode.NLS)

    def test_ls_mode_rejects_nls_task(self, mixed_ts):
        task = mixed_ts.by_name("b")  # NLS
        with pytest.raises(AnalysisError):
            build_delay_milp(mixed_ts, task, 10.0, AnalysisMode.LS_CASE_A)
        with pytest.raises(AnalysisError):
            build_delay_milp(mixed_ts, task, 10.0, AnalysisMode.LS_CASE_B)

    def test_wasly_mode_accepts_anyone(self, mixed_ts):
        for name in ("b", "c"):
            built = build_delay_milp(
                mixed_ts, mixed_ts.by_name(name), 10.0, AnalysisMode.WASLY
            )
            assert built.mode is AnalysisMode.WASLY


class TestStructure:
    def test_wasly_has_no_ls_machinery(self, mixed_ts):
        built = build_delay_milp(
            mixed_ts, mixed_ts.by_name("b"), 10.0, AnalysisMode.WASLY
        )
        assert built.stats["LE_vars"] == 0
        assert built.stats["CL_vars"] == 0

    def test_nls_mode_has_ls_vars_for_ls_tasks(self, mixed_ts):
        built = build_delay_milp(
            mixed_ts, mixed_ts.by_name("b"), 10.0, AnalysisMode.NLS
        )
        assert built.stats["LE_vars"] > 0
        assert built.stats["CL_vars"] > 0

    def test_no_cancellations_without_ls_tasks(self):
        plain = TaskSet.from_parameters(
            [
                ("x", 1.0, 0.1, 0.1, 10.0, 9.0),
                ("y", 2.0, 0.2, 0.2, 20.0, 18.0),
            ]
        )
        built = build_delay_milp(
            plain, plain.by_name("x"), 5.0, AnalysisMode.NLS
        )
        assert built.stats["CL_vars"] == 0
        assert built.stats["LE_vars"] == 0

    def test_interval_count_recorded(self, mixed_ts):
        built = build_delay_milp(
            mixed_ts, mixed_ts.by_name("d"), 25.0, AnalysisMode.NLS
        )
        assert built.num_intervals >= 4
        assert len(built.deltas) == built.num_intervals


class TestSolutions:
    def test_nls_solves_optimal(self, mixed_ts):
        built = build_delay_milp(
            mixed_ts, mixed_ts.by_name("b"), 10.0, AnalysisMode.NLS
        )
        sol = _solve(built)
        assert sol.status is SolveStatus.OPTIMAL
        # Delay at least covers tau_i's own copy-in and execution.
        task = mixed_ts.by_name("b")
        assert sol.objective >= task.copy_in + task.exec_time - 1e-9

    def test_single_task_exact_value(self, single_task_set):
        # I_0: copy-in l in parallel with a pre-window copy-out (<= u);
        # I_1: execution C in parallel with at most one copy-in (<= l).
        task = single_task_set[0]
        built = build_delay_milp(
            single_task_set, task, task.copy_in, AnalysisMode.NLS
        )
        sol = _solve(built)
        expected = (task.copy_in + task.copy_out) + max(
            task.exec_time, task.copy_in
        )
        assert sol.objective == pytest.approx(expected)

    def test_wasly_bound_at_least_nls(self, mixed_ts):
        # Two blocking intervals ([3]) can only lengthen the delay
        # relative to the same window under the proposed protocol.
        task = mixed_ts.by_name("b")
        nls = _solve(build_delay_milp(mixed_ts, task, 12.0, AnalysisMode.NLS))
        was = _solve(
            build_delay_milp(mixed_ts, task, 12.0, AnalysisMode.WASLY)
        )
        # NLS mode allows urgent LS interference the WASLY mode lacks,
        # so no strict order holds in general; but for the highest
        # utilisation blockers here WASLY >= NLS - small tolerance.
        assert was.objective >= nls.objective - (
            mixed_ts.max_copy_in() + max(t.exec_time for t in mixed_ts)
        )

    def test_objective_monotone_in_window(self, mixed_ts):
        task = mixed_ts.by_name("d")
        small = _solve(
            build_delay_milp(mixed_ts, task, 5.0, AnalysisMode.NLS)
        )
        large = _solve(
            build_delay_milp(mixed_ts, task, 60.0, AnalysisMode.NLS)
        )
        assert large.objective >= small.objective - 1e-9


class TestCaseB:
    def test_case_b_matches_closed_form(self, mixed_ts):
        task = mixed_ts.by_name("c")
        built = build_delay_milp(mixed_ts, task, 0.0, AnalysisMode.LS_CASE_B)
        sol = _solve(built)
        assert sol.status is SolveStatus.OPTIMAL
        closed = ls_case_b_bound(mixed_ts, task)
        assert sol.objective + task.copy_out == pytest.approx(closed)

    def test_case_b_single_ls_task(self):
        ts = TaskSet.from_parameters(
            [("solo", 3.0, 1.0, 0.5, 20.0, 15.0)]
        ).with_ls_marks(["solo"])
        task = ts.by_name("solo")
        built = build_delay_milp(ts, task, 0.0, AnalysisMode.LS_CASE_B)
        sol = _solve(built)
        closed = ls_case_b_bound(ts, task)
        assert sol.objective + task.copy_out == pytest.approx(closed)

    def test_case_b_has_two_intervals(self, mixed_ts):
        built = build_delay_milp(
            mixed_ts, mixed_ts.by_name("a"), 0.0, AnalysisMode.LS_CASE_B
        )
        assert built.num_intervals == 2
