"""The sweep service: wire framing, digests, equivalence, recovery.

The service coordinator must be a *transport*, never a semantics
layer: every sweep it processes has to equal the sequential engine
bit-for-bit (ratios, ledger, analysis counters), whether units were
evaluated by socket-connected workers, served from the persistent
unit store, resumed from a v1 or torn checkpoint, or requeued after a
worker died mid-unit. These tests pin that contract alongside the
``--jobs N`` equivalence matrix in ``test_parallel_sweep.py``.
"""

import dataclasses
import json
import multiprocessing
import os
import socket
import struct
import tempfile
import threading

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    SweepPoint,
    SweepResult,
    run_experiment,
)
from repro.experiments.config import figure2_config
from repro.experiments.persistence import (
    _config_to_dict,
    _point_to_dict,
    config_digest,
)
from repro.experiments.runner import sweep_stale_marker_dirs
from repro.experiments.units import unit_digest
from repro.faults import FaultPlan, FaultSpec
from repro.generator.taskset_gen import GenerationConfig
from repro.obs import read_trace
from repro.service import run_service_sweep, serve, submit_sweep
from repro.service.wire import (
    MAX_FRAME,
    WireError,
    encode_frame,
    recv_message,
    send_message,
)


def _reduced(inset: str, sets: int = 2, step: slice = slice(2, 5, 2)):
    config = figure2_config(inset, sets_per_point=sets, seed=2020)
    return dataclasses.replace(config, points=config.points[step])


def _identical(a: SweepResult, b: SweepResult) -> None:
    assert [p.x for p in a.points] == [p.x for p in b.points]
    for pa, pb in zip(a.points, b.points):
        assert pa.ratios == pb.ratios
        assert pa.failures == pb.failures
        assert pa.sets_evaluated == pb.sets_evaluated
        assert dict(pa.analysis_stats) == dict(pb.analysis_stats)


class TestWireFraming:
    def test_roundtrip_preserves_messages(self):
        a, b = socket.socketpair()
        messages = [
            {"type": "hello", "role": "worker", "pid": 1234},
            {"type": "unit", "sweep": "s0", "point": 3, "unit": 1,
             "attempt": 0},
        ]
        for message in messages:
            send_message(a, message)
        a.close()
        assert recv_message(b) == messages[0]
        assert recv_message(b) == messages[1]
        # Clean end-of-stream is None, not an error.
        assert recv_message(b) is None
        b.close()

    def test_mid_frame_cut_raises(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", 100) + b'{"type":')
        a.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_message(b)
        b.close()

    def test_oversized_announcement_rejected(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(WireError, match="exceeds"):
            recv_message(b)
        a.close()
        b.close()

    def test_untyped_payload_rejected(self):
        a, b = socket.socketpair()
        payload = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(WireError, match="typed message"):
            recv_message(b)
        a.close()
        b.close()

    def test_nan_never_crosses_the_wire(self):
        with pytest.raises(ValueError):
            encode_frame({"type": "result", "ratio": float("nan")})


class TestUnitDigest:
    """Content addressing: overlap where results provably coincide."""

    def test_widened_sweep_shares_prefix_digests(self):
        # Task set i comes from a sequential seeded stream, so drawing
        # more sets afterwards cannot change it: digests must overlap.
        base = _reduced("fig2a", sets=2)
        wide = dataclasses.replace(
            base, sets_per_point=3, name="renamed"
        )
        for point_index in range(len(base.points)):
            for taskset_index in range(2):
                assert unit_digest(
                    base, point_index, taskset_index, None,
                    "count_unschedulable",
                ) == unit_digest(
                    wide, point_index, taskset_index, None,
                    "count_unschedulable",
                )

    def test_semantic_inputs_change_the_digest(self):
        config = _reduced("fig2a")
        digest = unit_digest(config, 0, 0, None, "count_unschedulable")
        assert digest != unit_digest(
            config, 1, 0, None, "count_unschedulable"
        )
        assert digest != unit_digest(
            config, 0, 1, None, "count_unschedulable"
        )
        assert digest != unit_digest(config, 0, 0, None, "skip")
        reseeded = dataclasses.replace(config, seed=config.seed + 1)
        assert digest != unit_digest(
            reseeded, 0, 0, None, "count_unschedulable"
        )
        timed = AnalysisOptions(time_limit=5.0)
        assert digest != unit_digest(
            config, 0, 0, timed, "count_unschedulable"
        )

    def test_none_options_mean_the_defaults(self):
        config = _reduced("fig2a")
        assert unit_digest(
            config, 0, 0, None, "count_unschedulable"
        ) == unit_digest(
            config, 0, 0, AnalysisOptions(), "count_unschedulable"
        )


class TestServiceEquivalence:
    """Tentpole: service results are bit-identical to sequential."""

    def test_service_matches_sequential_bit_identically(self):
        config = _reduced("fig2a")
        sequential = run_experiment(config)
        service = run_service_sweep(config, workers=2)
        _identical(sequential, service)

    def test_failure_ledger_identical_through_the_wire(self):
        points = tuple(
            SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
            for u in (0.2, 0.4)
        )
        config = ExperimentConfig(
            name="svc-ledger",
            x_label="U",
            points=points,
            sets_per_point=3,
            seed=11,
            method="closed_form",
            ls_policy="bogus",
        )
        sequential = run_experiment(config)
        service = run_service_sweep(config, workers=2)
        _identical(sequential, service)
        assert sequential.failures  # the deterministic failure fired

    def test_raise_policy_propagates_to_the_submitter(self):
        points = (
            SweepPoint(0.2, GenerationConfig(n=3, utilization=0.2, gamma=0.1)),
        )
        config = ExperimentConfig(
            name="svc-boom",
            x_label="U",
            points=points,
            sets_per_point=2,
            seed=11,
            method="closed_form",
            ls_policy="bogus",
        )
        with pytest.raises(ExperimentError):
            run_service_sweep(config, workers=2, failure_policy="raise")

    def test_empty_denominator_ratios_cross_the_wire(self):
        # SKIP keeps failed evaluations out of ``attempted``; with
        # every evaluation failing the denominator is 0 and the ratio
        # is pinned to 0.0 — identically on both paths.
        points = (
            SweepPoint(0.2, GenerationConfig(n=3, utilization=0.2, gamma=0.1)),
        )
        config = ExperimentConfig(
            name="svc-empty",
            x_label="U",
            points=points,
            sets_per_point=2,
            seed=11,
            method="closed_form",
            ls_policy="bogus",
            protocols=("proposed",),
        )
        sequential = run_experiment(config, failure_policy="skip")
        service = run_service_sweep(
            config, workers=2, failure_policy="skip"
        )
        _identical(sequential, service)
        assert service.points[0].ratios == {"proposed": 0.0}
        assert service.series("proposed") == [(0.2, 0.0)]


class TestAdvantageAndSeries:
    """Satellite: ratio accessors around empty denominators."""

    def _config(self, protocols=("proposed", "nps")):
        points = (
            SweepPoint(0.2, GenerationConfig(n=3, utilization=0.2, gamma=0.1)),
        )
        return ExperimentConfig(
            name="adv",
            x_label="U",
            points=points,
            sets_per_point=2,
            seed=11,
            method="closed_form",
            ls_policy="bogus",
            protocols=protocols,
        )

    def test_advantage_with_zeroed_protocol(self):
        result = run_experiment(self._config(), failure_policy="skip")
        assert result.points[0].ratios["proposed"] == 0.0
        nps = result.points[0].ratios["nps"]
        assert result.advantage("proposed", "nps") == 0.0 - nps
        assert result.advantage("nps", "proposed") == nps

    def test_advantage_on_empty_sweep_raises(self):
        empty = SweepResult(config=self._config(), points=())
        with pytest.raises(ExperimentError, match="empty sweep"):
            empty.advantage("proposed", "nps")
        assert empty.series("proposed") == []
        assert empty.x_values == []
        assert empty.failures == ()

    def test_advantage_rejects_unknown_protocols(self):
        result = run_experiment(self._config(), failure_policy="skip")
        with pytest.raises(ExperimentError, match="unknown protocol"):
            result.advantage("proposed", "edf")


class TestServiceStore:
    """Tentpole: the pre-dispatch digest probe against the unit store."""

    def test_warm_repeat_is_served_entirely_from_store(self, tmp_path):
        config = _reduced("fig2a")
        cache = tmp_path / "store.sqlite"
        cold = run_service_sweep(
            config,
            workers=2,
            cache_path=str(cache),
            checkpoint_dir=str(tmp_path / "cold-ckpt"),
        )
        assert any(
            dict(p.analysis_stats).get("unit_store.hits", 0) == 0
            for p in cold.points
        )
        # Fresh checkpoint dir: nothing resumes, so every unit has to
        # come from the store — zero analysis work of any kind.
        warm = run_service_sweep(
            config,
            workers=2,
            cache_path=str(cache),
            checkpoint_dir=str(tmp_path / "warm-ckpt"),
        )
        assert [p.ratios for p in warm.points] == [
            p.ratios for p in cold.points
        ]
        assert [p.failures for p in warm.points] == [
            p.failures for p in cold.points
        ]
        for point in warm.points:
            stats = dict(point.analysis_stats)
            assert stats.pop("unit_store.hits") == config.sets_per_point
            assert all(value == 0 for value in stats.values())

    def test_widened_sweep_serves_the_shared_prefix(self, tmp_path):
        config = _reduced("fig2a", sets=2)
        cache = tmp_path / "store.sqlite"
        run_service_sweep(config, workers=2, cache_path=str(cache))
        widened = dataclasses.replace(config, sets_per_point=3)
        result = run_service_sweep(
            widened, workers=2, cache_path=str(cache)
        )
        sequential = run_experiment(widened)
        assert [p.ratios for p in result.points] == [
            p.ratios for p in sequential.points
        ]
        for point in result.points:
            # Task sets 0..1 are served; only set 2 is evaluated.
            assert dict(point.analysis_stats)["unit_store.hits"] == 2
            assert point.sets_evaluated == 3

    def test_fault_plan_disables_the_store_tier(self, tmp_path):
        # A chaos run must neither serve stale results nor poison the
        # store with fault-shaped ones.
        config = _reduced("fig2a")
        cache = tmp_path / "store.sqlite"
        run_service_sweep(config, workers=2, cache_path=str(cache))
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=0, unit=0,
                    attempt=0,
                ),
            ),
            name="svc-no-store",
        )
        chaotic = run_service_sweep(
            config, workers=2, cache_path=str(cache), fault_plan=plan
        )
        for point in chaotic.points:
            assert dict(point.analysis_stats).get(
                "unit_store.hits", 0
            ) == 0


class TestServiceChaos:
    """Worker death and network partition through the socket path."""

    @pytest.fixture
    def config(self):
        points = tuple(
            SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
            for u in (0.2, 0.4)
        )
        return ExperimentConfig(
            name="svc-chaos",
            x_label="U",
            points=points,
            sets_per_point=2,
            seed=11,
            method="closed_form",
        )

    def test_worker_death_mid_sweep_is_requeued(self, config, tmp_path):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=1, unit=0,
                    attempt=0,
                ),
            ),
            name="svc-death-once",
        )
        trace = tmp_path / "svc.trace.jsonl"
        result = run_service_sweep(
            config,
            workers=2,
            fault_plan=plan,
            trace_path=str(trace),
        )
        _identical(result, baseline)
        names = [e["name"] for e in read_trace(trace)]
        assert "service.worker.left" in names
        assert "worker.requeued" in names
        assert names.count("service.worker.joined") >= 2

    def test_injected_disconnect_is_requeued(self, config):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="service.disconnect", mode="drop", point=0,
                    unit=1, attempt=0,
                ),
            ),
            name="svc-partition",
        )
        result = run_service_sweep(config, workers=2, fault_plan=plan)
        _identical(result, baseline)

    def test_persistent_killer_is_quarantined(self, config):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.death", mode="exit", point=1, unit=0,
                    times=None,
                ),
            ),
            name="svc-death-always",
        )
        result = run_service_sweep(config, workers=2, fault_plan=plan)
        ledger = result.points[1].failures
        assert {f.error_type for f in ledger} == {"WorkerCrashError"}
        assert {f.taskset_index for f in ledger} == {0}
        assert result.points[1].sets_evaluated == config.sets_per_point


class TestServiceResume:
    """Checkpoint recovery through the service path (v1 and torn)."""

    def test_v1_checkpoint_resumes_and_upgrades(self, tmp_path):
        config = _reduced("fig2a")
        baseline = run_experiment(config)
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        path = ckpt_dir / f"{config_digest(config)}.json"
        path.write_text(json.dumps({
            "checkpoint_version": 1,
            "config_digest": config_digest(config),
            "config": _config_to_dict(config),
            "points": {"0": _point_to_dict(baseline.points[0])},
        }))
        result = run_service_sweep(
            config, workers=2, checkpoint_dir=str(ckpt_dir)
        )
        _identical(result, baseline)
        saved = json.loads(path.read_text())
        assert saved["checkpoint_version"] == 2
        assert set(saved["points"]) == {"0", "1"}

    def test_torn_checkpoint_heals_to_a_full_recompute(self, tmp_path):
        config = _reduced("fig2a")
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        first = run_service_sweep(
            config, workers=2, checkpoint_dir=str(ckpt_dir)
        )
        path = ckpt_dir / f"{config_digest(config)}.json"
        content = path.read_text()
        path.write_text(content[: len(content) // 2])
        again = run_service_sweep(
            config, workers=2, checkpoint_dir=str(ckpt_dir)
        )
        _identical(first, again)
        assert json.loads(path.read_text())["checkpoint_version"] == 2


def _exit_immediately() -> None:
    """Child that dies at once: its PID becomes a dead owner stamp."""


class TestStaleMarkerSweep:
    """Satellite: orphaned inflight-marker dirs are reaped on startup."""

    class _Writer:
        def __init__(self):
            self.events = []

        def emit(self, name, **fields):
            self.events.append((name, fields))

    def _owned_dir(self, root, name, owner) -> None:
        path = root / name
        path.mkdir()
        if owner is not None:
            (path / ".owner").write_text(str(owner), encoding="utf-8")

    def test_only_dead_owners_are_reaped(self, tmp_path, monkeypatch):
        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        child = multiprocessing.Process(target=_exit_immediately)
        child.start()
        child.join()
        self._owned_dir(tmp_path, "repro-inflight-dead", child.pid)
        self._owned_dir(tmp_path, "repro-inflight-live", os.getpid())
        self._owned_dir(tmp_path, "repro-inflight-orphan", None)
        self._owned_dir(tmp_path, "unrelated-dir", child.pid)
        writer = self._Writer()
        assert sweep_stale_marker_dirs(writer) == 1
        assert not (tmp_path / "repro-inflight-dead").exists()
        assert (tmp_path / "repro-inflight-live").exists()
        # Unattributable and foreign directories are never touched.
        assert (tmp_path / "repro-inflight-orphan").exists()
        assert (tmp_path / "unrelated-dir").exists()
        assert writer.events == [("worker.markers_swept", {"dirs": 1})]

    def test_no_event_when_nothing_swept(self, tmp_path, monkeypatch):
        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        self._owned_dir(tmp_path, "repro-inflight-live", os.getpid())
        writer = self._Writer()
        assert sweep_stale_marker_dirs(writer) == 0
        assert writer.events == []


class TestServeSubmitLoop:
    """End-to-end client path: one server, two submits, warm second."""

    def test_second_submit_is_served_from_store(self, tmp_path):
        config = _reduced("fig2a")
        ready = threading.Event()
        box = {}

        def on_ready(port):
            box["port"] = port
            ready.set()

        thread = threading.Thread(
            target=serve,
            kwargs={
                "workers": 2,
                "cache_path": str(tmp_path / "store.sqlite"),
                "checkpoint_dir": str(tmp_path / "ckpt-a"),
                "max_sweeps": 2,
                "ready": on_ready,
            },
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=60), "service never became ready"

        seen_points = []
        cold = submit_sweep(
            "127.0.0.1",
            box["port"],
            config,
            progress=lambda p: seen_points.append(p["x"]),
        )
        assert sorted(seen_points) == [p.x for p in cold.points]

        # Second, identical submit: same store, fresh checkpoint dir
        # is irrelevant here (the coordinator keeps one dir) — the
        # checkpoint resume answers it before the store is consulted,
        # which is still a zero-solve warm path end to end.
        unit_counts = []
        warm = submit_sweep(
            "127.0.0.1",
            box["port"],
            config,
            unit_progress=lambda d, t, s: unit_counts.append((d, t, s)),
        )
        assert [p.ratios for p in warm.points] == [
            p.ratios for p in cold.points
        ]
        thread.join(timeout=60)
        assert not thread.is_alive()
