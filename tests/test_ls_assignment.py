"""Unit tests for the LS-marking policies (Sec. VI)."""

import pytest

from repro.analysis.ls_assignment import (
    LS_POLICIES,
    all_ls_assignment,
    all_nls_assignment,
    greedy_ls_assignment,
    tightest_deadline_assignment,
)
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.errors import AnalysisError
from repro.model.taskset import TaskSet


@pytest.fixture
def easy_ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
        ]
    )


@pytest.fixture
def ls_fixable_ts():
    """Schedulable only once the tight task is marked LS.

    'tight' suffers two blocking intervals as NLS (both heavies), which
    busts its deadline; as LS a single blocker fits.
    """
    return TaskSet.from_parameters(
        [
            ("tight", 1.0, 0.1, 0.1, 40.0, 7.2),
            ("heavy1", 5.0, 0.5, 0.5, 50.0, 50.0),
            ("heavy2", 5.0, 0.5, 0.5, 60.0, 60.0),
        ]
    )


class TestGreedy:
    def test_no_marks_needed(self, easy_ts):
        out = greedy_ls_assignment(easy_ts)
        assert out.schedulable
        assert out.ls_names == frozenset()
        assert out.rounds == 1
        assert out.final_result is not None

    def test_marks_fixable_task(self, ls_fixable_ts):
        out = greedy_ls_assignment(ls_fixable_ts)
        assert out.schedulable
        assert out.ls_names == frozenset({"tight"})
        assert out.rounds == 2
        assert out.history == (frozenset(), frozenset({"tight"}))

    def test_verdict_only_mode(self, ls_fixable_ts):
        out = greedy_ls_assignment(ls_fixable_ts, collect_results=False)
        assert out.schedulable
        assert out.final_result is None
        assert out.ls_names == frozenset({"tight"})

    def test_unschedulable_terminates(self):
        hopeless = TaskSet.from_parameters(
            [
                ("x", 1.0, 0.1, 0.1, 10.0, 1.05),
                ("y", 8.0, 0.8, 0.8, 20.0, 20.0),
            ]
        )
        out = greedy_ls_assignment(hopeless)
        assert not out.schedulable
        # The miss repeated on an already-LS task.
        assert "x" in out.ls_names

    def test_greedy_agrees_between_modes(self, ls_fixable_ts):
        a = greedy_ls_assignment(ls_fixable_ts, collect_results=True)
        b = greedy_ls_assignment(ls_fixable_ts, collect_results=False)
        assert a.schedulable == b.schedulable
        assert a.ls_names == b.ls_names
        assert a.rounds == b.rounds


class TestAblationPolicies:
    def test_all_nls(self, easy_ts):
        out = all_nls_assignment(easy_ts)
        assert out.schedulable
        assert out.ls_names == frozenset()

    def test_all_nls_fails_where_greedy_succeeds(self, ls_fixable_ts):
        assert not all_nls_assignment(ls_fixable_ts).schedulable
        assert greedy_ls_assignment(ls_fixable_ts).schedulable

    def test_all_ls(self, easy_ts):
        out = all_ls_assignment(easy_ts)
        assert out.ls_names == {"a", "b"}

    def test_tightest_deadline_marks_fraction(self, ls_fixable_ts):
        out = tightest_deadline_assignment(ls_fixable_ts, fraction=1 / 3)
        assert out.ls_names == frozenset({"tight"})

    def test_tightest_rejects_bad_fraction(self, easy_ts):
        with pytest.raises(AnalysisError):
            tightest_deadline_assignment(easy_ts, fraction=1.5)

    def test_registry_contains_all_policies(self):
        assert set(LS_POLICIES) == {
            "greedy",
            "all_nls",
            "all_ls",
            "tightest_deadlines",
        }

    def test_policies_accept_custom_analysis(self, easy_ts):
        analysis = ProposedAnalysis(method="closed_form")
        for policy in LS_POLICIES.values():
            out = policy(easy_ts, analysis)
            assert out.taskset is not None
