"""Tests for the MILP model auditor (structure + constraint census)."""

import math

import pytest

from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.errors import SolverError
from repro.milp import HighsBackend, SolveStatus, audit_model
from repro.milp.audit import audit_delay_milp, constraint_census
from repro.milp.expr import Constraint, LinExpr
from repro.milp.model import MilpModel
from repro.model.taskset import TaskSet


@pytest.fixture
def mixed_ts():
    ts = TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 8.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 15.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 30.0),
            ("d", 4.0, 0.5, 0.5, 80.0, 60.0),
        ]
    )
    return ts.with_ls_marks(["a", "c"])


def _codes(report, severity=None):
    return [
        i.code
        for i in report.issues
        if severity is None or i.severity == severity
    ]


class TestStructuralAudit:
    def test_clean_model_is_ok(self):
        m = MilpModel("clean")
        x = m.var("x", 0, 5)
        m.add(x <= 3, "cap")
        m.maximize(x)
        report = audit_model(m)
        assert report.ok
        assert report.issues == ()

    def test_nan_bound(self):
        m = MilpModel()
        x = m.var("x")
        x.upper = float("nan")  # bypass the constructor guard
        report = audit_model(m)
        assert "nan-bound" in _codes(report, "error")

    def test_inverted_bounds(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        x.lower = 10.0  # corrupt after registration
        report = audit_model(m)
        assert "inverted-bounds" in _codes(report, "error")
        assert not report.ok

    def test_non_finite_coefficient(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(float("inf") * x <= 1)
        assert "non-finite-coefficient" in _codes(audit_model(m), "error")

    def test_vacuous_zero_coefficient_row(self):
        # 0*x <= 1 keeps x in the expression with coefficient 0; the
        # auditor must classify the row as vacuous, not crash on it.
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(0 * x <= 1)
        report = audit_model(m)
        assert "vacuous-constraint" in _codes(report, "warning")
        assert report.ok  # warnings do not block solving

    def test_trivially_infeasible_empty_row(self):
        m = MilpModel()
        m.var("x", 0, 5)
        m.add(Constraint(LinExpr({}, 1.0), "<="), "absurd")  # 1 <= 0
        report = audit_model(m)
        assert "trivially-infeasible" in _codes(report, "error")

    def test_duplicate_rows(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        y = m.var("y", 0, 5)
        m.add(x + 2 * y <= 3, "first")
        m.add(x + 2 * y <= 3, "second")
        report = audit_model(m)
        dupes = [i for i in report.issues if i.code == "duplicate-row"]
        assert len(dupes) == 1
        assert set(dupes[0].rows) == {"first", "second"}

    def test_permuted_duplicate_detected(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        y = m.var("y", 0, 5)
        m.add(x + 2 * y <= 3, "ab")
        m.add(2 * y + x <= 3, "ba")  # same row, different term order
        assert "duplicate-row" in _codes(audit_model(m), "warning")

    def test_big_m_magnitude(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(1e10 * x <= 1)
        assert "big-m-magnitude" in _codes(audit_model(m), "warning")

    def test_ill_conditioned_row(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        y = m.var("y", 0, 5)
        m.add(x + 1e-9 * y <= 1)
        assert "ill-conditioned-row" in _codes(audit_model(m), "warning")

    def test_unbounded_objective(self):
        m = MilpModel()
        x = m.var("x")  # upper defaults to +inf
        m.maximize(x)
        report = audit_model(m)
        assert "unbounded-objective" in _codes(report, "error")
        assert not report.ok

    def test_bounded_unconstrained_objective_var_warns(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.maximize(x)
        report = audit_model(m)
        assert "unconstrained-objective-var" in _codes(report, "warning")
        assert report.ok

    def test_minimization_direction(self):
        # For a minimisation, the improving direction is the lower
        # bound; lower=-inf with no constraints is unbounded.
        m = MilpModel()
        x = m.var("x", -math.inf, 5.0)
        m.minimize(x)
        assert "unbounded-objective" in _codes(audit_model(m), "error")

    def test_unused_variable(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.var("dead", 0, 1)
        m.add(x <= 3)
        m.maximize(x)
        report = audit_model(m)
        unused = [i for i in report.issues if i.code == "unused-variable"]
        assert len(unused) == 1
        assert "dead" in unused[0].message

    def test_census_by_name_prefix(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add_all([x <= 1, x <= 2], prefix="cap")
        m.add(x >= 0, "floor")
        assert constraint_census(m) == {"cap": 2, "floor": 1}

    def test_render_mentions_counts(self):
        m = MilpModel("demo")
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        m.maximize(x)
        text = audit_model(m).render()
        assert "0 error(s)" in text
        assert "demo" in text


class TestPreSolveGate:
    def test_gate_blocks_defective_model(self):
        m = MilpModel("bad")
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        m.maximize(x)
        x.lower = 10.0
        with pytest.raises(SolverError, match="pre-solve audit failed"):
            m.solve(HighsBackend(), audit=True)

    def test_gate_passes_clean_model(self):
        m = MilpModel("good")
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        m.maximize(x)
        sol = m.solve(HighsBackend(), audit=True)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)

    def test_class_wide_toggle(self, monkeypatch):
        m = MilpModel("bad")
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        m.maximize(x)
        x.lower = 10.0
        monkeypatch.setattr(MilpModel, "audit_before_solve", True)
        with pytest.raises(SolverError, match="pre-solve audit failed"):
            m.solve(HighsBackend())

    def test_explicit_false_overrides_toggle(self, monkeypatch):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        m.maximize(x)
        monkeypatch.setattr(MilpModel, "audit_before_solve", True)
        sol = m.solve(HighsBackend(), audit=False)
        assert sol.status is SolveStatus.OPTIMAL


class TestDelayCensus:
    """Acceptance pin: known-good Theorem 1 builds pass the census."""

    @pytest.mark.parametrize(
        "name, window, mode",
        [
            ("b", 10.0, AnalysisMode.NLS),
            ("d", 25.0, AnalysisMode.NLS),
            ("b", 10.0, AnalysisMode.WASLY),
            ("c", 10.0, AnalysisMode.WASLY),
            ("a", 8.0, AnalysisMode.LS_CASE_A),
            ("c", 12.0, AnalysisMode.LS_CASE_A),
            ("a", 0.0, AnalysisMode.LS_CASE_B),
            ("c", 0.0, AnalysisMode.LS_CASE_B),
        ],
    )
    def test_known_good_models_pass(self, mixed_ts, name, window, mode):
        task = mixed_ts.by_name(name)
        built = build_delay_milp(mixed_ts, task, window, mode)
        report = audit_delay_milp(built, mixed_ts, task)
        assert report.ok, report.render()
        assert "census-mismatch" not in _codes(report)

    def test_no_ls_plain_set_passes(self):
        plain = TaskSet.from_parameters(
            [
                ("x", 1.0, 0.1, 0.1, 10.0, 9.0),
                ("y", 2.0, 0.2, 0.2, 20.0, 18.0),
            ]
        )
        task = plain.by_name("x")
        built = build_delay_milp(plain, task, 5.0, AnalysisMode.NLS)
        report = audit_delay_milp(built, plain, task)
        assert report.ok, report.render()

    def test_missing_interference_row_caught(self, mixed_ts):
        # Acceptance pin: delete one C7 interference-budget row from an
        # otherwise sound model; the census must notice the shortfall.
        task = mixed_ts.by_name("b")
        built = build_delay_milp(mixed_ts, task, 10.0, AnalysisMode.NLS)
        rows = built.model._constraints
        idx = next(
            i for i, con in enumerate(rows) if con.name.startswith("C7[")
        )
        rows.pop(idx)
        report = audit_delay_milp(built, mixed_ts, task)
        assert not report.ok
        mismatches = [i for i in report.errors if i.code == "census-mismatch"]
        assert any("C7" in i.message for i in mismatches)

    def test_extra_forged_row_caught(self, mixed_ts):
        task = mixed_ts.by_name("b")
        built = build_delay_milp(mixed_ts, task, 10.0, AnalysisMode.NLS)
        x = built.model.variables[0]
        built.model.add(x <= 99, "C9[999]")  # inflate a family
        report = audit_delay_milp(built, mixed_ts, task)
        assert any(
            i.code == "census-mismatch" and "C9" in i.message
            for i in report.errors
        )

    def test_inverted_bound_in_formulation_caught(self, mixed_ts):
        task = mixed_ts.by_name("b")
        built = build_delay_milp(mixed_ts, task, 10.0, AnalysisMode.NLS)
        built.model.variables[0].upper = -1.0
        report = audit_delay_milp(built, mixed_ts, task)
        assert "inverted-bounds" in _codes(report, "error")


class TestCompileRejectsNonFinite:
    def test_nan_objective_coefficient(self):
        m = MilpModel("nanobj")
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        m.maximize(float("nan") * x)
        with pytest.raises(SolverError, match="objective coefficient"):
            m.compile()

    def test_inf_constraint_coefficient_names_the_row(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(float("inf") * x <= 1, "leaky")
        with pytest.raises(SolverError, match="leaky"):
            m.compile()

    def test_nan_constraint_constant(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(x <= float("nan"))
        with pytest.raises(SolverError, match="non-finite"):
            m.compile()

    def test_finite_model_still_compiles(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(x <= 3)
        m.maximize(x)
        assert m.compile().num_rows == 1


class TestAutoNumbering:
    def test_add_all_empty_prefix_auto_numbers(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add_all([x <= 1, x <= 2])
        assert [c.name for c in m.constraints] == ["r0", "r1"]

    def test_add_auto_numbers_unnamed(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add(x <= 1, "cap")
        m.add(x <= 2)
        assert [c.name for c in m.constraints] == ["cap", "r1"]

    def test_explicit_names_untouched(self):
        m = MilpModel()
        x = m.var("x", 0, 5)
        m.add_all([x <= 1, x <= 2], prefix="cap")
        assert [c.name for c in m.constraints] == ["cap[0]", "cap[1]"]


class TestAuditCli:
    def test_audit_subcommand_passes_on_known_good_set(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "ts.csv"
        csv.write_text(
            "name,C,l,u,T,D\n"
            "hi,1.0,0.2,0.2,10.0,8.0\n"
            "mid,2.0,0.4,0.4,20.0,14.0\n"
            "lo,4.0,0.8,0.8,50.0,40.0\n"
        )
        rc = main(["audit", str(csv), "--ls", "hi"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "constraint families" in out
