"""Monotonicity properties of the analyses.

Response-time analyses must react monotonically to workload changes:
more interference or tighter resources can only worsen bounds, and
removing work can only help. Violations would indicate formulation
bugs even when the absolute numbers look plausible.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.interface import AnalysisOptions
from repro.analysis.nps import NpsAnalysis
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.analysis.sensitivity import scale_execution, scaled_taskset
from repro.model.task import Task
from repro.model.taskset import TaskSet

_EXACT = AnalysisOptions(stop_at_deadline=False, max_iterations=40)


def _mk_taskset(params):
    tasks = []
    for i, (c, period, gamma) in enumerate(params):
        tasks.append(
            Task.sporadic(
                f"t{i}",
                exec_time=c,
                period=period,
                deadline=period,
                copy_in=gamma * c,
                copy_out=gamma * c,
                priority=i,
            )
        )
    return TaskSet(tasks)


@st.composite
def param_lists(draw):
    n = draw(st.integers(2, 4))
    return [
        (
            draw(st.sampled_from([0.5, 1.0, 2.0])),
            draw(st.sampled_from([10.0, 20.0, 40.0])) + i,
            draw(st.sampled_from([0.0, 0.1, 0.3])),
        )
        for i, _ in enumerate(range(n))
    ]


class TestWorkloadMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(param_lists())
    def test_removing_lowest_priority_task_never_hurts(self, params):
        ts = _mk_taskset(params)
        smaller = TaskSet(list(ts)[:-1]) if len(ts) > 1 else ts
        assume(len(smaller) < len(ts))
        analysis = ProposedAnalysis(_EXACT)
        for task in smaller:
            full = analysis.response_time(ts, ts.by_name(task.name))
            reduced = analysis.response_time(smaller, task)
            assume(full.converged and reduced.converged)
            assert reduced.wcrt <= full.wcrt + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(param_lists(), st.sampled_from([1.1, 1.5, 2.0]))
    def test_scaling_execution_up_never_helps(self, params, factor):
        ts = _mk_taskset(params)
        heavier = scaled_taskset(ts, scale_execution, factor)
        analysis = NpsAnalysis(_EXACT)
        for task, heavy_task in zip(ts, heavier):
            base = analysis.response_time(ts, task)
            worse = analysis.response_time(heavier, heavy_task)
            if base.converged and worse.converged:
                assert worse.wcrt >= base.wcrt - 1e-6

    @settings(max_examples=8, deadline=None)
    @given(param_lists())
    def test_nps_verdict_monotone_in_deadline(self, params):
        ts = _mk_taskset(params)
        analysis = NpsAnalysis()
        for task in ts:
            tight = analysis.response_time(ts, task).schedulable
            if tight:
                # Doubling the deadline keeps the task schedulable.
                import dataclasses

                loose_task = dataclasses.replace(
                    task, deadline=task.deadline * 2
                )
                loose = ts.with_task_replaced(loose_task)
                assert analysis.response_time(
                    loose, loose_task
                ).schedulable


class TestWindowMonotonicity:
    def test_proposed_bound_monotone_in_window_probe(self):
        ts = _mk_taskset([(1.0, 10.0, 0.2), (2.0, 20.0, 0.2), (3.0, 40.0, 0.2)])
        analysis = ProposedAnalysis(_EXACT)
        task = ts[2]
        from repro.analysis.proposed.formulation import AnalysisMode

        values = [
            analysis._solve_delay(ts, task, w, AnalysisMode.NLS)
            for w in (2.0, 5.0, 10.0, 20.0, 40.0)
        ]
        assert values == sorted(values)
