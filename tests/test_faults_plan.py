"""The fault-plan layer: specs, triggers, scopes, JSON round-trips."""

import json

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    SITES,
    FaultPlan,
    FaultSpec,
    active,
    fire,
    injecting,
    load_plan,
    save_plan,
)
from repro.obs import events as obs


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultSpec(site="solver.meltdown")

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown mode"):
            FaultSpec(site="solver.fault", mode="oops")

    def test_mode_defaults_to_first_site_mode(self):
        for site, modes in SITES.items():
            assert FaultSpec(site=site).mode == modes[0]

    def test_negative_after_rejected(self):
        with pytest.raises(FaultPlanError, match="after"):
            FaultSpec(site="fs.error", after=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(FaultPlanError, match="times"):
            FaultSpec(site="fs.error", times=0)

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(site="fs.error", probability=1.5)


class TestMatching:
    def test_none_fields_match_anything(self):
        spec = FaultSpec(site="solver.fault")
        assert spec.matches("solver.fault", point=3, unit=7, attempt=2)

    def test_pinned_fields_must_agree(self):
        spec = FaultSpec(site="worker.death", point=1, unit=2, attempt=0)
        assert spec.matches("worker.death", point=1, unit=2, attempt=0)
        assert not spec.matches("worker.death", point=1, unit=2, attempt=1)
        assert not spec.matches("worker.death", point=0, unit=2, attempt=0)
        assert not spec.matches("other.site", point=1, unit=2, attempt=0)

    def test_plan_matching_returns_first_match(self):
        a = FaultSpec(site="worker.death", point=0)
        b = FaultSpec(site="worker.death")
        plan = FaultPlan(specs=(a, b))
        assert plan.matching("worker.death", point=0) is a
        assert plan.matching("worker.death", point=5) is b
        assert plan.matching("solver.fault") is None


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="solver.fault", mode="garbage", point=2),
                FaultSpec(
                    site="worker.death",
                    unit=1,
                    after=3,
                    times=None,
                    probability=0.5,
                ),
            ),
            seed=99,
            name="chaos",
        )
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        assert load_plan(path) == plan

    def test_load_missing_plan_is_clear(self, tmp_path):
        with pytest.raises(FaultPlanError, match="not found"):
            load_plan(tmp_path / "nope.json")

    def test_load_invalid_json_is_clear(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(FaultPlanError, match="invalid fault plan JSON"):
            load_plan(path)

    def test_unknown_spec_field_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps({"specs": [{"site": "fs.error", "bogus": 1}]})
        )
        with pytest.raises(FaultPlanError, match="unknown fields"):
            load_plan(path)


class TestFiring:
    def test_fire_without_scope_is_noop(self):
        assert active() is None
        assert fire("solver.fault") is None

    def test_first_matching_spec_fires(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="solver.fault", mode="crash", point=0),
                FaultSpec(site="solver.fault", mode="timeout"),
            )
        )
        with injecting(plan, point=0) as scope:
            assert fire("solver.fault").mode == "crash"
        with injecting(plan, point=4) as scope:
            assert fire("solver.fault").mode == "timeout"
            assert scope.fired[0].mode == "timeout"

    def test_after_skips_eligible_hits(self):
        plan = FaultPlan(specs=(FaultSpec(site="fs.error", after=2),))
        with injecting(plan):
            assert fire("fs.error") is None
            assert fire("fs.error") is None
            assert fire("fs.error") is not None

    def test_times_bounds_fires_per_scope(self):
        plan = FaultPlan(specs=(FaultSpec(site="fs.error", times=2),))
        with injecting(plan):
            assert fire("fs.error") is not None
            assert fire("fs.error") is not None
            assert fire("fs.error") is None
        # A fresh scope resets the budget.
        with injecting(plan):
            assert fire("fs.error") is not None

    def test_unlimited_times(self):
        plan = FaultPlan(specs=(FaultSpec(site="fs.error", times=None),))
        with injecting(plan):
            assert all(fire("fs.error") is not None for _ in range(10))

    def test_probability_is_deterministic_per_scope(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="fs.error", probability=0.5, times=None),
            ),
            seed=3,
        )

        def pattern():
            with injecting(plan, point=1, unit=2):
                return [fire("fs.error") is not None for _ in range(20)]

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)  # actually probabilistic

    def test_scope_stack_innermost_wins(self):
        outer = FaultPlan(specs=(FaultSpec(site="fs.error"),), name="outer")
        inner = FaultPlan(name="inner")  # no specs: nothing fires
        with injecting(outer):
            with injecting(inner):
                assert active().plan is inner
                assert fire("fs.error") is None
            assert fire("fs.error") is not None

    def test_call_site_context_overrides_ambient(self):
        plan = FaultPlan(specs=(FaultSpec(site="fs.error", point=5),))
        with injecting(plan, point=0):
            assert fire("fs.error") is None
            assert fire("fs.error", point=5) is not None


class TestFiredEvents:
    def test_fired_fault_emits_schema_valid_event(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="solver.fault", mode="garbage"),),
            name="prove-it",
        )
        recorder = obs.EventRecorder()
        with obs.recording(recorder), injecting(plan, point=1, unit=2):
            assert fire("solver.fault", backend="highs") is not None
        (event,) = recorder.events
        assert obs.validate_event(event) == []
        assert event["name"] == "fault.solver.fault"
        assert event["point"] == 1 and event["unit"] == 2
        assert event["f"]["mode"] == "garbage"
        assert event["f"]["plan"] == "prove-it"
        assert event["f"]["backend"] == "highs"
        assert obs.is_runtime_event(event["name"])
