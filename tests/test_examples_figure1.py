"""Tests for the packaged Fig. 1 motivating example.

These pin the *qualitative content* of the paper's Fig. 1: protocol [3]
blocks the task under analysis twice and misses; NPS blocks once and
meets; the proposed protocol cancels, promotes, and meets.
"""

import pytest

from repro.examples_support import (
    figure1_plan,
    figure1_taskset,
    run_figure1_demo,
)
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.validate import check_trace, count_blocking_intervals


@pytest.fixture
def deadline():
    return figure1_taskset().by_name("ti").deadline


class TestOutcomes:
    def test_wasly_misses(self, deadline):
        trace = WaslySimulator(figure1_taskset()).run(figure1_plan())
        assert trace.max_response_time("ti") > deadline

    def test_nps_meets(self, deadline):
        trace = NpsSimulator(figure1_taskset()).run(figure1_plan())
        assert trace.max_response_time("ti") <= deadline

    def test_proposed_meets(self, deadline):
        ts = figure1_taskset(mark_ls=True)
        trace = ProposedSimulator(ts).run(figure1_plan())
        assert trace.max_response_time("ti") <= deadline
        check_trace(trace)


class TestBlockingStructure:
    def test_wasly_blocks_twice(self):
        trace = WaslySimulator(figure1_taskset()).run(figure1_plan())
        ti_job = trace.jobs_of("ti")[0]
        assert count_blocking_intervals(trace, ti_job) == 2

    def test_proposed_blocks_at_most_once(self):
        ts = figure1_taskset(mark_ls=True)
        trace = ProposedSimulator(ts).run(figure1_plan())
        ti_job = trace.jobs_of("ti")[0]
        assert count_blocking_intervals(trace, ti_job) <= 1


class TestDemoReport:
    def test_report_mentions_all_three(self):
        report = run_figure1_demo()
        assert "protocol [3]" in report
        assert "non-preemptive" in report
        assert "proposed" in report
        assert "MISSES" in report
        assert report.count("MEETS") == 2

    def test_analysis_bounds_cover_simulation(self):
        # The MILP bound for the LS-marked ti must cover the simulated
        # response (the release plan is one legal sporadic pattern).
        from repro.analysis.proposed import ProposedAnalysis
        from repro.analysis.interface import AnalysisOptions

        ts = figure1_taskset(mark_ls=True)
        trace = ProposedSimulator(ts).run(figure1_plan())
        options = AnalysisOptions(stop_at_deadline=False)
        bound = ProposedAnalysis(options).response_time(
            ts, ts.by_name("ti")
        ).wcrt
        assert bound >= trace.max_response_time("ti") - 1e-9
