"""Unit tests for the interval-protocol simulators ([3] and proposed)."""

import pytest

from repro.examples_support import figure1_plan, figure1_taskset
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.releases import ReleasePlan, periodic_plan, sporadic_plan
from repro.sim.validate import check_trace


@pytest.fixture
def pair():
    return TaskSet.from_parameters(
        [
            ("hi", 2.0, 0.5, 0.5, 10.0, 10.0),
            ("lo", 4.0, 1.0, 1.0, 50.0, 50.0),
        ]
    )


class TestPipelineStructure:
    def test_single_job_pipeline(self, pair):
        plan = ReleasePlan(releases={"hi": (0.0,)}, horizon=10.0)
        trace = WaslySimulator(pair).run(plan)
        job = trace.jobs_of("hi")[0]
        # I_0: DMA copy-in [0, 0.5]; I_1: execution [0.5, 2.5];
        # I_2: copy-out [2.5, 3.0].
        assert job.copy_in_start == pytest.approx(0.0)
        assert job.exec_start == pytest.approx(0.5)
        assert job.copy_out_start == pytest.approx(2.5)
        assert job.response_time == pytest.approx(3.0)

    def test_copy_in_overlaps_execution(self, pair):
        plan = ReleasePlan(
            releases={"hi": (0.0,), "lo": (0.0,)}, horizon=30.0
        )
        trace = WaslySimulator(pair).run(plan)
        hi = trace.jobs_of("hi")[0]
        lo = trace.jobs_of("lo")[0]
        # lo's copy-in is performed by the DMA while hi executes.
        assert lo.copy_in_start < hi.exec_end
        assert lo.exec_start >= hi.exec_end - 1e-9

    def test_interval_end_is_max_of_cpu_and_dma(self, pair):
        plan = ReleasePlan(
            releases={"hi": (0.0,), "lo": (0.0,)}, horizon=30.0
        )
        trace = WaslySimulator(pair).run(plan)
        for interval in trace.intervals:
            assert interval.length > 0

    def test_traces_validate(self, pair, rng):
        plan = sporadic_plan(pair, 300.0, rng)
        for sim_cls in (WaslySimulator, ProposedSimulator):
            trace = sim_cls(pair).run(plan)
            check_trace(trace)
            assert len(trace.completed_jobs()) == len(trace.jobs)


class TestFigure1Scenario:
    def test_wasly_double_blocking_misses(self):
        trace = WaslySimulator(figure1_taskset()).run(figure1_plan())
        assert trace.max_response_time("ti") > 8.0  # deadline miss

    def test_proposed_cancels_and_meets(self):
        ts = figure1_taskset(mark_ls=True)
        trace = ProposedSimulator(ts).run(figure1_plan())
        assert trace.max_response_time("ti") <= 8.0
        ti_job = trace.jobs_of("ti")[0]
        assert ti_job.urgent
        assert ti_job.copy_in_by == "cpu"
        # lp2's copy-in was cancelled by ti's release.
        lp2 = trace.jobs_of("lp2")[0]
        assert lp2.was_cancelled

    def test_wasly_ignores_ls_marks(self):
        plain = WaslySimulator(figure1_taskset()).run(figure1_plan())
        marked = WaslySimulator(figure1_taskset(mark_ls=True)).run(
            figure1_plan()
        )
        assert plain.max_response_time("ti") == pytest.approx(
            marked.max_response_time("ti")
        )

    def test_proposed_without_marks_behaves_like_wasly(self):
        # With no LS task, rules R3-R5 never fire.
        wasly = WaslySimulator(figure1_taskset()).run(figure1_plan())
        prop = ProposedSimulator(figure1_taskset()).run(figure1_plan())
        for name in ("tp", "ti", "lp1", "lp2"):
            assert wasly.max_response_time(name) == pytest.approx(
                prop.max_response_time(name)
            )


class TestCancellation:
    def test_cancelled_job_eventually_runs(self):
        ts = figure1_taskset(mark_ls=True)
        trace = ProposedSimulator(ts).run(figure1_plan())
        lp2 = trace.jobs_of("lp2")[0]
        assert lp2.completed
        assert lp2.copy_in_end is not None

    def test_release_after_copy_in_completes_does_not_cancel(self):
        # LS released after the lower-priority copy-in finished: the
        # load stands (R3 cancels only in-progress/pending copy-ins).
        ts = TaskSet.from_parameters(
            [
                ("ls", 1.0, 0.2, 0.2, 20.0, 18.0),
                ("lp", 3.0, 1.0, 1.0, 50.0, 50.0),
            ]
        ).with_ls_marks(["ls"])
        # lp copy-in runs [0, 1.0]; ls released at 1.5 inside I_0?
        # I_0 = [0, 1.0] (copy-in only), so release 1.5 lands in I_1
        # where lp executes: no cancellation, ls blocked once.
        plan = ReleasePlan(
            releases={"lp": (0.0,), "ls": (1.5,)}, horizon=30.0
        )
        trace = ProposedSimulator(ts).run(plan)
        lp = trace.jobs_of("lp")[0]
        assert not lp.was_cancelled
        check_trace(trace)

    def test_nls_release_never_cancels(self, pair):
        plan = ReleasePlan(
            releases={"lo": (0.0,), "hi": (0.2,)}, horizon=30.0
        )
        trace = ProposedSimulator(pair).run(plan)  # no LS marks
        lo = trace.jobs_of("lo")[0]
        assert not lo.was_cancelled


class TestLongRuns:
    def test_periodic_long_run_drains(self, pair):
        plan = periodic_plan(pair, horizon=500.0)
        for sim_cls in (WaslySimulator, ProposedSimulator):
            trace = sim_cls(pair).run(plan)
            assert len(trace.completed_jobs()) == len(trace.jobs)
            check_trace(trace)

    def test_ls_marked_long_run_invariants(self, rng):
        ts = TaskSet.from_parameters(
            [
                ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
                ("b", 2.0, 0.4, 0.4, 20.0, 18.0),
                ("c", 3.0, 0.5, 0.5, 40.0, 36.0),
            ]
        ).with_ls_marks(["a"])
        plan = sporadic_plan(ts, 400.0, rng)
        trace = ProposedSimulator(ts).run(plan)
        check_trace(trace)
        assert len(trace.completed_jobs()) == len(trace.jobs)
