"""Unit tests for priority-assignment policies."""

import pytest

from repro.analysis.nps import NpsAnalysis
from repro.errors import AnalysisError
from repro.model.priorities import (
    audsley_opa,
    deadline_monotonic,
    opa_with_analysis,
    rate_monotonic,
)
from repro.model.task import Task


def _task(name, period, deadline, exec_time=1.0):
    return Task.sporadic(
        name, exec_time=exec_time, period=period, deadline=deadline,
        copy_in=0.1, copy_out=0.1, priority=99,
    )


class TestStaticPolicies:
    def test_dm_orders_by_deadline(self):
        ts = deadline_monotonic(
            [_task("a", 10, 9), _task("b", 20, 4), _task("c", 15, 12)]
        )
        assert [t.name for t in ts] == ["b", "a", "c"]
        assert [t.priority for t in ts] == [0, 1, 2]

    def test_rm_orders_by_period(self):
        ts = rate_monotonic(
            [_task("a", 30, 9), _task("b", 20, 20), _task("c", 25, 12)]
        )
        assert [t.name for t in ts] == ["b", "c", "a"]

    def test_ties_broken_by_name(self):
        ts = deadline_monotonic([_task("z", 10, 9), _task("a", 12, 9)])
        assert [t.name for t in ts] == ["a", "z"]


class TestAudsleyOpa:
    def test_finds_dm_like_order_for_easy_set(self):
        tasks = [_task("a", 10, 9), _task("b", 20, 18), _task("c", 40, 36)]
        analysis = NpsAnalysis()

        def oracle(taskset, task):
            return analysis.response_time(taskset, task).schedulable

        result = audsley_opa(tasks, oracle)
        assert result is not None
        for task in result:
            assert oracle(result, task)

    def test_finds_non_deadline_order_when_needed(self):
        # A synthetic OPA-compatible oracle under which the deadline
        # order is infeasible: "fragile" (short deadline) is only
        # schedulable at the *bottom*, "robust" anywhere. Audsley must
        # find the inverted order that a DM-style greedy misses.
        tasks = [
            _task("fragile", 10.0, 5.0),  # shortest deadline
            _task("robust", 20.0, 15.0),
        ]

        def oracle(taskset, task):
            if task.name == "fragile":
                return len(taskset.lp(task)) == 0  # bottom level only
            return True

        dm = deadline_monotonic(tasks)  # fragile on top
        dm_ok = all(oracle(dm, t) for t in dm)
        assert not dm_ok
        opa = audsley_opa(tasks, oracle)
        assert opa is not None
        assert [t.name for t in opa] == ["robust", "fragile"]

    def test_reports_none_when_hopeless(self):
        tasks = [
            _task("x", 10.0, 4.0, exec_time=3.9),
            _task("y", 10.0, 4.0, exec_time=3.9),
        ]
        analysis = NpsAnalysis()

        def oracle(taskset, task):
            return analysis.response_time(taskset, task).schedulable

        assert audsley_opa(tasks, oracle) is None

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            audsley_opa([], lambda ts, t: True)

    def test_priorities_are_consecutive(self):
        tasks = [_task(f"t{i}", 10.0 + i, 9.0 + i, exec_time=0.5)
                 for i in range(4)]
        result = audsley_opa(tasks, lambda ts, t: True)
        assert result is not None
        assert [t.priority for t in result] == [0, 1, 2, 3]


class TestOpaWithAnalysis:
    def test_proposed_oracle(self):
        tasks = [
            _task("a", 10, 9, exec_time=1.0),
            _task("b", 20, 18, exec_time=2.0),
            _task("c", 40, 36, exec_time=3.0),
        ]
        result = opa_with_analysis(tasks, protocol="proposed")
        assert result is not None
        assert len(result) == 3
        # LS marks were cleared for the search.
        assert not any(t.latency_sensitive for t in result)

    def test_nps_oracle_matches_direct_audsley(self):
        tasks = [
            _task("a", 10, 9, exec_time=1.0),
            _task("b", 20, 18, exec_time=2.0),
        ]
        via_helper = opa_with_analysis(tasks, protocol="nps")
        assert via_helper is not None
