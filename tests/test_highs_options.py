"""HiGHS backend option paths: gaps, time limits, dual bounds."""

import numpy as np
import pytest

from repro.milp import HighsBackend, MilpModel, SolveStatus
from repro.milp.expr import LinExpr


def _hard_knapsack(n=16, seed=7):
    rng = np.random.default_rng(seed)
    values = rng.integers(10, 100, size=n).tolist()
    weights = rng.integers(5, 50, size=n).tolist()
    m = MilpModel("hard")
    xs = [m.binary(f"x{i}") for i in range(n)]
    m.add(
        LinExpr.total(w * x for w, x in zip(weights, xs))
        <= int(sum(weights) * 0.4)
    )
    m.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
    return m


class TestHighsOptions:
    def test_mip_rel_gap_with_dual_bound_is_safe(self):
        m = _hard_knapsack()
        exact = m.solve(HighsBackend()).objective
        loose = m.solve(
            HighsBackend(mip_rel_gap=0.3, use_dual_bound=True)
        )
        assert loose.status in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)
        # With the dual bound reported, the result can only
        # over-approximate the true maximum.
        assert loose.objective >= exact - 1e-6

    def test_dual_bound_ignored_at_optimality(self):
        m = MilpModel()
        x = m.binary("x")
        m.add(x <= 1)
        m.maximize(3 * x)
        sol = m.solve(HighsBackend(time_limit=30.0, use_dual_bound=True))
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)

    def test_time_limit_does_not_break_small_models(self):
        m = _hard_knapsack(n=8)
        sol = m.solve(HighsBackend(time_limit=10.0))
        assert sol.status is SolveStatus.OPTIMAL

    def test_node_count_reported(self):
        m = _hard_knapsack()
        sol = m.solve(HighsBackend())
        assert sol.node_count is None or sol.node_count >= 0

    def test_runtime_recorded(self):
        m = _hard_knapsack(n=6)
        sol = m.solve(HighsBackend())
        assert sol.runtime_seconds > 0.0
        assert sol.backend == "highs"
