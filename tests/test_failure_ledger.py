"""Fault isolation in the sweep runner: ledger, policies, advantage errors."""

import pytest

import repro.experiments.units as units_module
from repro.errors import ExperimentError, SolverError
from repro.experiments import (
    ExperimentConfig,
    FailurePolicy,
    FailureRecord,
    PointResult,
    SweepPoint,
    SweepResult,
    run_experiment,
    run_point,
)
from repro.generator.taskset_gen import GenerationConfig


@pytest.fixture
def config():
    points = tuple(
        SweepPoint(u, GenerationConfig(n=3, utilization=u, gamma=0.1))
        for u in (0.2, 0.4)
    )
    return ExperimentConfig(
        name="mini",
        x_label="U",
        points=points,
        sets_per_point=3,
        seed=11,
        method="closed_form",
    )


def _fault_on(monkeypatch, protocol, taskset_index):
    """Fail one taskset/protocol pair per point, pass everything else."""
    seen: dict[float, list] = {}

    def fake_is_schedulable(taskset, proto, **kwargs):
        digests = seen.setdefault(proto, [])
        if taskset.digest() not in digests:
            digests.append(taskset.digest())
        index = digests.index(taskset.digest()) % 3
        if proto == protocol and index == taskset_index:
            raise SolverError("injected solver crash")
        return True

    monkeypatch.setattr(units_module, "is_schedulable", fake_is_schedulable)


class TestFailurePolicies:
    def test_count_unschedulable_is_conservative(self, monkeypatch, config):
        _fault_on(monkeypatch, "wasly", taskset_index=1)
        result = run_point(
            config.points[0], config, seed=11,
            failure_policy=FailurePolicy.COUNT_UNSCHEDULABLE,
        )
        assert result.ratios["wasly"] == pytest.approx(2 / 3)
        assert result.ratios["proposed"] == pytest.approx(1.0)
        assert len(result.failures) == 1

    def test_skip_drops_pair_from_denominator(self, monkeypatch, config):
        _fault_on(monkeypatch, "wasly", taskset_index=1)
        result = run_point(
            config.points[0], config, seed=11, failure_policy="skip"
        )
        assert result.ratios["wasly"] == pytest.approx(1.0)
        assert result.sets_evaluated == 3
        assert len(result.failures) == 1

    def test_raise_propagates(self, monkeypatch, config):
        _fault_on(monkeypatch, "wasly", taskset_index=1)
        with pytest.raises(SolverError):
            run_point(
                config.points[0], config, seed=11,
                failure_policy=FailurePolicy.RAISE,
            )

    def test_unknown_policy_rejected(self, config):
        with pytest.raises(ExperimentError) as excinfo:
            run_point(config.points[0], config, seed=11, failure_policy="explode")
        assert "count_unschedulable" in str(excinfo.value)


class TestLedger:
    def test_sweep_completes_and_records_failures(self, monkeypatch, config):
        _fault_on(monkeypatch, "proposed", taskset_index=0)
        result = run_experiment(config)
        assert len(result.points) == 2
        ledger = result.failures
        assert len(ledger) == 2  # one injected failure per point
        record = ledger[0]
        assert record.protocol == "proposed"
        assert record.x == 0.2
        assert record.seed == 11
        assert record.taskset_index == 0
        assert len(record.taskset_digest) == 16
        assert record.error_type == "SolverError"
        assert "injected solver crash" in record.message

    def test_clean_sweep_has_empty_ledger(self, config):
        result = run_experiment(config)
        assert result.failures == ()

    def test_degradation_attribute_is_captured(self, monkeypatch, config):
        def fake_is_schedulable(taskset, proto, **kwargs):
            error = SolverError("exhausted")
            error.degradation = 3
            raise error

        monkeypatch.setattr(units_module, "is_schedulable", fake_is_schedulable)
        result = run_point(config.points[0], config, seed=11)
        assert all(f.degradation == 3 for f in result.failures)
        assert result.ratios["proposed"] == 0.0

    def test_all_failed_with_skip_reports_zero(self, monkeypatch, config):
        def fake_is_schedulable(taskset, proto, **kwargs):
            raise SolverError("dead backend")

        monkeypatch.setattr(units_module, "is_schedulable", fake_is_schedulable)
        result = run_point(config.points[0], config, seed=11, failure_policy="skip")
        assert all(v == 0.0 for v in result.ratios.values())


class TestResilientSweep:
    def test_milp_sweep_with_resilience_options(self, config):
        """End-to-end: watchdogged resilient solves inside a real sweep."""
        import dataclasses

        from repro.analysis.interface import AnalysisOptions
        from repro.milp import ResilienceConfig

        cfg = dataclasses.replace(
            config, method="milp", sets_per_point=2, points=config.points[:1]
        )
        options = AnalysisOptions(
            resilience=ResilienceConfig(watchdog_seconds=30.0, max_retries=1)
        )
        result = run_experiment(cfg, options=options)
        assert result.failures == ()
        for protocol in cfg.protocols:
            assert 0.0 <= result.points[0].ratios[protocol] <= 1.0


class TestAdvantageErrors:
    def test_empty_sweep_raises_experiment_error(self, config):
        empty = SweepResult(config=config, points=())
        with pytest.raises(ExperimentError) as excinfo:
            empty.advantage("proposed", "wasly")
        assert "empty sweep" in str(excinfo.value)

    def test_unknown_protocol_lists_valid_names(self, config):
        point = PointResult(
            x=0.2,
            ratios={p: 1.0 for p in config.protocols},
            sets_evaluated=1,
            elapsed_seconds=0.0,
        )
        result = SweepResult(config=config, points=(point,))
        with pytest.raises(ExperimentError) as excinfo:
            result.advantage("proposed", "cplex")
        message = str(excinfo.value)
        assert "'cplex'" in message
        for name in config.protocols:
            assert name in message

    def test_valid_call_unchanged(self, config):
        point = PointResult(
            x=0.2,
            ratios={"nps_carry": 0.4, "wasly": 0.5, "proposed": 0.9},
            sets_evaluated=1,
            elapsed_seconds=0.0,
        )
        result = SweepResult(config=config, points=(point,))
        assert result.advantage("proposed", "wasly") == pytest.approx(0.4)


class TestLedgerReport:
    def test_render_failure_ledger(self, monkeypatch, config):
        from repro.experiments import render_failure_ledger, render_sweep_table

        _fault_on(monkeypatch, "wasly", taskset_index=2)
        result = run_experiment(config)
        ledger_text = render_failure_ledger(result)
        assert "failure ledger" in ledger_text
        assert "SolverError" in ledger_text
        assert "wasly" in ledger_text
        assert "failures:" in render_sweep_table(result)

    def test_empty_ledger_renders_empty(self, config):
        from repro.experiments import render_failure_ledger

        result = run_experiment(config)
        assert render_failure_ledger(result) == ""
