"""Unit tests for the NPS baseline analysis."""

import math

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.nps import NpsAnalysis, nps_response_time
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet


class TestBlockingAndBusyWindow:
    def test_blocking_is_largest_lp_cost(self, tiny_taskset):
        analysis = NpsAnalysis()
        hi = tiny_taskset.by_name("hi")
        assert analysis.blocking(tiny_taskset, hi) == pytest.approx(
            tiny_taskset.by_name("lo").total_cost
        )

    def test_lowest_priority_has_no_blocking(self, tiny_taskset):
        analysis = NpsAnalysis()
        lo = tiny_taskset.by_name("lo")
        assert analysis.blocking(tiny_taskset, lo) == 0.0

    def test_busy_window_single_task(self, single_task_set):
        analysis = NpsAnalysis()
        task = single_task_set[0]
        window = analysis.busy_window(single_task_set, task, 1e6)
        assert window == pytest.approx(task.total_cost)


class TestResponseTimes:
    def test_single_task(self, single_task_set):
        task = single_task_set[0]
        assert nps_response_time(single_task_set, task) == pytest.approx(
            task.total_cost
        )

    def test_two_task_hand_computed(self):
        # hi: cost 2, T=10; lo: cost 5, T=100.
        ts = TaskSet.from_parameters(
            [
                ("hi", 1.5, 0.25, 0.25, 10.0, 10.0),
                ("lo", 4.0, 0.5, 0.5, 100.0, 100.0),
            ]
        )
        # hi blocked by one lo job: R = 5 + 2 = 7.
        assert nps_response_time(ts, ts.by_name("hi")) == pytest.approx(7.0)
        # lo: blocked by nothing, interfered by hi jobs:
        # start = ceil-counted hi releases; busy algebra: s = 2*k until
        # s stabilises: s=2 -> eta_closed(2)=1 -> s=2; finish 7.
        assert nps_response_time(ts, ts.by_name("lo")) == pytest.approx(7.0)

    def test_overload_reports_infinite(self):
        ts = TaskSet.from_parameters(
            [
                ("a", 9.0, 0.5, 0.5, 10.0, 10.0),
                ("b", 5.0, 0.0, 0.0, 10.0, 10.0),
            ]
        )
        result = NpsAnalysis().response_time(ts, ts.by_name("b"))
        assert math.isinf(result.wcrt)
        assert not result.converged

    def test_requires_membership(self, tiny_taskset):
        stranger = Task.sporadic("ghost", 1.0, 10.0, priority=99)
        with pytest.raises(AnalysisError):
            nps_response_time(tiny_taskset, stranger)

    def test_self_pushing_job_loop(self):
        # A task whose second job responds worse than the first: the
        # per-job loop must catch it. hi has a long cost relative to T.
        ts = TaskSet.from_parameters(
            [
                ("hi", 6.0, 0.0, 0.0, 10.0, 10.0),
                ("mid", 4.0, 0.0, 0.0, 15.0, 15.0),
            ]
        )
        options = AnalysisOptions(stop_at_deadline=False)
        result = NpsAnalysis(options).response_time(ts, ts.by_name("hi"))
        assert result.details["jobs_in_window"] >= 2
        # Job 0: blocked by mid (4) then runs 6 -> response 10.
        assert result.wcrt == pytest.approx(10.0)


class TestCarryVariant:
    def test_carry_at_least_exact(self, tiny_taskset):
        exact = NpsAnalysis(variant="exact")
        carry = NpsAnalysis(variant="carry")
        for task in tiny_taskset:
            r_exact = exact.response_time(tiny_taskset, task).wcrt
            r_carry = carry.response_time(tiny_taskset, task).wcrt
            assert r_carry >= r_exact - 1e-9

    def test_carry_single_task(self, single_task_set):
        task = single_task_set[0]
        result = NpsAnalysis(variant="carry").response_time(
            single_task_set, task
        )
        assert result.wcrt == pytest.approx(task.total_cost)

    def test_unknown_variant_rejected(self):
        with pytest.raises(AnalysisError):
            NpsAnalysis(variant="quantum")


class TestTaskSetLevel:
    def test_analyze_covers_all_tasks(self, tiny_taskset):
        result = NpsAnalysis().analyze(tiny_taskset)
        assert {r.task.name for r in result.results} == {"hi", "mid", "lo"}

    def test_schedulable_tiny_set(self, tiny_taskset):
        assert NpsAnalysis().is_schedulable(tiny_taskset)

    def test_utilization_overload_short_circuit(self):
        ts = TaskSet.from_parameters(
            [
                ("a", 8.0, 1.0, 1.0, 10.0, 10.0),
                ("b", 8.0, 1.0, 1.0, 10.0, 10.0),
            ]
        )
        assert not NpsAnalysis().is_schedulable(ts)
