"""Unit tests for the platform model."""

import pytest

from repro.errors import ModelError
from repro.model.platform import (
    Core,
    DmaEngine,
    LocalMemory,
    Platform,
    copy_times_from_footprint,
)
from repro.model.task import Task
from repro.model.taskset import TaskSet


class TestLocalMemory:
    def test_partition_is_half(self):
        assert LocalMemory(1024).partition_bytes == 512

    def test_rejects_odd_size(self):
        with pytest.raises(ModelError):
            LocalMemory(1023)

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            LocalMemory(0)

    def test_fits_with_and_without_footprint(self):
        memory = LocalMemory(1024)
        no_fp = Task.sporadic("a", 1.0, 10.0)
        small = Task.sporadic("b", 1.0, 10.0, footprint=512)
        big = Task.sporadic("c", 1.0, 10.0, footprint=513)
        assert memory.fits(no_fp)
        assert memory.fits(small)
        assert not memory.fits(big)


class TestDmaEngine:
    def test_transfer_time_linear(self):
        dma = DmaEngine(bandwidth_bytes_per_ms=1000.0, setup_time=0.5)
        assert dma.transfer_time(2000) == pytest.approx(2.5)

    def test_zero_bytes_is_free(self):
        dma = DmaEngine(1000.0, setup_time=0.5)
        assert dma.transfer_time(0) == 0.0

    def test_rejects_negative_bytes(self):
        with pytest.raises(ModelError):
            DmaEngine(1000.0).transfer_time(-1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            DmaEngine(0.0)
        with pytest.raises(ModelError):
            DmaEngine(10.0, setup_time=-1.0)


class TestPlatform:
    def test_homogeneous_builder(self):
        platform = Platform.homogeneous(4)
        assert platform.num_cores == 4
        assert [c.index for c in platform.cores] == [0, 1, 2, 3]

    def test_rejects_bad_indices(self):
        memory, dma = LocalMemory(1024), DmaEngine(1000.0)
        with pytest.raises(ModelError):
            Platform((Core(0, memory, dma), Core(2, memory, dma)))

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            Platform(())

    def test_rejects_negative_core_index(self):
        with pytest.raises(ModelError):
            Core(-1, LocalMemory(1024), DmaEngine(1000.0))

    def test_validate_taskset_flags_oversized(self):
        platform = Platform.homogeneous(1, memory_bytes=1024)
        core = platform.cores[0]
        ts = TaskSet(
            [
                Task.sporadic("ok", 1.0, 10.0, priority=0, footprint=500),
                Task.sporadic("big", 1.0, 10.0, priority=1, footprint=600),
            ]
        )
        with pytest.raises(ModelError, match="big"):
            platform.validate_taskset(core, ts)


class TestCopyTimesFromFootprint:
    @pytest.fixture
    def core(self):
        return Core(0, LocalMemory(64 * 1024), DmaEngine(1024.0, setup_time=0.1))

    def test_derivation(self, core):
        copy_in, copy_out = copy_times_from_footprint(2048, 1024, core)
        assert copy_in == pytest.approx(0.1 + 2.0)
        assert copy_out == pytest.approx(0.1 + 1.0)

    def test_rejects_footprint_over_partition(self, core):
        with pytest.raises(ModelError):
            copy_times_from_footprint(64 * 1024, 10, core)

    def test_rejects_output_exceeding_footprint(self, core):
        with pytest.raises(ModelError):
            copy_times_from_footprint(1024, 2048, core)

    def test_rejects_nonpositive_footprint(self, core):
        with pytest.raises(ModelError):
            copy_times_from_footprint(0, 0, core)
