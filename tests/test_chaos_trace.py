"""Chaos: corrupted JSONL trace lines and the lenient reader.

The ``trace.corrupt`` site garbles a line as :class:`TraceWriter`
appends it — ``truncate`` writes only a prefix with no newline (the
crash-mid-append signature; the next append glues onto it), ``garbage``
writes a non-JSON line. Contract: the strict reader refuses the file,
the lenient reader recovers every intact event and reports exactly what
was lost via :class:`TraceCorruption`, and every injection left a
schema-valid ``fault.trace.corrupt`` marker *before* the damage.
"""

import json

import pytest

from repro.errors import ObservabilityError
from repro.experiments import ExperimentConfig, SweepPoint, run_experiment
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.generator.taskset_gen import GenerationConfig
from repro.obs import (
    TraceWriter,
    profile_trace,
    read_trace,
    read_trace_lenient,
    validate_event,
)


def _write_clean(path, count=4):
    with TraceWriter(path, run_id="r1") as writer:
        for index in range(count):
            writer.emit("unit.start", point=0, unit=index)


class TestInjectedCorruption:
    def test_garbage_line_mid_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        plan = FaultPlan(
            specs=(FaultSpec(site="trace.corrupt", mode="garbage", after=1),),
            name="garble",
        )
        with injecting(plan):
            _write_clean(path, count=4)
        with pytest.raises(ObservabilityError, match="invalid JSON"):
            read_trace(path)
        events, corruption = read_trace_lenient(path)
        assert corruption.bad_json == 1
        assert corruption.truncated_final == 0
        assert corruption.total == 1
        # Three of the four events survived, plus the injection marker.
        assert [e["name"] for e in events].count("unit.start") == 3
        markers = [e for e in events if e["name"] == "fault.trace.corrupt"]
        assert len(markers) == 1
        assert validate_event(markers[0]) == []
        assert markers[0]["f"] == {"mode": "garbage", "name": "unit.start"}

    def test_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        plan = FaultPlan(
            specs=(
                FaultSpec(site="trace.corrupt", mode="truncate", after=3),
            ),
            name="tear-last",
        )
        with injecting(plan):
            _write_clean(path, count=4)
        assert not path.read_text().endswith("\n")  # torn mid-append
        events, corruption = read_trace_lenient(path)
        assert corruption.bad_json == 1
        assert corruption.truncated_final == 1
        assert [e["name"] for e in events].count("unit.start") == 3

    def test_truncated_middle_line_glues_onto_next(self, tmp_path):
        # A mid-file truncation has no newline, so the following append
        # glues onto it: one corrupt physical line, two lost records.
        path = tmp_path / "t.jsonl"
        plan = FaultPlan(
            specs=(
                FaultSpec(site="trace.corrupt", mode="truncate", after=1),
            ),
            name="tear-mid",
        )
        with injecting(plan):
            _write_clean(path, count=4)
        events, corruption = read_trace_lenient(path)
        assert corruption.bad_json == 1
        assert corruption.truncated_final == 0
        assert [e["name"] for e in events].count("unit.start") == 2


class TestLenientReader:
    def test_version_mismatch_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_clean(path, count=2)
        with open(path, "a") as handle:
            handle.write(
                json.dumps({"v": 99, "name": "future.event", "t": 0.0}) + "\n"
            )
        with pytest.raises(ObservabilityError, match="invalid trace event"):
            read_trace(path)
        events, corruption = read_trace_lenient(path)
        assert corruption.version_mismatch == 1
        assert len(events) == 2

    def test_invalid_schema_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_clean(path, count=2)
        with open(path, "a") as handle:
            handle.write(json.dumps({"v": 1, "name": "x"}) + "\n")  # no t
            handle.write(json.dumps(["not", "an", "object"]) + "\n")
        _, corruption = read_trace_lenient(path)
        assert corruption.invalid_schema == 2

    def test_clean_trace_has_zero_counters(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_clean(path)
        events, corruption = read_trace_lenient(path)
        assert corruption.total == 0
        assert corruption.truncated_final == 0
        assert events == read_trace(path)

    def test_profile_renders_corruption_section(self, tmp_path):
        path = tmp_path / "t.jsonl"
        plan = FaultPlan(
            specs=(FaultSpec(site="trace.corrupt", mode="garbage", after=1),),
            name="garble",
        )
        with injecting(plan):
            _write_clean(path, count=4)
        rendered = profile_trace(str(path), lenient=True)
        assert "trace corruption" in rendered
        assert "bad_json" in rendered


class TestEndToEnd:
    @pytest.fixture
    def config(self):
        return ExperimentConfig(
            name="chaos-trace",
            x_label="U",
            points=(
                SweepPoint(
                    0.3, GenerationConfig(n=3, utilization=0.3, gamma=0.1)
                ),
            ),
            sets_per_point=2,
            seed=7,
            method="closed_form",
        )

    def test_sweep_survives_trace_corruption(self, config, tmp_path):
        baseline = run_experiment(config)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="trace.corrupt", mode="garbage", after=5, times=2
                ),
            ),
            name="garble-sweep",
        )
        trace = tmp_path / "trace.jsonl"
        result = run_experiment(
            config, fault_plan=plan, trace_path=str(trace)
        )
        # The run's *results* are untouched — only the log is damaged.
        assert [p.ratios for p in result.points] == [
            p.ratios for p in baseline.points
        ]
        with pytest.raises(ObservabilityError):
            read_trace(trace)
        events, corruption = read_trace_lenient(trace)
        assert corruption.bad_json == 2
        markers = [e for e in events if e["name"] == "fault.trace.corrupt"]
        assert len(markers) == 2
        # Counters reconcile modulo the corruption: exactly as many
        # events are missing as the reader counted corrupt.
        clean_trace = tmp_path / "clean.jsonl"
        run_experiment(config, trace_path=str(clean_trace))
        clean_events = read_trace(clean_trace)
        assert len(events) - len(markers) == len(clean_events) - corruption.total
