"""Regression tests for bugs found during development.

Each test reconstructs the exact triggering instance deterministically
(seeded generators) so the guard stays meaningful.
"""

import numpy as np
import pytest

from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.analysis.wasly import WaslyAnalysis
from repro.analysis.interface import AnalysisOptions
from repro.generator import GenerationConfig, generate_tasksets
from repro.milp import HighsBackend, SolveStatus
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.interval_sim import WaslySimulator
from repro.sim.releases import sporadic_plan


class TestHighsPresolveWorkaround:
    def test_presolve_crashing_instance_solves(self):
        """Some HiGHS builds fail (status 4) in presolve on this delay
        MILP; the backend must fall back to presolve-off and succeed.

        Instance: seed-42 workload #3, task t2, second fixpoint window.
        """
        cfg = GenerationConfig(n=6, utilization=0.5, gamma=0.3, beta=0.5)
        ts = list(generate_tasksets(cfg, 4, seed=42))[3]
        task = ts.by_name("t2")
        first = build_delay_milp(
            ts, task, task.copy_in, AnalysisMode.NLS
        ).model.solve(HighsBackend())
        assert first.status is SolveStatus.OPTIMAL
        window = first.objective - task.exec_time
        built = build_delay_milp(ts, task, window, AnalysisMode.NLS)
        solution = built.model.solve(HighsBackend())
        assert solution.status is SolveStatus.OPTIMAL
        assert np.isfinite(solution.objective)


class TestReleaseBubbleSoundness:
    def test_bubble_schedule_within_bound(self):
        """The release-bubble schedule that broke the naive
        ``min(2,|lp|)`` interval count: a mid-interval release whose
        copy-in runs with an idle CPU (sim observed 1.0337 vs a 1.0
        bound before the fix)."""
        ts = TaskSet(
            [
                Task.sporadic("t0", exec_time=0.5, period=8.0,
                              deadline=8.0, priority=0),
                Task.sporadic("t1", exec_time=0.5, period=8.8,
                              deadline=8.8, copy_in=0.05, copy_out=0.05,
                              priority=1),
            ]
        )
        rng = np.random.default_rng(0)
        plan = sporadic_plan(ts, 400.0, rng)
        trace = WaslySimulator(ts).run(plan)
        analysis = WaslyAnalysis(AnalysisOptions(stop_at_deadline=False))
        for task in ts:
            bound = analysis.response_time(ts, task).wcrt
            assert trace.max_response_time(task.name) <= bound + 1e-6

    def test_bubble_costs_one_extra_interval(self):
        """With exactly one lp task the interval count still charges
        two structural intervals (blocking OR bubble can each occur)."""
        from repro.analysis.proposed.intervals import interval_count_nls

        ts = TaskSet(
            [
                Task.sporadic("hi", exec_time=1.0, period=10.0,
                              deadline=9.0, priority=0),
                Task.sporadic("lo", exec_time=2.0, period=20.0,
                              deadline=19.0, priority=1),
            ]
        )
        hi = ts.by_name("hi")
        # no hp tasks: N = 0 + 2 (blocking/bubble) + 1 (execution)
        assert interval_count_nls(ts, hi, 5.0) == 3


class TestDualBoundAtOptimality:
    def test_time_limited_optimal_solve_keeps_incumbent(self):
        """use_dual_bound once corrupted *optimal* objectives with
        stale HiGHS dual bounds, flattening every experiment to zero;
        the dual bound may only be used on genuine early stops."""
        from repro.milp import MilpModel

        m = MilpModel()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y <= 1)
        m.maximize(2 * x + 3 * y)
        sol = m.solve(HighsBackend(time_limit=60.0, use_dual_bound=True))
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)
