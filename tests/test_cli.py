"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_taskset_csv, main
from repro.errors import ReproError

CSV = """name,C,l,u,T,D
a,1.0,0.2,0.2,10.0,9.0
b,2.0,0.3,0.3,20.0,18.0
"""

BAD_CSV = """task,wcet
a,1.0
"""


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "ts.csv"
    path.write_text(CSV)
    return str(path)


class TestLoadCsv:
    def test_loads_and_prioritizes(self, csv_file):
        ts = load_taskset_csv(csv_file)
        assert len(ts) == 2
        assert ts.by_name("a").priority < ts.by_name("b").priority

    def test_rejects_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(BAD_CSV)
        with pytest.raises(ReproError):
            load_taskset_csv(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self, csv_file):
        args = build_parser().parse_args(["analyze", csv_file])
        assert args.protocol == "proposed"
        assert args.method == "milp"

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9z"])


class TestCommands:
    def test_analyze_schedulable_exit_zero(self, csv_file, capsys):
        code = main(["analyze", csv_file, "--protocol", "nps"])
        out = capsys.readouterr().out
        assert code == 0
        assert "schedulable: True" in out

    def test_analyze_proposed_greedy(self, csv_file, capsys):
        code = main(["analyze", csv_file])
        assert code == 0
        assert "WCRT" in capsys.readouterr().out

    def test_analyze_unschedulable_exit_one(self, tmp_path, capsys):
        path = tmp_path / "tight.csv"
        path.write_text(
            "name,C,l,u,T,D\n"
            "tight,1.0,0.1,0.1,10.0,1.05\n"
            "heavy,8.0,0.8,0.8,20.0,20.0\n"
        )
        code = main(["analyze", str(path), "--protocol", "nps"])
        assert code == 1

    def test_simulate_synchronous(self, csv_file, capsys):
        code = main(
            ["simulate", csv_file, "--protocol", "wasly", "--horizon", "60"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CPU |" in out
        assert "deadline misses: 0" in out

    def test_simulate_with_ls_marks(self, csv_file, capsys):
        code = main(
            ["simulate", csv_file, "--protocol", "proposed", "--ls", "a",
             "--horizon", "60"]
        )
        assert code == 0

    def test_simulate_sporadic_pattern(self, csv_file):
        code = main(
            ["simulate", csv_file, "--pattern", "sporadic", "--seed", "3",
             "--horizon", "80"]
        )
        assert code == 0

    def test_figure_tiny_run(self, capsys, tmp_path):
        csv_out = tmp_path / "series.csv"
        code = main(
            ["figure", "fig2e", "--sets", "2", "--method", "closed_form",
             "--csv", str(csv_out)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "schedulability ratio" in out
        assert csv_out.exists()

    def test_figure_checkpoint_and_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "ck.json"
        base = ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
                "--checkpoint", str(checkpoint)]
        assert main(base) == 0
        assert checkpoint.exists()
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "schedulability ratio" in out

    def test_figure_failure_policy_flag(self, capsys):
        code = main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--failure-policy", "skip"]
        )
        assert code == 0

    def test_figure_rejects_unknown_failure_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figure", "fig2e", "--failure-policy", "explode"]
            )

    def test_figure_trace_and_profile_reconcile(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        checkpoint = tmp_path / "ck.json"
        code = main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--trace", str(trace), "--checkpoint", str(checkpoint)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace written to" in out
        assert trace.exists()
        code = main(
            ["profile", str(trace), "--checkpoint", str(checkpoint)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "work events" in out
        assert "reconciles" in out

    def test_profile_reports_mismatch(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        checkpoint = tmp_path / "ck.json"
        assert main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--trace", str(trace), "--checkpoint", str(checkpoint)]
        ) == 0
        # Drop the cache events: the counters can no longer reconcile.
        kept = [
            line
            for line in trace.read_text().splitlines()
            if '"cache.' not in line
        ]
        trace.write_text("\n".join(kept) + "\n")
        capsys.readouterr()
        code = main(["profile", str(trace), "--checkpoint", str(checkpoint)])
        out = capsys.readouterr().out
        assert code == 1
        assert "MISMATCH" in out

    def test_profile_no_timings_is_deterministic_form(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["figure", "fig2e", "--sets", "1", "--method", "closed_form",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["profile", str(trace), "--no-timings"]) == 0
        out = capsys.readouterr().out
        assert "work events" in out
        assert "timings" not in out

    def test_profile_missing_trace_errors(self, capsys):
        code = main(["profile", "/nonexistent/trace.jsonl"])
        assert code in (1, 2)

    def test_cache_stats_gc_clear_roundtrip(self, capsys, tmp_path):
        from repro.analysis.store import PersistentStore

        db = tmp_path / "cache.sqlite"
        store = PersistentStore(db)
        for i in range(5):
            store.store(f"digest-{i}", ("lp", 10.0 + i))
        store.store("digest-exact", ("milp", 40.25, 6, {"rows": 9}, 0))
        store.close()

        assert main(["cache", "stats", str(db)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "exact_entries" in out
        assert "schema_version" in out

        assert main(["cache", "gc", str(db), "--keep", "2"]) == 0
        assert "removed 4" in capsys.readouterr().out

        assert main(["cache", "clear", str(db)]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_cache_missing_database_errors(self, capsys, tmp_path):
        missing = tmp_path / "nope.sqlite"
        assert main(["cache", "stats", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err
        # gc/clear must not create an empty store at a typo'd path.
        assert main(["cache", "gc", str(missing)]) == 2
        capsys.readouterr()
        assert not missing.exists()

    def test_demo_runs(self, capsys):
        code = main(["demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MISSES" in out

    def test_missing_file_reports_error(self, capsys):
        code = main(["analyze", "/nonexistent/file.csv"])
        assert code == 2 or code == 1  # ReproError or OS error path

    def test_sensitivity_command(self, csv_file, capsys):
        code = main(
            ["sensitivity", csv_file, "--protocol", "nps",
             "--tolerance", "0.1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "critical factor" in out

    def test_metrics_command(self, csv_file, capsys):
        code = main(
            ["metrics", csv_file, "--protocol", "wasly",
             "--horizon", "200"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CPU busy" in out

    def test_witness_command(self, csv_file, capsys):
        code = main(["witness", csv_file, "b"])
        out = capsys.readouterr().out
        assert code == 0
        assert "worst-case window for b" in out

    def test_witness_with_ls_mark(self, csv_file, capsys):
        code = main(["witness", csv_file, "a", "--ls", "a"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode=ls_a" in out
