"""Cross-module integration scenarios (end-to-end stories)."""

import numpy as np
import pytest

from repro import (
    Platform,
    TaskSet,
    analyze_taskset,
    greedy_ls_assignment,
    is_schedulable,
    partition_tasks,
)
from repro.analysis.interface import AnalysisOptions
from repro.analysis.proposed import ProposedAnalysis
from repro.generator import (
    GenerationConfig,
    generate_platform_taskset,
    generate_taskset,
)
from repro.sim import (
    ProposedSimulator,
    check_trace,
    sporadic_plan,
)


class TestQuickstartStory:
    """The README workload: proposed wins where both baselines fail."""

    @pytest.fixture
    def taskset(self):
        return TaskSet.from_parameters(
            [
                ("control", 1.0, 0.20, 0.20, 10.0, 7.0),
                ("camera", 2.0, 0.60, 0.40, 12.0, 11.5),
                ("fusion", 2.5, 0.50, 0.50, 20.0, 19.0),
                ("logger", 4.0, 1.20, 1.20, 50.0, 45.0),
            ]
        )

    def test_nps_fails(self, taskset):
        assert not is_schedulable(taskset, "nps")

    def test_wasly_fails(self, taskset):
        assert not is_schedulable(taskset, "wasly")

    def test_proposed_succeeds_with_greedy(self, taskset):
        assert is_schedulable(taskset, "proposed", ls_policy="greedy")

    def test_greedy_marks_control(self, taskset):
        outcome = greedy_ls_assignment(taskset)
        assert outcome.schedulable
        assert "control" in outcome.ls_names

    def test_marked_set_simulates_cleanly(self, taskset):
        outcome = greedy_ls_assignment(taskset)
        marked = outcome.taskset
        rng = np.random.default_rng(3)
        trace = ProposedSimulator(marked).run(
            sporadic_plan(marked, 500.0, rng)
        )
        check_trace(trace)
        assert not trace.deadline_misses()


class TestGeneratedWorkloadPipeline:
    """generator -> analysis -> simulation consistency."""

    def test_full_pipeline_one_seed(self):
        rng = np.random.default_rng(99)
        taskset = generate_taskset(
            GenerationConfig(n=5, utilization=0.3, gamma=0.2, beta=0.8), rng
        )
        result = analyze_taskset(taskset, "proposed", ls_policy="greedy")
        if result.schedulable:
            plan = sporadic_plan(taskset, 300.0, rng)
            final_set = result.taskset
            trace = ProposedSimulator(final_set).run(plan)
            assert not trace.deadline_misses()

    def test_analysis_options_time_limit_is_safe(self):
        # A harshly capped solve must only make the bound larger.
        rng = np.random.default_rng(5)
        taskset = generate_taskset(
            GenerationConfig(n=5, utilization=0.35, gamma=0.3), rng
        )
        task = taskset[len(taskset) - 1]
        free = ProposedAnalysis(
            AnalysisOptions(stop_at_deadline=False)
        ).response_time(taskset, task)
        capped = ProposedAnalysis(
            AnalysisOptions(stop_at_deadline=False, time_limit=0.05)
        ).response_time(taskset, task)
        assert capped.wcrt >= free.wcrt - 1e-6


class TestMulticoreStory:
    """Platform-aware generation, partitioning, per-core analysis."""

    def test_partition_then_analyze_each_core(self):
        platform = Platform.homogeneous(2, memory_bytes=256 * 1024)
        rng = np.random.default_rng(17)
        taskset = generate_platform_taskset(
            n=8, utilization=0.7, core=platform.cores[0], rng=rng
        )
        result = partition_tasks(taskset, platform, "worst_fit")
        analysed = 0
        for idx, core_set in enumerate(result.assignments):
            if core_set is None:
                continue
            platform.validate_taskset(platform.cores[idx], core_set)
            is_schedulable(core_set, "proposed", method="closed_form")
            analysed += 1
        assert analysed >= 1
        placed = sum(
            len(cs) for cs in result.assignments if cs is not None
        )
        assert placed == 8
