"""The analysis memo cache: storage semantics, keys, and solve savings."""

import pytest

from repro.analysis.cache import (
    AnalysisCache,
    active_cache,
    cache_scope,
    case_b_key,
    delay_milp_key,
)
from repro.analysis.interface import AnalysisOptions
from repro.analysis.ls_assignment import greedy_ls_assignment
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.generator.taskset_gen import GenerationConfig, generate_tasksets
from repro.model.taskset import TaskSet

_SIG = ("milp", "highs", None, None, "None")


@pytest.fixture
def ts():
    return TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
            ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
        ]
    )


class TestStorage:
    def test_hit_and_miss_counting(self):
        cache = AnalysisCache()
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.counters == {"misses": 1, "hits": 1}
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        cache = AnalysisCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AnalysisCache(capacity=0)

    def test_disabled_cache_never_stores(self):
        cache = AnalysisCache(enabled=False)
        cache.put("k", 42)
        assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    def test_stats_include_all_counters(self):
        cache = AnalysisCache()
        stats = cache.stats()
        for name in (
            "hits", "misses", "milp_solves", "lp_solves",
            "closed_form_screens", "lp_screens",
        ):
            assert stats[name] == 0

    def test_put_never_downgrades_entry_rank(self):
        # Regression pin: an LP screening bound must not overwrite an
        # exact MILP value (mirrors the store's rank-guarded upsert).
        cache = AnalysisCache()
        cache.put("k", ("milp", 5.0))
        cache.put("k", ("lp", 7.0))
        assert cache.get("k") == ("milp", 5.0)

    def test_put_upgrades_lp_to_milp(self):
        cache = AnalysisCache()
        cache.put("k", ("lp", 7.0))
        cache.put("k", ("milp", 5.0))
        assert cache.get("k") == ("milp", 5.0)

    def test_put_keeps_exact_value_over_lp_bound(self):
        cache = AnalysisCache()
        cache.put("k", 5.0)
        cache.put("k", ("lp", 7.0))
        assert cache.get("k") == 5.0

    def test_clear_resets_entries_and_counters(self):
        cache = AnalysisCache()
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.counters == {}
        assert cache.hit_rate == 0.0


class TestScoping:
    def test_no_scope_by_default(self):
        assert active_cache() is None

    def test_scope_installs_and_pops(self):
        with cache_scope() as outer:
            assert active_cache() is outer
            inner_cache = AnalysisCache()
            with cache_scope(inner_cache):
                assert active_cache() is inner_cache
            assert active_cache() is outer
        assert active_cache() is None

    def test_analysis_adopts_scoped_cache(self, ts):
        with cache_scope() as cache:
            analysis = ProposedAnalysis()
            assert analysis.cache is cache
        outside = ProposedAnalysis()
        assert outside.cache is not cache

    def test_explicit_cache_wins_over_scope(self, ts):
        mine = AnalysisCache()
        with cache_scope():
            analysis = ProposedAnalysis(cache=mine)
            assert analysis.cache is mine


class TestKeys:
    def test_key_is_content_addressed_not_name_addressed(self, ts):
        renamed = TaskSet.from_parameters(
            [
                ("x", 1.0, 0.2, 0.2, 10.0, 9.0),
                ("y", 2.0, 0.3, 0.3, 20.0, 16.0),
                ("z", 3.0, 0.4, 0.4, 40.0, 36.0),
            ]
        )
        key_a = delay_milp_key(ts, ts[1], "nls", 5, (2, 1), 0, None, _SIG)
        key_b = delay_milp_key(
            renamed, renamed[1], "nls", 5, (2, 1), 0, None, _SIG
        )
        assert key_a == key_b

    def test_key_distinguishes_task_parameters(self, ts):
        other = TaskSet.from_parameters(
            [
                ("a", 1.5, 0.2, 0.2, 10.0, 9.0),  # different exec time
                ("b", 2.0, 0.3, 0.3, 20.0, 16.0),
                ("c", 3.0, 0.4, 0.4, 40.0, 36.0),
            ]
        )
        key_a = delay_milp_key(ts, ts[1], "nls", 5, (2, 1), 0, None, _SIG)
        key_b = delay_milp_key(other, other[1], "nls", 5, (2, 1), 0, None, _SIG)
        assert key_a != key_b

    def test_key_distinguishes_window_staircases(self, ts):
        base = delay_milp_key(ts, ts[1], "nls", 5, (2, 1), 0, None, _SIG)
        assert base != delay_milp_key(ts, ts[1], "nls", 6, (2, 1), 0, None, _SIG)
        assert base != delay_milp_key(ts, ts[1], "nls", 5, (3, 1), 0, None, _SIG)
        assert base != delay_milp_key(ts, ts[1], "nls", 5, (2, 1), 1, None, _SIG)
        assert base != delay_milp_key(ts, ts[1], "ls_a", 5, (2, 1), 0, None, _SIG)

    def test_key_distinguishes_solver_signature(self, ts):
        other_sig = ("milp", "highs", 5.0, None, "None")
        key_a = delay_milp_key(ts, ts[1], "nls", 5, (2, 1), 0, None, _SIG)
        key_b = delay_milp_key(ts, ts[1], "nls", 5, (2, 1), 0, None, other_sig)
        assert key_a != key_b

    def test_case_b_key_stable(self, ts):
        marked = ts.with_ls_marks(("a",))
        task = marked.by_name("a")
        assert case_b_key(marked, task, _SIG) == case_b_key(marked, task, _SIG)


class TestBitIdentity:
    """Cached results equal the uncached seed behaviour exactly."""

    def test_wcrt_bit_identical_with_and_without_cache(self, ts):
        wcrts = {}
        for enabled in (True, False):
            analysis = ProposedAnalysis(cache=AnalysisCache(enabled=enabled))
            wcrts[enabled] = [analysis.response_time(ts, t).wcrt for t in ts]
        assert wcrts[True] == wcrts[False]

    def test_repeated_analysis_hits_and_matches(self, ts):
        cache = AnalysisCache()
        analysis = ProposedAnalysis(cache=cache)
        first = [analysis.response_time(ts, t).wcrt for t in ts]
        solves_after_first = cache.stats()["milp_solves"]
        second = [analysis.response_time(ts, t).wcrt for t in ts]
        assert first == second
        assert cache.stats()["hits"] > 0
        # The second pass is answered from the cache alone.
        assert cache.stats()["milp_solves"] == solves_after_first

    def test_verdicts_bit_identical_with_and_without_cache(self, ts):
        verdicts = {}
        for enabled in (True, False):
            analysis = ProposedAnalysis(cache=AnalysisCache(enabled=enabled))
            verdicts[enabled] = [analysis.verdict(ts, t) for t in ts]
        assert verdicts[True] == verdicts[False]

    def test_iteration_details_report_cache_hits(self, ts):
        cache = AnalysisCache()
        analysis = ProposedAnalysis(cache=cache)
        task = ts.by_name("c")
        analysis.response_time(ts, task)
        details = analysis.response_time(ts, task).details
        assert details["cache_hits"] > 0
        assert details["solves"] == 0


class TestGreedySolveSavings:
    """Acceptance: greedy LS on a 10-task set does strictly fewer solves."""

    @pytest.fixture
    def ten_task_set(self):
        config = GenerationConfig(n=10, utilization=0.3, gamma=0.1)
        return list(generate_tasksets(config, 4, 2020))[3]

    def test_strictly_fewer_milp_solves_same_outcome(self, ten_task_set):
        outcomes = {}
        stats = {}
        for enabled in (True, False):
            cache = AnalysisCache(enabled=enabled)
            with cache_scope(cache):
                out = greedy_ls_assignment(ten_task_set, collect_results=False)
            outcomes[enabled] = (out.schedulable, out.ls_names, out.rounds)
            stats[enabled] = cache.stats()
        # Same schedulability verdict, same LS marks, same round count...
        assert outcomes[True] == outcomes[False]
        # ...with strictly fewer MILP solves than the uncached seed path.
        assert stats[True]["milp_solves"] < stats[False]["milp_solves"]
        assert stats[True]["hits"] > 0
        assert stats[False]["hits"] == 0

    def test_greedy_multi_round_exercises_cache(self, ten_task_set):
        cache = AnalysisCache()
        with cache_scope(cache):
            out = greedy_ls_assignment(ten_task_set, collect_results=False)
        # The pinned seed needs several greedy rounds (two LS marks),
        # so re-analyses of unchanged tasks populate and hit the cache.
        assert out.rounds >= 3
        assert len(out.ls_names) == 2


class TestLpMethodCaching:
    def test_lp_method_counts_lp_solves(self, ts):
        cache = AnalysisCache()
        analysis = ProposedAnalysis(
            AnalysisOptions(), method="lp", cache=cache
        )
        analysis.response_time(ts, ts.by_name("b"))
        stats = cache.stats()
        assert stats["lp_solves"] > 0
        assert stats["milp_solves"] == 0
