"""HiGHS failure paths: presolve retry, status mapping, typed errors."""

import numpy as np
import pytest

import repro.milp.highs as highs_module
from repro.errors import (
    BackendUnavailableError,
    SolverError,
    SolverTimeoutError,
)
from repro.milp import HighsBackend, MilpModel, SolveStatus
from repro.milp.highs import _SCIPY_STATUS


def _model():
    m = MilpModel("probe")
    x = m.var("x", 0.0, 1.0, integer=True)
    y = m.var("y", 0.0, 2.0)
    m.add(x + y <= 2.0)
    m.maximize(x + y)
    return m


class _FakeResult:
    def __init__(self, status, x=None, mip_dual_bound=None):
        self.status = status
        self.x = x
        self.mip_dual_bound = mip_dual_bound


def _patch_milp(monkeypatch, results):
    """Make scipy's milp return canned results, recording the options."""
    calls = []

    def fake_milp(c, constraints=None, bounds=None, integrality=None, options=None):
        calls.append(options or {})
        return results[min(len(calls), len(results)) - 1]

    monkeypatch.setattr(highs_module, "milp", fake_milp)
    return calls


class TestStatusMapping:
    def test_scipy_status_table(self):
        assert _SCIPY_STATUS == {
            0: SolveStatus.OPTIMAL,
            1: SolveStatus.TIME_LIMIT,
            2: SolveStatus.INFEASIBLE,
            3: SolveStatus.UNBOUNDED,
            4: SolveStatus.ERROR,
        }

    def test_infeasible_passes_through(self, monkeypatch):
        _patch_milp(monkeypatch, [_FakeResult(status=2)])
        solution = HighsBackend().solve(_model())
        assert solution.status is SolveStatus.INFEASIBLE

    def test_unknown_status_raises_backend_unavailable(self, monkeypatch):
        _patch_milp(monkeypatch, [_FakeResult(status=99)])
        with pytest.raises(BackendUnavailableError):
            HighsBackend().solve(_model())


class TestPresolveRetry:
    def test_status_4_retries_without_presolve(self, monkeypatch):
        calls = _patch_milp(
            monkeypatch,
            [
                _FakeResult(status=4),
                _FakeResult(status=0, x=np.array([1.0, 1.0])),
            ],
        )
        solution = HighsBackend().solve(_model())
        assert solution.status is SolveStatus.OPTIMAL
        assert len(calls) == 2
        assert calls[0].get("presolve") is None
        assert calls[1]["presolve"] is False

    def test_status_4_walks_the_full_option_ladder(self, monkeypatch):
        # presolve off, then tighter feasibility tolerance, then both.
        calls = _patch_milp(
            monkeypatch,
            [
                _FakeResult(status=4),
                _FakeResult(status=4),
                _FakeResult(status=4),
                _FakeResult(status=0, x=np.array([1.0, 1.0])),
            ],
        )
        solution = HighsBackend().solve(_model())
        assert solution.status is SolveStatus.OPTIMAL
        assert len(calls) == 4
        assert calls[1] == {"presolve": False}
        assert calls[2] == {"mip_feasibility_tolerance": 1e-7}
        assert calls[3] == {
            "presolve": False,
            "mip_feasibility_tolerance": 1e-7,
        }

    def test_status_4_retries_are_traced(self, monkeypatch):
        from repro.obs import recording

        _patch_milp(
            monkeypatch,
            [
                _FakeResult(status=4),
                _FakeResult(status=0, x=np.array([1.0, 1.0])),
            ],
        )
        with recording() as recorder:
            HighsBackend().solve(_model())
        by_name = {}
        for event in recorder.events:
            by_name.setdefault(event["name"], []).append(event)
        assert len(by_name["highs.retry"]) == 1
        assert by_name["highs.retry"][0]["f"]["options"] == {"presolve": False}
        (solve,) = by_name["highs.solve"]
        assert solve["f"]["scipy_status"] == 0
        assert solve["f"]["rows"] == 1 and solve["f"]["vars"] == 2

    def test_exhausted_ladder_raises_with_model_stats(self, monkeypatch):
        calls = _patch_milp(monkeypatch, [_FakeResult(status=4)])
        with pytest.raises(BackendUnavailableError) as excinfo:
            HighsBackend().solve(_model())
        assert len(calls) == 4  # initial attempt + three ladder rungs
        message = str(excinfo.value)
        assert "rows=1" in message
        assert "vars=2" in message
        assert "elapsed=" in message
        assert "'probe'" in message


class TestTimeoutWithoutIncumbent:
    def test_status_1_with_no_x_raises_timeout(self, monkeypatch):
        _patch_milp(monkeypatch, [_FakeResult(status=1, x=None)])
        with pytest.raises(SolverTimeoutError) as excinfo:
            HighsBackend(time_limit=0.5).solve(_model())
        message = str(excinfo.value)
        assert "no incumbent" in message
        assert "rows=1" in message and "vars=2" in message

    def test_new_errors_are_solver_errors(self):
        assert issubclass(SolverTimeoutError, SolverError)
        assert issubclass(BackendUnavailableError, SolverError)


class TestExtraOptions:
    def test_extra_options_reach_the_solver(self, monkeypatch):
        calls = _patch_milp(
            monkeypatch, [_FakeResult(status=0, x=np.array([0.0, 2.0]))]
        )
        HighsBackend(extra_options={"presolve": False}).solve(_model())
        assert calls[0]["presolve"] is False
