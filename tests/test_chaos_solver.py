"""Chaos: injected solver faults are absorbed by the resilient backend.

The ``solver.fault`` site fires inside ``ResilientBackend._guarded`` —
one solve *attempt* misbehaves (crash, hang, garbage answer) — and the
retry machinery must absorb it: same exact backend on retry, same
optimum, bit-identical sweep results. Also pins the capped + jittered
backoff schedule and its exposure in ``MilpSolution.details``
(satellite: the schedule used to grow without bound).
"""

import math

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.experiments import ExperimentConfig, SweepPoint, run_experiment
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.generator.taskset_gen import GenerationConfig
from repro.milp import (
    DegradationLevel,
    HighsBackend,
    ResilienceConfig,
    ResilientBackend,
    SolveStatus,
)
from repro.obs import read_trace


@pytest.fixture
def reference_milp():
    from repro.analysis.proposed.formulation import (
        AnalysisMode,
        build_delay_milp,
    )
    from repro.model.taskset import TaskSet

    taskset = TaskSet.from_parameters(
        [
            ("a", 1.0, 0.2, 0.2, 10.0, 9.0),
            ("b", 2.0, 0.4, 0.4, 20.0, 16.0),
        ]
    )
    task = taskset.by_name("b")
    window = task.deadline - task.exec_time - task.copy_out
    return build_delay_milp(taskset, task, window, AnalysisMode.NLS).model


def _backend(**overrides):
    defaults = dict(
        max_retries=2,
        backoff_base=0.0,
        backoff_jitter=0.0,
        sleep=lambda s: None,
    )
    defaults.update(overrides)
    return ResilientBackend(HighsBackend(), **defaults)


class TestInjectedSolverFaults:
    @pytest.mark.parametrize("mode", ["crash", "timeout", "garbage"])
    def test_one_injected_fault_is_retried_away(self, reference_milp, mode):
        plan = FaultPlan(
            specs=(FaultSpec(site="solver.fault", mode=mode),), name="s"
        )
        clean = _backend().solve(reference_milp)
        with injecting(plan) as scope:
            solution = _backend().solve(reference_milp)
        assert [f.mode for f in scope.fired] == [mode]
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.degradation is DegradationLevel.EXACT
        assert solution.objective == pytest.approx(clean.objective)
        # The retry is visible, not silent.
        assert solution.details["retries"] == 1

    def test_persistent_faults_exhaust_into_failure(self, reference_milp):
        from repro.errors import BackendUnavailableError

        plan = FaultPlan(
            specs=(FaultSpec(site="solver.fault", mode="crash", times=None),),
            name="always",
        )
        backend = _backend(max_retries=1)
        with injecting(plan):
            # The fallback rungs are injected too (same _guarded path),
            # so with no closed form the whole chain exhausts.
            with pytest.raises(BackendUnavailableError, match="exhausted"):
                backend.solve(reference_milp)

    def test_garbage_solution_never_escapes(self, reference_milp):
        # Even when every attempt returns OPTIMAL-with-NaN, the wrapper
        # must not hand the caller a non-finite objective.
        from repro.errors import BackendUnavailableError

        plan = FaultPlan(
            specs=(
                FaultSpec(site="solver.fault", mode="garbage", times=None),
            ),
            name="liar",
        )
        with injecting(plan):
            try:
                solution = _backend(max_retries=1).solve(reference_milp)
            except BackendUnavailableError:
                return
            assert math.isfinite(solution.objective)


class TestBackoffSchedule:
    def test_backoff_is_capped(self):
        backend = _backend(
            backoff_base=0.01, backoff_factor=10.0, backoff_max=0.5
        )
        delays = [backend.backoff_delay(k) for k in range(8)]
        assert all(d <= 0.5 for d in delays)
        assert delays[0] == pytest.approx(0.01)

    def test_jitter_is_deterministic_and_bounded(self):
        backend = _backend(
            backoff_base=0.1, backoff_max=1.0, backoff_jitter=0.25
        )
        a = backend.backoff_delay(0, "model-a")
        assert a == backend.backoff_delay(0, "model-a")
        assert 0.1 <= a <= 0.1 * 1.25
        # Different models desynchronise.
        assert a != backend.backoff_delay(0, "model-b")

    def test_schedule_exposed_in_solution_details(self, reference_milp):
        plan = FaultPlan(
            specs=(FaultSpec(site="solver.fault", mode="crash", times=2),),
            name="s",
        )
        sleeps: list[float] = []
        backend = _backend(
            max_retries=2,
            backoff_base=0.001,
            backoff_factor=2.0,
            backoff_jitter=0.1,
            sleep=sleeps.append,
        )
        with injecting(plan):
            solution = backend.solve(reference_milp)
        assert solution.details["retries"] == 2
        assert solution.details["backoff_schedule"] == tuple(sleeps)
        assert len(sleeps) == 2

    def test_config_round_trips_backoff_knobs(self):
        config = ResilienceConfig(backoff_max=0.25, backoff_jitter=0.0)
        backend = ResilientBackend.from_config(HighsBackend(), config)
        assert backend.backoff_max == 0.25
        assert backend.backoff_jitter == 0.0


class TestSweepEquivalence:
    """Contract: an injected-solver-fault sweep is byte-identical to
    the fault-free run of the same configuration."""

    @pytest.fixture
    def config(self):
        return ExperimentConfig(
            name="chaos-solver",
            x_label="U",
            points=(
                SweepPoint(
                    0.3, GenerationConfig(n=3, utilization=0.3, gamma=0.1)
                ),
            ),
            sets_per_point=2,
            seed=5,
            protocols=("proposed",),
            method="milp",
        )

    @pytest.fixture
    def options(self):
        # Both runs must share the options: the resilience config is
        # part of the analysis-cache solver signature.
        return AnalysisOptions(
            resilience=ResilienceConfig(
                max_retries=2, backoff_base=0.0, backoff_jitter=0.0
            )
        )

    def test_injected_sweep_matches_clean_sweep(
        self, config, options, tmp_path
    ):
        clean = run_experiment(config, options=options)
        plan = FaultPlan(
            specs=(FaultSpec(site="solver.fault", mode="crash"),),
            name="one-crash-per-unit",
        )
        trace = tmp_path / "trace.jsonl"
        injected = run_experiment(
            config, options=options, fault_plan=plan, trace_path=str(trace)
        )
        assert [p.ratios for p in injected.points] == [
            p.ratios for p in clean.points
        ]
        assert injected.failures == clean.failures == ()
        assert [dict(p.analysis_stats) for p in injected.points] == [
            dict(p.analysis_stats) for p in clean.points
        ]
        fired = [
            e
            for e in read_trace(trace)
            if e["name"] == "fault.solver.fault"
        ]
        # times=1 with a fresh scope per unit: one crash per task set.
        assert len(fired) == config.sets_per_point
        assert {e["f"]["mode"] for e in fired} == {"crash"}
