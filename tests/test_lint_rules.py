"""Tests for the project invariant linter (repro.lint)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import RULES, LintViolation, SourceModule, run_lint
from repro.lint.cache_key import (
    cache_key_completeness_rule,
    solver_options_rule,
)
from repro.lint.determinism import (
    import_edges,
    reachable_modules,
    worker_determinism_rule,
)
from repro.lint.engine import load_repo_modules
from repro.lint.rules import float_time_equality_rule, mutable_default_rule

REPO_ROOT = Path(__file__).resolve().parents[1]


def _module(name, source):
    return SourceModule.parse(name, f"{name.replace('.', '/')}.py", source)


class TestEngine:
    def test_repo_lints_clean(self):
        # The headline invariant: the shipped tree passes its own linter.
        violations = run_lint()
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lint(rules=["no-such-rule"])

    def test_rule_subset_runs_only_selected(self):
        bad = _module("m", "def f(x=[]):\n    return x\n")
        only_float = run_lint({"m": bad}, rules=["float-time-equality"])
        assert only_float == []
        only_mutable = run_lint({"m": bad}, rules=["mutable-default-argument"])
        assert len(only_mutable) == 1

    def test_all_registered_rules_discoverable(self):
        assert set(RULES) == {
            "cache-key-completeness",
            "cache-key-solver-options",
            "worker-determinism",
            "float-time-equality",
            "mutable-default-argument",
            "trace-contract",
            "fork-safety",
            "durable-write",
            "screen-soundness",
        }

    def test_load_repo_modules_names(self):
        modules = load_repo_modules()
        assert "repro.milp.model" in modules
        assert "repro.lint" in modules  # __init__ collapses to the package
        assert "repro.analysis.cache" in modules


class TestMutableDefaultRule:
    def test_flags_literal_and_call_defaults(self):
        src = (
            "def f(x=[]):\n    return x\n"
            "def g(*, y=dict()):\n    return y\n"
        )
        violations = mutable_default_rule({"m": _module("m", src)})
        assert [v.line for v in violations] == [1, 3]

    def test_allows_none_and_immutable_defaults(self):
        src = "def f(x=None, y=(), z=0.0, w='s'):\n    return x, y, z, w\n"
        assert mutable_default_rule({"m": _module("m", src)}) == []

    def test_flags_lambda_defaults(self):
        src = "h = lambda x=[]: x\n"
        violations = mutable_default_rule({"m": _module("m", src)})
        assert len(violations) == 1


class TestFloatTimeEqualityRule:
    def test_flags_equality_on_time_valued_names(self):
        src = "def conv(window, last):\n    return window == last\n"
        violations = float_time_equality_rule({"m": _module("m", src)})
        assert len(violations) == 1
        assert "window" in violations[0].message

    def test_flags_attribute_reads(self):
        src = "def same(a, b):\n    return a.wcrt != b.wcrt\n"
        violations = float_time_equality_rule({"m": _module("m", src)})
        assert len(violations) == 1

    def test_ordering_comparisons_allowed(self):
        src = "def fits(window, deadline):\n    return window <= deadline\n"
        assert float_time_equality_rule({"m": _module("m", src)}) == []

    def test_identity_methods_exempt(self):
        src = (
            "class T:\n"
            "    def __eq__(self, other):\n"
            "        return other.period == self.period\n"
            "    def __hash__(self):\n"
            "        return hash(self.period)\n"
        )
        assert float_time_equality_rule({"m": _module("m", src)}) == []

    def test_non_time_names_ignored(self):
        src = "def pick(kind):\n    return kind == 'nls'\n"
        assert float_time_equality_rule({"m": _module("m", src)}) == []


class TestWorkerDeterminismRule:
    ROOT = "repro.experiments.runner"

    def _graph(self, worker_source, unreachable_source=None):
        modules = {
            self.ROOT: _module(self.ROOT, "import repro.work\n"),
            "repro.work": _module("repro.work", worker_source),
        }
        if unreachable_source is not None:
            modules["repro.island"] = _module(
                "repro.island", unreachable_source
            )
        return modules

    def test_import_edges_resolve_relative(self):
        mod = _module(
            "repro.experiments.runner",
            "from . import config\nfrom ..milp import model\n",
        )
        assert import_edges(mod) >= {
            "repro.experiments.config",
            "repro.milp.model",
        }

    def test_reachability_is_transitive(self):
        modules = {
            self.ROOT: _module(self.ROOT, "import repro.a\n"),
            "repro.a": _module("repro.a", "import repro.b\n"),
            "repro.b": _module("repro.b", "x = 1\n"),
            "repro.island": _module("repro.island", "import random\n"),
        }
        reached = reachable_modules(modules)
        assert reached == {self.ROOT, "repro.a", "repro.b"}

    def test_unreachable_module_not_flagged(self):
        modules = self._graph("x = 1\n", unreachable_source="import random\n")
        assert worker_determinism_rule(modules) == []

    def test_stdlib_random_import_flagged(self):
        violations = worker_determinism_rule(self._graph("import random\n"))
        assert len(violations) == 1
        assert "seeded numpy Generator" in violations[0].message

    def test_wall_clock_call_flagged(self):
        src = "import time\n\ndef stamp():\n    return time.time()\n"
        violations = worker_determinism_rule(self._graph(src))
        assert [v.line for v in violations] == [4]

    def test_from_time_import_alias_flagged(self):
        src = "from time import time as now\n\ndef f():\n    return now()\n"
        violations = worker_determinism_rule(self._graph(src))
        assert len(violations) == 1

    def test_perf_counter_allowed(self):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert worker_determinism_rule(self._graph(src)) == []

    def test_unseeded_default_rng_flagged(self):
        src = (
            "from numpy.random import default_rng\n"
            "def f():\n    return default_rng()\n"
        )
        violations = worker_determinism_rule(self._graph(src))
        assert len(violations) == 1
        assert "unseeded" in violations[0].message

    def test_seeded_default_rng_allowed(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n    return np.random.default_rng(seed)\n"
        )
        assert worker_determinism_rule(self._graph(src)) == []

    def test_legacy_global_rng_flagged(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.random()\n"
        violations = worker_determinism_rule(self._graph(src))
        assert len(violations) == 1
        assert "legacy" in violations[0].message

    def test_uuid4_flagged(self):
        src = "import uuid\n\ndef f():\n    return uuid.uuid4()\n"
        assert len(worker_determinism_rule(self._graph(src))) == 1


class TestCacheKeyCompletenessRule:
    def test_real_digest_is_complete(self):
        assert cache_key_completeness_rule(load_repo_modules()) == []

    def test_removing_semantic_field_fails_lint(self):
        # Acceptance pin: strip `latency_sensitive` out of the cache
        # digest; the formulation still reads it, so two semantically
        # different MILPs would collide — the lint must fail.
        modules = dict(load_repo_modules())
        cache = modules["repro.analysis.cache"]
        source = Path(cache.path).read_text()
        assert "task.latency_sensitive" in source
        tampered = source.replace("task.latency_sensitive", "True")
        modules["repro.analysis.cache"] = SourceModule.parse(
            cache.name, cache.path, tampered
        )
        violations = cache_key_completeness_rule(modules)
        assert violations, "tampered digest must fail the lint"
        assert all("latency_sensitive" in v.message for v in violations)

    def test_missing_module_reports_instead_of_passing(self):
        modules = dict(load_repo_modules())
        del modules["repro.analysis.cache"]
        violations = cache_key_completeness_rule(modules)
        assert len(violations) == 1
        assert "cannot check" in violations[0].message

    def test_synthetic_uncovered_read(self):
        modules = dict(load_repo_modules())
        formulation = modules["repro.analysis.proposed.formulation"]
        tampered = (
            formulation.tree and Path(formulation.path).read_text()
        ) + "\n\ndef _peek(task):\n    return task.footprint_bytes\n"
        task_src = Path(modules["repro.model.task"].path).read_text()
        task_src = task_src.replace(
            "class Task:", "class Task:\n    footprint_bytes: int", 1
        )
        modules["repro.model.task"] = SourceModule.parse(
            "repro.model.task", "task.py", task_src
        )
        modules["repro.analysis.proposed.formulation"] = SourceModule.parse(
            formulation.name, formulation.path, tampered
        )
        violations = cache_key_completeness_rule(modules)
        assert any("footprint_bytes" in v.message for v in violations)

    def test_exemptions_have_written_justifications(self):
        from repro.lint.cache_key import EXEMPT_TASK_ATTRS

        assert all(reason.strip() for reason in EXEMPT_TASK_ATTRS.values())


class TestSolverOptionsRule:
    def test_real_signature_covers_every_option(self):
        assert solver_options_rule(load_repo_modules()) == []

    def test_unsigned_new_option_field_fails_lint(self):
        # Acceptance pin: an AnalysisOptions field the signature does
        # not read means two runs differing only in it would share
        # persistent cache entries across runs — the lint must fail.
        modules = dict(load_repo_modules())
        options = modules["repro.analysis.interface"]
        source = Path(options.path).read_text()
        tampered = source.replace(
            "class AnalysisOptions:",
            "class AnalysisOptions:\n    solver_threads: int = 1",
            1,
        )
        modules["repro.analysis.interface"] = SourceModule.parse(
            options.name, options.path, tampered
        )
        violations = solver_options_rule(modules)
        assert any("solver_threads" in v.message for v in violations)

    def test_dropping_schema_version_gate_fails_lint(self):
        modules = dict(load_repo_modules())
        store = modules["repro.analysis.store"]
        source = Path(store.path).read_text()
        assert "SCHEMA_VERSION = " in source
        tampered = source.replace("SCHEMA_VERSION = ", "_SCHEMA_VERSION = ")
        modules["repro.analysis.store"] = SourceModule.parse(
            store.name, store.path, tampered
        )
        violations = solver_options_rule(modules)
        assert any("SCHEMA_VERSION" in v.message for v in violations)

    def test_unused_schema_version_fails_lint(self):
        modules = dict(load_repo_modules())
        tampered = "SCHEMA_VERSION = 1\n"  # defined but gating nothing
        modules["repro.analysis.store"] = SourceModule.parse(
            "repro.analysis.store", "store.py", tampered
        )
        violations = solver_options_rule(modules)
        assert any("never read" in v.message for v in violations)

    def test_unsigned_protocol_knobs_fail_lint(self):
        # The protocol-zoo acceptance fixture: a signature frozen at
        # its pre-zoo shape (tests/lint_fixtures/solver_options_bad.py)
        # omits preemption_thresholds and regulation; the rule must
        # flag exactly those two fields, or threshold/bandwidth sweeps
        # could share persistent entries across differing knobs.
        fixture = REPO_ROOT / "tests" / "lint_fixtures" / "solver_options_bad.py"
        modules = dict(load_repo_modules())
        modules["repro.analysis.proposed.response_time"] = SourceModule.parse(
            "repro.analysis.proposed.response_time",
            str(fixture),
            fixture.read_text(),
        )
        violations = solver_options_rule(modules)
        flagged = {
            field
            for v in violations
            for field in ("preemption_thresholds", "regulation")
            if f"AnalysisOptions.{field}" in v.message
        }
        assert flagged == {"preemption_thresholds", "regulation"}
        # The solver knobs the fixture does sign stay clean.
        assert not any("time_limit" in v.message for v in violations)

    def test_missing_module_reports_instead_of_passing(self):
        modules = dict(load_repo_modules())
        del modules["repro.analysis.store"]
        violations = solver_options_rule(modules)
        assert len(violations) == 1
        assert "cannot check" in violations[0].message

    def test_exemptions_have_written_justifications(self):
        from repro.lint.cache_key import EXEMPT_OPTION_FIELDS

        assert all(reason.strip() for reason in EXEMPT_OPTION_FIELDS.values())


class TestViolationRendering:
    def test_render_is_path_line_rule(self):
        v = LintViolation("r", "a/b.py", 7, "msg")
        assert v.render() == "a/b.py:7: [r] msg"

    def test_run_lint_sorts_by_location(self):
        src = "def f(x=[]):\n    return x\ndef g(y=[]):\n    return y\n"
        out = run_lint({"m": _module("m", src)})
        assert [v.line for v in out] == sorted(v.line for v in out)


class TestEntryPoints:
    def test_cli_lint_subcommand_clean(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        captured = capsys.readouterr()
        # Findings own stdout; the all-clear is commentary on stderr.
        assert captured.out == ""
        assert "invariants hold" in captured.err

    def test_standalone_tool_clean(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "lint_rules.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout == ""
        assert "all project invariants hold" in proc.stderr

    def test_standalone_tool_lists_rules(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "lint_rules.py"),
                "--list",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert set(proc.stdout.split()) == set(RULES)
