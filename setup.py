"""Legacy setup shim.

This environment has no ``wheel`` package, so PEP 660 editable installs
(`pip install -e .`) fail while building the editable wheel. This shim
lets ``pip install -e . --no-use-pep517`` (and plain
``python setup.py develop``) work offline. Metadata lives in
``pyproject.toml``; keep the two in sync.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Predictable Memory-CPU Co-Scheduling with "
        "Support for Latency-Sensitive Tasks' (DAC 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
