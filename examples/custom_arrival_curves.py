#!/usr/bin/env python3
"""Beyond sporadic: analysing tasks with richer event models.

The paper's analysis is formulated over arrival curves, so any event
model with a curve works — not just the sporadic tasks of the
evaluation. This example analyses an interrupt-like bursty source
(periodic with jitter and a minimum inter-event distance) alongside
sporadic tasks, and shows how curve algebra composes sub-sources.

Run:  python examples/custom_arrival_curves.py
"""

from repro import (
    BurstyArrival,
    PeriodicJitterArrival,
    SporadicArrival,
    Task,
    TaskSet,
    analyze_taskset,
)
from repro.curves import curve_sum


def main() -> None:
    # An interrupt handler triggered by a jittery periodic source that
    # can burst (two back-to-back events at least 1 ms apart).
    irq = Task(
        name="irq",
        exec_time=0.6,
        copy_in=0.1,
        copy_out=0.1,
        deadline=5.0,
        priority=0,
        arrivals=BurstyArrival(period=8.0, jitter=6.0, d_min=1.0),
        latency_sensitive=True,
    )
    control = Task(
        name="control",
        exec_time=1.5,
        copy_in=0.3,
        copy_out=0.3,
        deadline=9.0,
        priority=1,
        arrivals=PeriodicJitterArrival(period=12.0, jitter=2.0),
    )
    worker = Task(
        name="worker",
        exec_time=4.0,
        copy_in=0.8,
        copy_out=0.8,
        deadline=38.0,
        priority=2,
        arrivals=SporadicArrival(40.0),
    )
    taskset = TaskSet([irq, control, worker])

    print("arrival-curve values eta(delta):")
    print(f"{'delta':>8} {'irq':>5} {'control':>8} {'worker':>7} {'sum':>5}")
    combined = curve_sum(irq.arrivals, control.arrivals, worker.arrivals)
    for delta in (1.0, 5.0, 10.0, 20.0, 40.0):
        print(
            f"{delta:>8.1f} {irq.eta(delta):>5} {control.eta(delta):>8} "
            f"{worker.eta(delta):>7} {combined.eta(delta):>5}"
        )
    print()

    for protocol in ("nps", "wasly", "proposed"):
        result = analyze_taskset(taskset, protocol, ls_policy="as_marked")
        rows = ", ".join(
            f"{name}={wcrt:.2f}{'' if ok else '!'}"
            for name, wcrt, _, ok in result.summary_rows()
        )
        print(f"{protocol:<9} WCRTs: {rows}  "
              f"(schedulable: {result.schedulable})")
    print("\n('!' marks a deadline miss; irq is marked latency-sensitive)")


if __name__ == "__main__":
    main()
