#!/usr/bin/env python3
"""Quickstart: model a small workload and compare the three approaches.

Builds a three-phase task set (camera / control / logger), bounds every
task's worst-case response time under

* classical non-preemptive scheduling (NPS — memory phases inline),
* the double-buffered DMA protocol of Wasly & Pellizzoni [3], and
* the paper's protocol with the greedy latency-sensitive marking,

then prints the per-task verdicts.

Run:  python examples/quickstart.py
"""

from repro import TaskSet, analyze_taskset, greedy_ls_assignment


def main() -> None:
    taskset = TaskSet.from_parameters(
        [
            # (name,     C,    l,    u,    T,     D)     [ms]
            ("control", 1.0, 0.20, 0.20, 10.0, 7.0),
            ("camera",  2.0, 0.60, 0.40, 12.0, 11.5),
            ("fusion",  2.5, 0.50, 0.50, 20.0, 19.0),
            ("logger",  4.0, 1.20, 1.20, 50.0, 45.0),
        ]
    )
    print(f"workload: {len(taskset)} tasks, "
          f"U={taskset.utilization:.2f} (exec), "
          f"U_total={taskset.total_utilization:.2f} (incl. memory)\n")

    for protocol in ("nps", "wasly", "proposed"):
        result = analyze_taskset(taskset, protocol, ls_policy="greedy")
        print(f"--- {protocol} ---")
        for name, wcrt, deadline, ok in result.summary_rows():
            mark = "ok  " if ok else "MISS"
            print(f"  {name:<8} WCRT={wcrt:7.3f}  D={deadline:6.2f}  {mark}")
        print(f"  task set schedulable: {result.schedulable}\n")

    outcome = greedy_ls_assignment(taskset)
    print(f"greedy LS marking: schedulable={outcome.schedulable}, "
          f"LS tasks={sorted(outcome.ls_names) or 'none'}, "
          f"rounds={outcome.rounds}")


if __name__ == "__main__":
    main()
