#!/usr/bin/env python3
"""End-to-end multicore flow: footprints -> copy times -> partitioning
-> per-core schedulability.

The paper's system model is a multicore with per-core local memories
and DMA engines, analysed core by core after a static partitioning
(Sec. II). This example:

1. models a 4-core platform (dual-ported local memories split into two
   partitions, per-core DMA engines with a fixed bandwidth);
2. generates tasks whose copy-phase durations are *derived from their
   memory footprints* and the DMA bandwidth (instead of the abstract
   ``l = gamma * C`` model);
3. partitions the tasks onto the cores with worst-fit decreasing;
4. runs the proposed-protocol analysis (greedy LS marking) per core.

Run:  python examples/multicore_partitioning.py
"""

import numpy as np

from repro import Platform, partition_tasks
from repro.analysis.schedulability import is_schedulable
from repro.generator import generate_platform_taskset


def main() -> None:
    platform = Platform.homogeneous(
        num_cores=4,
        memory_bytes=512 * 1024,              # 512 KiB local memory/core
        dma_bandwidth_bytes_per_ms=8 * 1024 * 1024,  # 8 GiB/s-ish
        dma_setup_time=0.002,                 # 2 us programming overhead
    )
    rng = np.random.default_rng(42)
    core = platform.cores[0]

    # Generate a global workload sized for ~4 cores.
    taskset = generate_platform_taskset(
        n=16,
        utilization=1.6,
        core=core,
        rng=rng,
        footprint_low=16 * 1024,
        footprint_high=192 * 1024,
    )
    print(f"{len(taskset)} tasks, total exec utilisation "
          f"{taskset.utilization:.2f}\n")

    result = partition_tasks(taskset, platform, heuristic="worst_fit")
    for idx, core_set in enumerate(result.assignments):
        if core_set is None:
            print(f"core {idx}: (empty)")
            continue
        names = ", ".join(t.name for t in core_set)
        print(f"core {idx}: U={core_set.utilization:.2f} tasks=[{names}]")
        platform.validate_taskset(platform.cores[idx], core_set)
        verdict = is_schedulable(core_set, "proposed", ls_policy="greedy")
        print(f"         proposed-protocol schedulable: {verdict}")
    print("\n(footprints were validated against the per-core partition size;"
          "\n copy-phase durations follow from footprint / DMA bandwidth)")


if __name__ == "__main__":
    main()
