#!/usr/bin/env python3
"""The paper's Fig. 1 motivating example, simulated.

A latency-sensitive task ``ti`` is released while two lower-priority
tasks are pending. The simulation shows the three outcomes the paper
uses to motivate the protocol:

* under protocol [3], ``ti`` is blocked by *two* lower-priority tasks
  (the double-buffering pipeline already committed to both) and misses
  its deadline — Fig. 1(a);
* under plain non-preemptive scheduling it is blocked once and meets
  the deadline — Fig. 1(b);
* under the proposed protocol, ``ti``'s release cancels the second
  lower-priority copy-in (rule R3), ``ti`` is promoted to urgent (R4),
  performs its own copy-in on the CPU (R5), and meets the deadline.

Run:  python examples/figure1_motivating_example.py
"""

from repro.examples_support import run_figure1_demo


def main() -> None:
    print(run_figure1_demo(width=96))


if __name__ == "__main__":
    main()
