#!/usr/bin/env python3
"""Validate the analytic bounds against simulation.

Draws a random workload with the paper's generator, simulates 100
seconds of random sporadic releases under each protocol, and compares
the largest *observed* response time of every task with the *analytic*
worst-case bound. Observed values must never exceed the bounds; the
gap illustrates the analyses' pessimism.

Run:  python examples/simulation_vs_analysis.py [seed]
"""

import sys

import numpy as np

from repro.analysis.interface import AnalysisOptions
from repro.analysis.nps import NpsAnalysis
from repro.analysis.proposed import ProposedAnalysis
from repro.analysis.wasly import WaslyAnalysis
from repro.generator import GenerationConfig, generate_taskset
from repro.sim import (
    NpsSimulator,
    ProposedSimulator,
    WaslySimulator,
    check_trace,
    sporadic_plan,
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    rng = np.random.default_rng(seed)
    config = GenerationConfig(n=4, utilization=0.35, gamma=0.2, beta=0.8)
    taskset = generate_taskset(config, rng)

    options = AnalysisOptions(stop_at_deadline=False)
    setups = [
        ("nps", NpsSimulator(taskset), NpsAnalysis(options)),
        ("wasly", WaslySimulator(taskset), WaslyAnalysis(options)),
        ("proposed", ProposedSimulator(taskset), ProposedAnalysis(options)),
    ]

    plan = sporadic_plan(taskset, horizon=100_000.0 / 1000, rng=rng)
    print(f"seed={seed}: {len(taskset)} tasks, U={taskset.utilization:.2f}, "
          f"{plan.total_jobs} jobs simulated per protocol\n")

    for name, simulator, analysis in setups:
        trace = simulator.run(plan)
        check_trace(trace)
        print(f"--- {name} ---")
        print(f"{'task':<8}{'observed':>10}{'bound':>10}{'gap %':>8}")
        for task in taskset:
            observed = trace.max_response_time(task.name)
            bound = analysis.response_time(taskset, task).wcrt
            assert observed <= bound + 1e-6, (name, task.name)
            gap = 100.0 * (bound - observed) / bound
            print(f"{task.name:<8}{observed:>10.3f}{bound:>10.3f}{gap:>7.1f}%")
        print()
    print("all observed responses are within the analytic bounds")


if __name__ == "__main__":
    main()
