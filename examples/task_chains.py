#!/usr/bin/env python3
"""End-to-end latency of a sensor→filter→actuate chain.

The paper's eager copy-out rule (R2) exists so the protocol extends to
"data-driven task chains" — named as future work in Sec. IV-A. This
example builds that extension: a three-stage pipeline communicating
through global memory, analysed for worst-case *reaction time* under
all three protocols and validated against data propagation measured in
simulation.

Run:  python examples/task_chains.py
"""

import numpy as np

from repro import TaskChain, TaskSet, analyze_taskset
from repro.chains import chain_data_age_bound, chain_reaction_bound
from repro.chains.measurement import max_reaction_time
from repro.sim import NpsSimulator, ProposedSimulator, WaslySimulator
from repro.sim.releases import sporadic_plan


def main() -> None:
    taskset = TaskSet.from_parameters(
        [
            # (name,     C,    l,    u,    T,    D)
            ("sensor",  0.8, 0.10, 0.10, 10.0,  9.0),
            ("filter",  1.5, 0.20, 0.20, 20.0, 18.0),
            ("actuate", 1.0, 0.10, 0.10, 20.0, 20.0),
            ("logger",  2.0, 0.30, 0.30, 50.0, 45.0),
        ]
    )
    chain = TaskChain(
        name="control-loop",
        taskset=taskset,
        stage_names=("sensor", "filter", "actuate"),
    )
    print(f"{chain!r}\n")

    simulators = {
        "nps": NpsSimulator,
        "wasly": WaslySimulator,
        "proposed": ProposedSimulator,
    }
    rng = np.random.default_rng(8)
    plan = sporadic_plan(taskset, horizon=2000.0, rng=rng)

    print(f"{'protocol':<10}{'reaction bound':>15}{'data-age bound':>15}"
          f"{'measured':>11}")
    for protocol, sim_cls in simulators.items():
        result = analyze_taskset(taskset, protocol, ls_policy="as_marked")
        reaction = chain_reaction_bound(chain, result)
        age = chain_data_age_bound(chain, result)
        trace = sim_cls(taskset).run(plan)
        measured = max_reaction_time(chain, trace)
        assert measured <= reaction.total + 1e-6
        print(f"{protocol:<10}{reaction.total:>15.2f}{age.total:>15.2f}"
              f"{measured:>11.2f}")

    print("\nper-stage decomposition (proposed protocol):")
    result = analyze_taskset(taskset, "proposed", ls_policy="as_marked")
    bound = chain_reaction_bound(chain, result)
    for stage, (period, wcrt) in bound.per_stage.items():
        print(f"  {stage:<9} sampling T={period:5.1f}  +  WCRT={wcrt:6.2f}")
    print(f"  total reaction bound: {bound.total:.2f}")


if __name__ == "__main__":
    main()
