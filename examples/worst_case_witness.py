#!/usr/bin/env python3
"""Reading the analysis' mind: decode the MILP's worst-case window.

The delay MILP of Sec. V doesn't just return a number — its binary
variables describe the *schedule shape* the solver found worst: who
occupies each scheduling interval, whose copy-in gets cancelled, who
runs urgent. This example decodes that witness for the quickstart
workload, NLS vs LS, and shows how marking the task latency-sensitive
changes the structure of its worst case (two blocking intervals
collapse into one).

Run:  python examples/worst_case_witness.py
"""

from repro import TaskSet
from repro.analysis.proposed import (
    AnalysisMode,
    build_delay_milp,
    extract_witness,
    validate_witness,
)


def main() -> None:
    taskset = TaskSet.from_parameters(
        [
            # (name,     C,    l,    u,    T,    D)
            ("control", 1.0, 0.20, 0.20, 10.0, 7.0),
            ("camera",  2.0, 0.60, 0.40, 12.0, 11.5),
            ("fusion",  2.5, 0.50, 0.50, 20.0, 19.0),
            ("logger",  4.0, 1.20, 1.20, 50.0, 45.0),
        ]
    )
    task = taskset.by_name("control")
    window = task.deadline - task.exec_time - task.copy_out

    print("=== control as NLS (up to two lower-priority blockers) ===")
    built = build_delay_milp(taskset, task, window, AnalysisMode.NLS)
    solution = built.model.solve()
    witness = extract_witness(built, solution, "control")
    validate_witness(witness)
    print(witness.render())
    print(f"-> response bound {solution.objective + task.copy_out:.2f} "
          f"vs deadline {task.deadline:g}\n")

    print("=== control as LS, case (a): at most one blocker ===")
    marked = taskset.with_ls_marks(["control"])
    ls_task = marked.by_name("control")
    built = build_delay_milp(marked, ls_task, window, AnalysisMode.LS_CASE_A)
    solution = built.model.solve()
    witness = extract_witness(built, solution, "control")
    validate_witness(witness)
    print(witness.render())
    print(f"-> response bound {solution.objective + task.copy_out:.2f}\n")

    print("=== control as LS, case (b): promoted to urgent in I_0 ===")
    built = build_delay_milp(marked, ls_task, 0.0, AnalysisMode.LS_CASE_B)
    solution = built.model.solve()
    witness = extract_witness(built, solution, "control")
    validate_witness(witness)
    print(witness.render())
    print(f"-> response bound {solution.objective + task.copy_out:.2f}")
    print("\nThe LS worst case is the max of cases (a) and (b); compare the"
          "\nblocking structure with the NLS witness above.")


if __name__ == "__main__":
    main()
