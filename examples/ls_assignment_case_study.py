#!/usr/bin/env python3
"""Case study: how the LS-marking policy decides schedulability.

Marking a task latency-sensitive halves its worst-case blocking (one
interval instead of two, Property 4) but makes it more expensive for
everyone else: a cancelled copy-in must be redone and an urgent task
occupies the CPU for ``l + C``. The paper therefore stresses that "it
is important to carefully decide which task is marked as LS" (Sec. VI).
This example builds a workload where

* no marking at all leaves two tasks unschedulable (``all_nls``),
* the plausible static heuristic "mark the tasks with the tightest
  deadlines" picks the wrong pair and *fails*,
* the paper's greedy algorithm converges on a different, minimal
  marking and proves the set schedulable.

Run:  python examples/ls_assignment_case_study.py
"""

from repro import TaskSet
from repro.analysis.ls_assignment import LS_POLICIES


def build_workload() -> TaskSet:
    """Tight high-priority tasks above heavy lower-priority ones."""
    return TaskSet.from_parameters(
        [
            # (name,    C,    l,    u,    T,     D)
            ("tight1", 0.8, 0.10, 0.10, 30.0, 7.0),
            ("tight2", 1.0, 0.15, 0.15, 35.0, 12.5),
            ("mid",    2.0, 0.25, 0.25, 40.0, 14.0),
            ("heavy1", 4.5, 0.50, 0.50, 50.0, 48.0),
            ("heavy2", 5.0, 0.60, 0.60, 60.0, 58.0),
        ]
    )


def main() -> None:
    taskset = build_workload()
    print("workload:")
    for task in taskset:
        print(
            f"  {task.name:<8} C={task.exec_time:4.1f} l=u={task.copy_in:4.2f} "
            f"T={task.period:5.1f} D={task.deadline:5.1f}"
        )
    print()

    for policy_name, policy in LS_POLICIES.items():
        outcome = policy(taskset)
        verdict = "SCHEDULABLE" if outcome.schedulable else "not schedulable"
        print(f"{policy_name:<20} -> {verdict:<16} "
              f"LS={sorted(outcome.ls_names) or 'none'}")
        if outcome.final_result is not None:
            for r in outcome.final_result.results:
                tag = "LS " if r.task.latency_sensitive else "NLS"
                ok = "ok" if r.schedulable else "MISS"
                print(f"    {r.task.name:<8} [{tag}] "
                      f"WCRT={r.wcrt:7.3f} D={r.task.deadline:5.1f} {ok}")
        print()


if __name__ == "__main__":
    main()
