"""NPS analysis under per-core memory bandwidth regulation.

The ``regulated`` protocol is non-preemptive fixed priorities with
inline memory phases (as NPS), except the core's memory traffic runs
under a MemGuard-style regulator (Agrawal et al., "Analysis of Dynamic
Memory Bandwidth Regulation in Multi-core Real-Time Systems"): a
budget of ``Q`` transfer-time units per replenishment period ``P``,
replenished to ``Q`` at every period boundary without accumulation. A
memory phase that exhausts the budget stalls until the next
replenishment; execution phases consume no budget.

The worst-case regulated duration of a memory phase of demand ``m`` is

    ``reg(m) = m + ceil(m / Q) * (P - Q)``

— the phase can begin with an empty budget at most ``P - Q`` before a
replenishment (consuming ``Q`` budget itself takes ``Q`` time, so the
earliest exhaustion inside a period is ``Q`` after its start), and
each of the ``ceil(m / Q)`` budget chunks it needs can be followed by
one full ``P - Q`` stall. ``Q == P`` gives ``reg(m) == m``: the
analysis (and the simulator) degenerate exactly to ``nps_carry``.

The WCRT bound is then the release-anchored carry fixpoint of
:meth:`repro.analysis.nps.NpsAnalysis` with every task's cost inflated
to ``reg(l) + C + reg(u)`` — each phase's regulated duration is
bounded independently of the budget state it starts in, so inflation
composes across phases and jobs and the busy-window argument carries
over unchanged. The :class:`repro.sim.regulated_sim.RegulatedSimulator`
cross-validation asserts observed <= bound on the experiment matrix.
"""

from __future__ import annotations

import math

from repro.analysis.interface import (
    AnalysisOptions,
    RegulationConfig,
    TaskResult,
    TaskSetResult,
)
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time


def regulated_duration(demand: Time, regulation: RegulationConfig | None) -> Time:
    """Worst-case wall-clock span of one memory phase under regulation.

    ``None`` (or a full budget ``Q == P``) means unregulated: the
    phase transfers at full rate and the span equals the demand.
    """
    if regulation is None or demand <= 0.0:
        return max(demand, 0.0)
    budget, period = regulation.budget, regulation.period
    chunks = math.ceil(demand / budget - 1e-12)
    return demand + chunks * (period - budget)


def regulated_cost(task: Task, regulation: RegulationConfig | None) -> Time:
    """A job's worst-case CPU occupancy with regulated memory phases."""
    return (
        regulated_duration(task.copy_in, regulation)
        + task.exec_time
        + regulated_duration(task.copy_out, regulation)
    )


class RegulatedAnalysis:
    """WCRT analysis for bandwidth-regulated non-preemptive FP.

    ``options.regulation`` carries the budget; ``None`` analyses the
    unregulated limit (identical to ``nps_carry``), which keeps the
    protocol runnable in zoo sweeps that set no budget.
    """

    protocol = "regulated"

    def __init__(self, options: AnalysisOptions | None = None) -> None:
        self.options = options or AnalysisOptions()
        self.regulation = self.options.regulation

    # ------------------------------------------------------------------
    def blocking(self, taskset: TaskSet, task: Task) -> Time:
        """Maximum lower-priority blocking: one whole regulated job."""
        return max(
            (regulated_cost(t, self.regulation) for t in taskset.lp(task)),
            default=0.0,
        )

    def response_time(self, taskset: TaskSet, task: Task) -> TaskResult:
        """Release-anchored carry fixpoint with regulated costs."""
        taskset.require_member(task)
        hp = taskset.hp(task)
        blocking = self.blocking(taskset, task)
        own_cost = regulated_cost(task, self.regulation)
        eps = self.options.convergence_eps
        response = own_cost + blocking
        converged = False
        iterations = 0
        for iterations in range(1, self.options.max_iterations + 1):
            window = response - own_cost
            new_response = (
                blocking
                + sum(
                    (t.eta(window) + 1) * regulated_cost(t, self.regulation)
                    for t in hp
                )
                + own_cost
            )
            if new_response <= response + eps:
                converged = True
                break
            response = new_response
            if self.options.stop_at_deadline and response > task.deadline:
                break
        return TaskResult(
            task=task,
            wcrt=response,
            iterations=iterations,
            converged=converged,
            details={
                "blocking": blocking,
                "regulated_cost": own_cost,
                "regulation": repr(self.regulation),
            },
        )

    def analyze(self, taskset: TaskSet) -> TaskSetResult:
        """Analyse every task of the set."""
        results = tuple(self.response_time(taskset, t) for t in taskset)
        return TaskSetResult(
            taskset=taskset, results=results, protocol=self.protocol
        )

    def is_schedulable(self, taskset: TaskSet) -> bool:
        """Whether every task's bound proves its deadline."""
        # Regulated utilisation must fit on the serialized core.
        util = sum(
            regulated_cost(t, self.regulation) / t.period for t in taskset
        )
        if util > 1.0 + 1e-12:
            return False
        return all(
            self.response_time(taskset, t).schedulable for t in taskset
        )
