"""The paper's analysis: MILP delay bounds for the proposed protocol.

* :mod:`repro.analysis.proposed.intervals` — interval-count bounds
  (Theorem 1 for NLS tasks, Corollary 1 for LS tasks).
* :mod:`repro.analysis.proposed.formulation` — the MILP constraint
  builder (Constraints 1-15 of Sec. V).
* :mod:`repro.analysis.proposed.closed_form` — fast conservative
  bounds, including the exact closed form of LS case (b).
* :mod:`repro.analysis.proposed.response_time` — the iterative
  response-time driver and the :class:`ProposedAnalysis` front end.
"""

from repro.analysis.proposed.intervals import (
    interval_count_ls,
    interval_count_nls,
)
from repro.analysis.proposed.formulation import (
    AnalysisMode,
    DelayMilp,
    build_delay_milp,
)
from repro.analysis.proposed.closed_form import (
    closed_form_delay_bound,
    ls_case_b_bound,
)
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.analysis.proposed.witness import (
    ScheduleWitness,
    extract_witness,
    validate_witness,
)

__all__ = [
    "ScheduleWitness",
    "extract_witness",
    "validate_witness",
    "interval_count_nls",
    "interval_count_ls",
    "AnalysisMode",
    "DelayMilp",
    "build_delay_milp",
    "closed_form_delay_bound",
    "ls_case_b_bound",
    "ProposedAnalysis",
]
