"""Iterative worst-case response-time computation (paper Sec. VI).

The delay MILP of Sec. V is parameterised by a tentative response time
``R`` (through the window ``t = R - C_i - u_i`` that feeds the arrival
curves and the interval count). Starting from the minimum possible
response ``l_i + C_i + u_i``, the MILP is re-solved with the window
induced by its own previous optimum until the value stabilises — the
classical response-time fixpoint, monotone because larger windows only
enlarge the feasible schedule set.

For LS tasks the bound is the maximum of case (a) (not promoted —
iterated MILP) and case (b) (promoted in ``I_0`` — window-independent,
solved once and cross-checkable against its closed form).

Cost model
----------
The integer solve is the expensive step, so the driver works through a
cascade of strictly cheaper sufficient conditions before reaching it:

1. **vectorised closed form** — every task's conservative fixpoint,
   batched over the whole set with numpy
   (:func:`~repro.analysis.proposed.closed_form.closed_form_delay_bounds_batch`);
2. **batched LP screen** — the deadline-window models of the tasks the
   closed form could not prove, LP-relaxed and solved as one
   block-diagonal LP (:func:`repro.milp.relaxation.screen_batch`);
3. **LP fixpoint** — the response-time iteration evaluated on LP bounds
   only; it dominates the MILP iteration termwise, so a converged LP
   fixpoint within the deadline proves schedulability;
4. **warm-started integer fixpoint** — one compiled model is kept alive
   across iterations (rows retargeted in place, see
   :func:`~repro.analysis.proposed.formulation.update_delay_milp`), and
   at each new window the LP relaxation is checked against the
   incumbent first: ``lp <= incumbent`` squeezes the optimum to exactly
   the incumbent (monotone fixpoint from below), so the iteration is
   converged without the integer solve — and with the bit-identical
   response the solved path would have produced.

Every memoised value is tagged (``("milp", ...)`` exact optimum /
``("lp", bound)`` screening bound) so the two-tier analysis cache can
persist them across runs; see :mod:`repro.analysis.store`.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.analysis.cache import (
    AnalysisCache,
    active_cache,
    bound_producer,
    case_b_key,
    delay_milp_key,
)
from repro.analysis.interface import AnalysisOptions, TaskResult, TaskSetResult
from repro.analysis.proposed.closed_form import (
    closed_form_delay_bound,
    closed_form_delay_bounds_batch,
    ls_case_b_bound,
)
from repro.analysis.proposed.formulation import (
    AnalysisMode,
    DelayMilp,
    build_delay_milp,
    cancellation_budget,
    update_delay_milp,
)
from repro.analysis.proposed.intervals import (
    interference_budget,
    interval_count_ls,
    interval_count_nls,
)
from repro.errors import InfeasibleModelError, SolverError, UnboundedModelError
from repro.milp.highs import HighsBackend
from repro.milp.model import MilpBackend, MilpModel
from repro.milp.relaxation import LpRelaxationBackend, screen_batch
from repro.milp.resilient import ResilientBackend
from repro.milp.solution import MilpSolution, SolveStatus
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.obs import events as obs
from repro.types import Time

BackendFactory = Callable[[], MilpBackend]


def _default_backend_factory(options: AnalysisOptions) -> BackendFactory:
    return lambda: HighsBackend(
        time_limit=options.time_limit,
        mip_rel_gap=options.mip_rel_gap,
        # With any early-stop knob active, report the dual bound so the
        # result stays a safe over-approximation of the delay.
        use_dual_bound=bool(options.time_limit or options.mip_rel_gap),
    )


class _IterationOutcome:
    """Internal result of one mode's fixpoint iteration."""

    __slots__ = ("wcrt", "iterations", "converged", "details")

    def __init__(
        self, wcrt: Time, iterations: int, converged: bool, details: dict
    ) -> None:
        self.wcrt = wcrt
        self.iterations = iterations
        self.converged = converged
        self.details = details


class _IncrementalSlot:
    """Holds one fixpoint's live model across iterations.

    The driver keeps the previously built :class:`DelayMilp` here; when
    the next window preserves the interval count, the model is
    retargeted in place instead of rebuilt (and its cached compilation
    is patched, not re-lowered).
    """

    __slots__ = ("built",)

    def __init__(self) -> None:
        self.built: DelayMilp | None = None


class _DelayEval:
    """One evaluation of the delay map ``f`` at a window.

    ``objective`` is the MILP optimum (the delaying-interval length;
    add ``copy_out`` for the response), except when ``proved_met`` is
    set: then only the LP relaxation ran and ``objective`` is its
    over-approximating bound, already known to fit the deadline.
    """

    __slots__ = (
        "objective", "num_intervals", "stats", "degradation",
        "cached", "proved_met",
    )

    def __init__(
        self,
        objective: float,
        num_intervals: int,
        stats: dict,
        degradation: int,
        cached: bool,
        proved_met: bool = False,
    ) -> None:
        self.objective = objective
        self.num_intervals = num_intervals
        self.stats = stats
        self.degradation = degradation
        self.cached = cached
        self.proved_met = proved_met


class ProposedAnalysis:
    """WCRT analysis for the paper's protocol (rules R1-R6).

    Args:
        options: Iteration/solver knobs.
        backend_factory: Callable producing a fresh MILP backend per
            solve (defaults to HiGHS configured from ``options``).
        method: ``"milp"`` (the paper's analysis), ``"lp"`` (the LP
            relaxation of the same formulation — a safe, more
            pessimistic bound at one LP solve per iteration), or
            ``"closed_form"`` (the fastest, most conservative screen).
        carry_refinement: Opt-in improvement over the paper's
            Theorem 1: charge each higher-priority task
            ``eta_j(t + R_j)`` interfering jobs (jitter-aware, using
            hierarchically computed hp WCRTs) instead of
            ``eta_j(t) + 1``. Off by default for paper fidelity.
    """

    protocol = "proposed"
    #: Mode pair used for the task under analysis; subclasses override
    #: to reuse the driver for other protocols (see WaslyAnalysis).
    _nls_mode = AnalysisMode.NLS
    _supports_ls = True

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        backend_factory: BackendFactory | None = None,
        method: str = "milp",
        carry_refinement: bool = False,
        cache: AnalysisCache | None = None,
    ) -> None:
        if method not in ("milp", "lp", "closed_form"):
            raise ValueError(f"unknown method {method!r}")
        self.options = options or AnalysisOptions()
        if backend_factory is not None:
            self.backend_factory = backend_factory
        elif method == "lp":
            self.backend_factory = LpRelaxationBackend
        else:
            self.backend_factory = _default_backend_factory(self.options)
        self.method = method
        if cache is not None:
            self.cache = cache
        else:
            scoped = active_cache()
            self.cache = scoped if scoped is not None else AnalysisCache()
        #: Opt-in deviation from the paper: charge higher-priority
        #: interference with the jitter-aware bound eta(t + R_j)
        #: instead of Theorem 1's eta(t) + 1 (see intervals.py). The
        #: hp WCRTs are computed hierarchically with this same
        #: analysis and memoised per task set.
        self.carry_refinement = carry_refinement
        self._wcrt_cache: dict[tuple[TaskSet, str], Time] = {}
        # Scope-local screening memos fed by _screen_taskset and
        # consumed by the per-task verdicts (counter bumps happen at
        # consumption, so early-exiting sweeps surface the same stats
        # sequentially and in parallel).
        self._screened: set[TaskSet] = set()
        self._screen_memo: dict[tuple[TaskSet, str, str], float] = {}
        self._lp_proved: dict[tuple[TaskSet, str, str], bool] = {}

    # ------------------------------------------------------------------
    def _hp_wcrt_map(
        self, taskset: TaskSet, task: Task
    ) -> dict[str, Time] | None:
        """Memoised higher-priority WCRTs for the carry refinement.

        Computed hierarchically (highest priority first) with this
        same analysis; an unschedulable or non-converged hp bound is
        simply omitted, falling back to the paper's ``eta(t)+1`` for
        that task (always safe).
        """
        if not self.carry_refinement:
            return None
        result: dict[str, Time] = {}
        for hp_task in taskset.hp(task):  # priority order
            key = (taskset, hp_task.name)
            if key not in self._wcrt_cache:
                self._wcrt_cache[key] = self.response_time(
                    taskset, hp_task
                ).wcrt
            wcrt = self._wcrt_cache[key]
            if math.isfinite(wcrt):
                result[hp_task.name] = wcrt
        return result

    def response_time(self, taskset: TaskSet, task: Task) -> TaskResult:
        """WCRT bound for one task (dispatches on its LS mark)."""
        taskset.require_member(task)
        if self._supports_ls and task.latency_sensitive:
            return self._response_time_ls(taskset, task)
        return self._finalize(
            task, self._iterate(taskset, task, self._nls_mode)
        )

    def _response_time_ls(self, taskset: TaskSet, task: Task) -> TaskResult:
        case_a = self._iterate(taskset, task, AnalysisMode.LS_CASE_A)
        if self.method == "milp":
            case_b_wcrt = self._solve_case_b(taskset, task)
        else:
            case_b_wcrt = ls_case_b_bound(taskset, task)
        wcrt = max(case_a.wcrt, case_b_wcrt)
        details = dict(case_a.details)
        details["case_a_wcrt"] = case_a.wcrt
        details["case_b_wcrt"] = case_b_wcrt
        return TaskResult(
            task=task,
            wcrt=wcrt,
            iterations=case_a.iterations,
            converged=case_a.converged,
            details=details,
        )

    def _closed_form_objective(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> Callable[[], float]:
        """Last-resort safe objective for one mode's delay MILP.

        The closed-form WCRT upper-bounds the MILP fixpoint, hence also
        the per-window MILP optimum (plus copy-out), for every window
        the iteration can visit — so substituting it keeps the analysis
        an upper bound when every solver rung has failed.
        """
        if mode is AnalysisMode.LS_CASE_B:
            return lambda: ls_case_b_bound(taskset, task) - task.copy_out
        blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
        return lambda: (
            closed_form_delay_bound(
                taskset,
                task,
                blocking_intervals=blocking,
                urgent_possible=mode.uses_ls_machinery,
            )
            - task.copy_out
        )

    def _solve_model(
        self, model: MilpModel, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> MilpSolution:
        """Solve one delay MILP, resiliently when options ask for it."""
        backend = self.backend_factory()
        resilience = self.options.resilience
        if resilience is not None and not isinstance(backend, ResilientBackend):
            backend = ResilientBackend.from_config(
                backend,
                resilience,
                closed_form_objective=self._closed_form_objective(
                    taskset, task, mode
                ),
            )
        return model.solve(backend)

    def _solver_signature(self) -> tuple:
        """Solver-relevant options included in every cache key.

        Two analyses whose signatures differ must never share a cached
        objective: a different backend, time limit, gap, or resilience
        chain may return a different (still sound) bound.
        """
        sig = getattr(self, "_solver_sig", None)
        if sig is None:
            factory = self.backend_factory
            backend_tag = getattr(
                factory, "name", None
            ) or getattr(factory, "__qualname__", repr(factory))
            sig = (
                self.method,
                str(backend_tag),
                self.options.time_limit,
                self.options.mip_rel_gap,
                repr(self.options.resilience),
                # Protocol-specific knobs: neither shapes a proposed/
                # WASLY MILP today, but both shape the threshold and
                # regulated analyses that reuse this signature — and
                # entries must never collide across protocols.
                self.options.preemption_thresholds,
                repr(self.options.regulation),
            )
            self._solver_sig = sig
        return sig

    def _window_signature(
        self,
        taskset: TaskSet,
        task: Task,
        window: Time,
        mode: AnalysisMode,
        hp_wcrt: dict[str, Time] | None,
    ) -> tuple[int, tuple[int, ...], int]:
        """The integer staircases through which the window enters the MILP.

        Returns ``(N_i(t), per-task budgets, cancellation budget)`` —
        together they carry *every* dependence of the formulation on
        ``t``, so two windows with equal signatures build the identical
        model (the fact the memo key relies on).
        """
        count = (
            interval_count_ls
            if mode is AnalysisMode.LS_CASE_A
            else interval_count_nls
        )
        n = count(
            taskset, task, window, hp_wcrt,
            urgent_possible=mode.uses_ls_machinery,
        )
        budgets = tuple(
            interference_budget(j, window, hp_wcrt)
            if j.priority < task.priority
            else 1
            for j in taskset
            if j.name != task.name
        )
        return n, budgets, cancellation_budget(taskset, task, window, mode)

    def _delay_key(
        self,
        taskset: TaskSet,
        task: Task,
        window: Time,
        mode: AnalysisMode,
        hp_wcrt: dict[str, Time] | None,
    ) -> tuple[str, int]:
        """Cache digest and interval count of one windowed delay MILP."""
        n, budgets, cl_budget = self._window_signature(
            taskset, task, window, mode, hp_wcrt
        )
        key = delay_milp_key(
            taskset, task, mode.value, n, budgets, cl_budget,
            hp_wcrt, self._solver_signature(),
        )
        return key, n

    def _obtain_model(
        self,
        slot: "_IncrementalSlot | None",
        taskset: TaskSet,
        task: Task,
        window: Time,
        mode: AnalysisMode,
        hp_wcrt: dict[str, Time] | None,
    ) -> DelayMilp:
        """Build the delay MILP — incrementally when the slot allows it.

        A live model whose interval count matches is retargeted in
        place (``milp.incremental.update``); an interval-count change
        forces a rebuild (``milp.incremental.rebuild``). Either way the
        slot ends up holding the model used, ready for the next
        iteration.
        """
        built = None
        if slot is not None and slot.built is not None:
            built = update_delay_milp(slot.built, taskset, task, window, hp_wcrt)
            obs.emit(
                "milp.incremental.update"
                if built is not None
                else "milp.incremental.rebuild",
                task=task.name,
                mode=mode.value,
            )
            if built is not None:
                # This iteration starts from the previous iteration's
                # compiled model (RHS retarget, no rebuild) — the warm
                # start the stats table reports.
                self.cache.bump("milp_warm_starts")
        if built is None:
            built = build_delay_milp(taskset, task, window, mode, hp_wcrt=hp_wcrt)
        if slot is not None:
            slot.built = built
        return built

    def _lp_relax(
        self, built: DelayMilp, task: Task, mode: AnalysisMode
    ) -> MilpSolution | None:
        """LP-relax one built model (the screening/warm-start tier)."""
        try:
            relaxed = LpRelaxationBackend().solve_compiled(built.model.compile())
        except SolverError:
            return None  # screen only; the exact path decides
        self.cache.bump("lp_solves")
        obs.emit(
            "solve.screen",
            task=task.name,
            dur=relaxed.runtime_seconds,
            mode=mode.value,
            status=relaxed.status.value,
            rows=built.stats.get("constraints"),
            vars=built.stats.get("variables"),
        )
        return relaxed

    @bound_producer
    def _delay_objective(
        self,
        taskset: TaskSet,
        task: Task,
        window: Time,
        mode: AnalysisMode,
        hp_wcrt: dict[str, Time] | None,
        lp_screen_deadline: Time | None = None,
        slot: "_IncrementalSlot | None" = None,
        warm_objective: float | None = None,
    ) -> _DelayEval:
        """Evaluate the delay map ``f`` at ``window``, memoised.

        A cache hit on an exact (``milp``-tagged) entry returns the
        objective a fresh build-and-solve would produce (the key
        digests the MILP's full semantic content, see
        :mod:`repro.analysis.cache`). Degraded solutions — where the
        resilient backend substituted a weaker bound — are never
        stored, so a retry keeps its chance of a sharper value.

        With ``lp_screen_deadline`` set (verdict path, exact-MILP
        method only), an ``lp``-tagged bound — cached or freshly
        relaxed — that fits the deadline skips the integer solve and
        the eval comes back ``proved_met`` (relaxing a maximisation can
        only raise the objective).

        With ``warm_objective`` set (fixpoint path: the incumbent
        objective of the previous iteration), an LP bound at or below
        the incumbent proves the new window's optimum *equals* the
        incumbent: the optimum cannot drop below it (the solved path
        would have taken the convergence branch and kept the incumbent
        response either way), and the relaxation caps it from above.
        The integer solve is skipped and the returned objective is
        bit-identical to the solved path's.
        """
        key, n = self._delay_key(taskset, task, window, mode, hp_wcrt)
        entry = self.cache.get(key)
        lp_bound: float | None = None
        if isinstance(entry, tuple) and entry:
            if entry[0] == "milp":
                _, objective, num_intervals, stats, degradation = entry
                return _DelayEval(
                    objective,
                    int(num_intervals),
                    dict(stats),
                    int(degradation),
                    cached=True,
                )
            if entry[0] == "lp":
                lp_bound = entry[1]
        screening = lp_screen_deadline is not None and self.method == "milp"
        if lp_bound is not None:
            if (
                screening
                and lp_bound + task.copy_out <= lp_screen_deadline + 1e-9
            ):
                self.cache.bump("lp_screens")
                return _DelayEval(
                    lp_bound, n, {}, 0, cached=True, proved_met=True
                )
            if warm_objective is not None and lp_bound <= warm_objective:
                self.cache.bump("milp_warm_starts")
                return _DelayEval(warm_objective, n, {}, 0, cached=True)
        built = self._obtain_model(slot, taskset, task, window, mode, hp_wcrt)
        if (
            warm_objective is not None
            and lp_bound is None
            and self.method == "milp"
        ):
            relaxed = self._lp_relax(built, task, mode)
            if relaxed is not None and relaxed.status is SolveStatus.OPTIMAL:
                lp_bound = relaxed.objective
                self.cache.put(key, ("lp", lp_bound))
                if lp_bound <= warm_objective:
                    self.cache.bump("milp_warm_starts")
                    return _DelayEval(
                        warm_objective,
                        built.num_intervals,
                        dict(built.stats),
                        0,
                        cached=False,
                    )
        if screening and lp_bound is None:
            # Middle screening tier: the LP relaxation of the same
            # formulation is a safe over-approximation — if even it
            # fits the deadline, the MILP bound does too, and the
            # integer solve never runs. The model is built exactly
            # once and shared with the integer solve below.
            relaxed = self._lp_relax(built, task, mode)
            if relaxed is not None and relaxed.status is SolveStatus.OPTIMAL:
                self.cache.put(key, ("lp", relaxed.objective))
                if (
                    relaxed.objective + task.copy_out
                    <= lp_screen_deadline + 1e-9
                ):
                    self.cache.bump("lp_screens")
                    return _DelayEval(
                        relaxed.objective,
                        built.num_intervals,
                        dict(built.stats),
                        0,
                        cached=False,
                        proved_met=True,
                    )
        solution = self._solve_model(built.model, taskset, task, mode)
        self.cache.bump("lp_solves" if self.method == "lp" else "milp_solves")
        obs.emit(
            "solve",
            task=task.name,
            dur=solution.runtime_seconds,
            mode=mode.value,
            method=self.method,
            status=solution.status.value,
            degradation=int(solution.degradation),
            rows=built.stats.get("constraints"),
            vars=built.stats.get("variables"),
        )
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleModelError(
                f"delay MILP infeasible for {task.name} (mode={mode.value}, "
                f"window={window}); this indicates a formulation bug"
            )
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedModelError(
                f"delay MILP unbounded for {task.name} (mode={mode.value})"
            )
        degradation = solution.degradation
        if not degradation:
            self.cache.put(
                key,
                (
                    "milp",
                    solution.objective,
                    built.num_intervals,
                    dict(built.stats),
                    int(degradation),
                ),
            )
        return _DelayEval(
            solution.objective,
            built.num_intervals,
            dict(built.stats),
            degradation,
            cached=False,
        )

    def _solve_case_b(self, taskset: TaskSet, task: Task) -> Time:
        key = case_b_key(taskset, task, self._solver_signature())
        entry = self.cache.get(key)
        if entry is not None:
            return entry + task.copy_out
        built = build_delay_milp(taskset, task, 0.0, AnalysisMode.LS_CASE_B)
        solution = self._solve_model(
            built.model, taskset, task, AnalysisMode.LS_CASE_B
        )
        self.cache.bump("lp_solves" if self.method == "lp" else "milp_solves")
        obs.emit(
            "solve",
            task=task.name,
            dur=solution.runtime_seconds,
            mode=AnalysisMode.LS_CASE_B.value,
            method=self.method,
            status=solution.status.value,
            degradation=int(solution.degradation),
            rows=built.stats.get("constraints"),
            vars=built.stats.get("variables"),
        )
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleModelError(f"case-(b) MILP infeasible for {task.name}")
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedModelError(f"case-(b) MILP unbounded for {task.name}")
        if not solution.degradation:
            self.cache.put(key, solution.objective)
        return solution.objective + task.copy_out

    # ------------------------------------------------------------------
    def _iterate(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> _IterationOutcome:
        options = self.options
        if self.method == "closed_form":
            blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
            wcrt = closed_form_delay_bound(
                taskset,
                task,
                blocking_intervals=blocking,
                urgent_possible=mode.uses_ls_machinery,
                deadline_cap=(task.deadline if options.stop_at_deadline else None),
            )
            return _IterationOutcome(
                wcrt, 1, not math.isinf(wcrt), {"method": "closed_form"}
            )

        response = task.total_cost
        details: dict = {
            "method": "milp", "mode": mode.value, "solves": 0, "cache_hits": 0,
        }
        converged = False
        iterations = 0
        hp_wcrt = self._hp_wcrt_map(taskset, task)
        slot = _IncrementalSlot() if options.screening else None
        prev_objective: float | None = None
        for iterations in range(1, options.max_iterations + 1):
            window = max(response - task.exec_time - task.copy_out, task.copy_in)
            with obs.span(
                "fixpoint.iteration",
                task=task.name,
                mode=mode.value,
                iteration=iterations,
            ):
                evaluated = self._delay_objective(
                    taskset, task, window, mode, hp_wcrt,
                    slot=slot, warm_objective=prev_objective,
                )
            if evaluated.cached:
                details["cache_hits"] += 1
            else:
                details["solves"] += 1
            details["num_intervals"] = evaluated.num_intervals
            details.setdefault("milp_stats", evaluated.stats)
            if evaluated.degradation:
                details["degradation"] = max(
                    details.get("degradation", evaluated.degradation),
                    evaluated.degradation,
                )
            new_response = evaluated.objective + task.copy_out
            if new_response <= response + options.convergence_eps:
                response = max(response, new_response)
                converged = True
                break
            response = new_response
            if options.screening:
                prev_objective = evaluated.objective
            if not math.isfinite(response):
                break  # a degraded bound diverged; report unschedulable
            if options.stop_at_deadline and response > task.deadline:
                break
        return _IterationOutcome(response, iterations, converged, details)

    @staticmethod
    def _finalize(task: Task, outcome: _IterationOutcome) -> TaskResult:
        return TaskResult(
            task=task,
            wcrt=outcome.wcrt,
            iterations=outcome.iterations,
            converged=outcome.converged,
            details=outcome.details,
        )

    # ------------------------------------------------------------------
    # fast schedulability verdicts
    # ------------------------------------------------------------------
    def _solve_delay(
        self, taskset: TaskSet, task: Task, window: Time, mode: AnalysisMode
    ) -> Time:
        """One MILP evaluation of the delay map ``f`` at ``window``."""
        evaluated = self._delay_objective(
            taskset, task, window, mode, self._hp_wcrt_map(taskset, task)
        )
        return evaluated.objective + task.copy_out

    def _mode_for(self, task: Task) -> AnalysisMode:
        """The windowed analysis mode a task's verdict iterates."""
        if self._supports_ls and task.latency_sensitive:
            return AnalysisMode.LS_CASE_A
        return self._nls_mode

    @bound_producer
    def _screen_taskset(self, taskset: TaskSet) -> None:
        """Run the batched screening tiers once per task set.

        Tier 1 evaluates every task's conservative closed-form fixpoint
        as a single vectorised batch; tier 2 LP-relaxes the
        deadline-window models of the tasks tier 1 could not prove and
        solves them as one block-diagonal LP. Outcomes land in
        scope-local memos consumed by :meth:`_verdict_mode` — counter
        bumps happen at consumption, so a sweep that stops at its first
        unschedulable task surfaces identical stats sequentially and in
        parallel. Batch-derived LP bounds are persisted like any other
        screening bound: the block-diagonal LP decomposes exactly, any
        valid relaxation bound proves conservatively, and a failed
        screen always falls through to the exact solve — so verdicts
        cannot depend on which batch a bound came from, and a warm run
        skips the screening LPs entirely.
        """
        if taskset in self._screened or not self.options.screening:
            return
        self._screened.add(taskset)
        modes = {task.name: self._mode_for(task) for task in taskset}
        groups: dict[tuple[int, bool], list[Task]] = {}
        for task in taskset:
            mode = modes[task.name]
            blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
            groups.setdefault(
                (blocking, mode.uses_ls_machinery), []
            ).append(task)
        survivors: list[Task] = []
        for (blocking, urgent), tasks in groups.items():
            bounds = closed_form_delay_bounds_batch(
                taskset,
                tasks,
                [blocking] * len(tasks),
                urgent,
                [t.deadline for t in tasks],
            )
            for task, bound in zip(tasks, bounds):
                mode = modes[task.name]
                self._screen_memo[(taskset, task.name, mode.value)] = float(
                    bound
                )
                if (
                    float(bound) > task.deadline + 1e-9
                    and not task.trivially_unschedulable
                ):
                    survivors.append(task)
        if self.method != "milp" or not survivors:
            return
        batch: list[tuple[Task, AnalysisMode, str, DelayMilp]] = []
        for task in sorted(survivors, key=lambda t: t.priority):
            mode = modes[task.name]
            hp_wcrt = self._hp_wcrt_map(taskset, task)
            window_d = max(
                task.deadline - task.exec_time - task.copy_out, task.copy_in
            )
            key, _ = self._delay_key(taskset, task, window_d, mode, hp_wcrt)
            if self.cache.get(key) is not None:
                continue  # a previous run or iteration knows this window
            built = build_delay_milp(
                taskset, task, window_d, mode, hp_wcrt=hp_wcrt
            )
            batch.append((task, mode, key, built))
        if not batch:
            return
        start = time.perf_counter()
        try:
            bounds = screen_batch(
                [built.model.compile() for *_, built in batch]
            )
        except SolverError:
            return  # screening only; the per-task exact path decides
        self.cache.bump("lp_solves", len(batch))
        obs.emit(
            "solve.screen_batch",
            dur=time.perf_counter() - start,
            size=len(batch),
        )
        for (task, mode, key, built), bound in zip(batch, bounds):
            if bound is None:
                continue
            self.cache.put(key, ("lp", float(bound)))
            if bound + task.copy_out <= task.deadline + 1e-9:
                self._lp_proved[(taskset, task.name, mode.value)] = True

    @bound_producer
    def _lp_fixpoint_leq(
        self,
        taskset: TaskSet,
        task: Task,
        mode: AnalysisMode,
        hp_wcrt: dict[str, Time] | None,
    ) -> bool:
        """Screen: does the LP-relaxed fixpoint stay within the deadline?

        Iterates the response-time fixpoint with every evaluation of
        the delay map replaced by its LP-relaxation bound (or an exact
        cached optimum, which is only sharper). The LP map dominates
        the MILP map pointwise and both are monotone in the window, so
        this iteration dominates the integer iteration termwise — a
        converged LP fixpoint within the deadline proves the task
        schedulable without a single integer solve. Inconclusive
        whenever a relaxation fails or the iteration leaves the
        deadline; the caller then falls back to the exact fixpoint.
        """
        if self.method != "milp":
            return False
        options = self.options
        response = task.total_cost
        slot = _IncrementalSlot()
        for _ in range(options.max_iterations):
            window = max(
                response - task.exec_time - task.copy_out, task.copy_in
            )
            key, _ = self._delay_key(taskset, task, window, mode, hp_wcrt)
            entry = self.cache.get(key)
            bound: float | None = None
            if (
                isinstance(entry, tuple)
                and entry
                and entry[0] in ("milp", "lp")
            ):
                bound = entry[1]
            if bound is None:
                built = self._obtain_model(
                    slot, taskset, task, window, mode, hp_wcrt
                )
                relaxed = self._lp_relax(built, task, mode)
                if relaxed is None or relaxed.status is not SolveStatus.OPTIMAL:
                    return False
                bound = relaxed.objective
                self.cache.put(key, ("lp", bound))
            new_response = bound + task.copy_out
            if new_response <= response + options.convergence_eps:
                return max(response, new_response) <= task.deadline + 1e-9
            response = new_response
            if not math.isfinite(response) or response > task.deadline:
                return False
        return False

    def _verdict_mode(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> bool:
        """Fast schedulability verdict for one mode.

        Identical in outcome to iterating the fixpoint, but cheaper —
        the screening cascade of the module docstring applied to one
        task:

        1. a conservative closed-form bound within the deadline proves
           schedulability without any MILP (batched per task set by
           :meth:`_screen_taskset`, recomputed scalar otherwise);
        2. an LP relaxation at the deadline-induced window
           ``t_D = D - C - u`` within the deadline proves it with no
           integer solve (batched when the screen pre-ran, solved
           individually otherwise): the response map ``f`` is monotone,
           so ``f(D) <= D`` makes ``D`` a pre-fixpoint and the least
           fixpoint (the WCRT bound) is ``<= D``;
        3. one integer evaluation at ``t_D`` decides the same way;
        4. the LP-only fixpoint screen proves schedulability when it
           converges within the deadline;
        5. otherwise the standard bottom-up iteration decides.

        ``options.screening=False`` skips tiers 1-4 entirely (for the
        exact-MILP method; the closed form *is* the decision procedure
        of ``method="closed_form"`` and always runs) and decides every
        verdict with tier 5 — the unscreened baseline
        ``BENCH_milp.json`` measures. Every skipped tier only ever
        *proves* schedulability the iteration would also prove, so the
        verdict is identical either way.
        """
        if task.trivially_unschedulable:
            return False
        if self.options.screening or self.method == "closed_form":
            screen = self._screen_memo.get((taskset, task.name, mode.value))
            if screen is None:
                blocking = (
                    2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
                )
                screen = closed_form_delay_bound(
                    taskset,
                    task,
                    blocking_intervals=blocking,
                    urgent_possible=mode.uses_ls_machinery,
                    deadline_cap=task.deadline,
                )
            if screen <= task.deadline + 1e-9:
                self.cache.bump("closed_form_screens")
                return True
        if self.method == "closed_form":
            return False
        if not self.options.screening:
            outcome = self._iterate(taskset, task, mode)
            return outcome.wcrt <= task.deadline + 1e-9
        if self._lp_proved.pop((taskset, task.name, mode.value), False):
            self.cache.bump("screened_out")
            return True
        hp_wcrt = self._hp_wcrt_map(taskset, task)
        window_d = max(
            task.deadline - task.exec_time - task.copy_out, task.copy_in
        )
        evaluated = self._delay_objective(
            taskset,
            task,
            window_d,
            mode,
            hp_wcrt,
            lp_screen_deadline=task.deadline,
        )
        if evaluated.proved_met:
            return True
        if evaluated.objective + task.copy_out <= task.deadline + 1e-9:
            return True
        if self.options.screening and self._lp_fixpoint_leq(
            taskset, task, mode, hp_wcrt
        ):
            self.cache.bump("screened_out")
            return True
        outcome = self._iterate(taskset, task, mode)
        return outcome.wcrt <= task.deadline + 1e-9

    def verdict(self, taskset: TaskSet, task: Task) -> bool:
        """Schedulability verdict for one task (no WCRT value).

        Gives exactly the same answer as
        ``self.response_time(taskset, task).schedulable`` but typically
        needs zero or one MILP solve instead of a full fixpoint.
        """
        taskset.require_member(task)
        if self._supports_ls and task.latency_sensitive:
            if self.method == "milp":
                # Case (b) has an exact closed form (cross-checked
                # against the MILP by the formulation tests); within
                # the deadline it already proves this case, so the
                # integer solve is screened out.
                if (
                    self.options.screening
                    and ls_case_b_bound(taskset, task) <= task.deadline + 1e-9
                ):
                    self.cache.bump("screened_out")
                else:
                    case_b = self._solve_case_b(taskset, task)
                    if case_b > task.deadline + 1e-9:
                        return False
            else:
                if ls_case_b_bound(taskset, task) > task.deadline + 1e-9:
                    return False
            return self._verdict_mode(taskset, task, AnalysisMode.LS_CASE_A)
        return self._verdict_mode(taskset, task, self._nls_mode)

    def first_unschedulable(self, taskset: TaskSet) -> Task | None:
        """Highest-priority task whose verdict is negative, or None."""
        self._screen_taskset(taskset)
        for task in taskset:  # TaskSet iterates in priority order
            if not self.verdict(taskset, task):
                return task
        return None

    # ------------------------------------------------------------------
    def analyze(self, taskset: TaskSet) -> TaskSetResult:
        """Analyse every task in the set (LS marks taken as given)."""
        results = tuple(self.response_time(taskset, t) for t in taskset)
        return TaskSetResult(
            taskset=taskset, results=results, protocol=self.protocol
        )

    def is_schedulable(self, taskset: TaskSet) -> bool:
        """All deadlines proven, with cheap necessary pre-checks.

        The CPU must fit every execution phase and the DMA every memory
        phase in the long run; exceeding either utilisation makes the
        set trivially unschedulable and skips the MILPs.
        """
        cpu_util = sum(t.exec_time / t.period for t in taskset)
        dma_util = sum((t.copy_in + t.copy_out) / t.period for t in taskset)
        if cpu_util > 1.0 + 1e-12 or dma_util > 1.0 + 1e-12:
            return False
        return self.first_unschedulable(taskset) is None
