"""Iterative worst-case response-time computation (paper Sec. VI).

The delay MILP of Sec. V is parameterised by a tentative response time
``R`` (through the window ``t = R - C_i - u_i`` that feeds the arrival
curves and the interval count). Starting from the minimum possible
response ``l_i + C_i + u_i``, the MILP is re-solved with the window
induced by its own previous optimum until the value stabilises — the
classical response-time fixpoint, monotone because larger windows only
enlarge the feasible schedule set.

For LS tasks the bound is the maximum of case (a) (not promoted —
iterated MILP) and case (b) (promoted in ``I_0`` — window-independent,
solved once and cross-checkable against its closed form).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.analysis.cache import (
    AnalysisCache,
    active_cache,
    case_b_key,
    delay_milp_key,
)
from repro.analysis.interface import AnalysisOptions, TaskResult, TaskSetResult
from repro.analysis.proposed.closed_form import (
    closed_form_delay_bound,
    ls_case_b_bound,
)
from repro.analysis.proposed.formulation import (
    AnalysisMode,
    build_delay_milp,
    cancellation_budget,
)
from repro.analysis.proposed.intervals import (
    interference_budget,
    interval_count_ls,
    interval_count_nls,
)
from repro.errors import InfeasibleModelError, SolverError, UnboundedModelError
from repro.milp.highs import HighsBackend
from repro.milp.model import MilpBackend, MilpModel
from repro.milp.resilient import ResilientBackend
from repro.milp.solution import MilpSolution, SolveStatus
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.obs import events as obs
from repro.types import Time

BackendFactory = Callable[[], MilpBackend]


def _default_backend_factory(options: AnalysisOptions) -> BackendFactory:
    return lambda: HighsBackend(
        time_limit=options.time_limit,
        mip_rel_gap=options.mip_rel_gap,
        # With any early-stop knob active, report the dual bound so the
        # result stays a safe over-approximation of the delay.
        use_dual_bound=bool(options.time_limit or options.mip_rel_gap),
    )


class _IterationOutcome:
    """Internal result of one mode's fixpoint iteration."""

    __slots__ = ("wcrt", "iterations", "converged", "details")

    def __init__(
        self, wcrt: Time, iterations: int, converged: bool, details: dict
    ) -> None:
        self.wcrt = wcrt
        self.iterations = iterations
        self.converged = converged
        self.details = details


class _DelayEval:
    """One evaluation of the delay map ``f`` at a window.

    ``objective`` is the MILP optimum (the delaying-interval length;
    add ``copy_out`` for the response), except when ``proved_met`` is
    set: then only the LP relaxation ran and ``objective`` is its
    over-approximating bound, already known to fit the deadline.
    """

    __slots__ = (
        "objective", "num_intervals", "stats", "degradation",
        "cached", "proved_met",
    )

    def __init__(
        self,
        objective: float,
        num_intervals: int,
        stats: dict,
        degradation: int,
        cached: bool,
        proved_met: bool = False,
    ) -> None:
        self.objective = objective
        self.num_intervals = num_intervals
        self.stats = stats
        self.degradation = degradation
        self.cached = cached
        self.proved_met = proved_met


class ProposedAnalysis:
    """WCRT analysis for the paper's protocol (rules R1-R6).

    Args:
        options: Iteration/solver knobs.
        backend_factory: Callable producing a fresh MILP backend per
            solve (defaults to HiGHS configured from ``options``).
        method: ``"milp"`` (the paper's analysis), ``"lp"`` (the LP
            relaxation of the same formulation — a safe, more
            pessimistic bound at one LP solve per iteration), or
            ``"closed_form"`` (the fastest, most conservative screen).
        carry_refinement: Opt-in improvement over the paper's
            Theorem 1: charge each higher-priority task
            ``eta_j(t + R_j)`` interfering jobs (jitter-aware, using
            hierarchically computed hp WCRTs) instead of
            ``eta_j(t) + 1``. Off by default for paper fidelity.
    """

    protocol = "proposed"
    #: Mode pair used for the task under analysis; subclasses override
    #: to reuse the driver for other protocols (see WaslyAnalysis).
    _nls_mode = AnalysisMode.NLS
    _supports_ls = True

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        backend_factory: BackendFactory | None = None,
        method: str = "milp",
        carry_refinement: bool = False,
        cache: AnalysisCache | None = None,
    ) -> None:
        if method not in ("milp", "lp", "closed_form"):
            raise ValueError(f"unknown method {method!r}")
        self.options = options or AnalysisOptions()
        if backend_factory is not None:
            self.backend_factory = backend_factory
        elif method == "lp":
            from repro.milp.relaxation import LpRelaxationBackend

            self.backend_factory = LpRelaxationBackend
        else:
            self.backend_factory = _default_backend_factory(self.options)
        self.method = method
        if cache is not None:
            self.cache = cache
        else:
            scoped = active_cache()
            self.cache = scoped if scoped is not None else AnalysisCache()
        #: Opt-in deviation from the paper: charge higher-priority
        #: interference with the jitter-aware bound eta(t + R_j)
        #: instead of Theorem 1's eta(t) + 1 (see intervals.py). The
        #: hp WCRTs are computed hierarchically with this same
        #: analysis and memoised per task set.
        self.carry_refinement = carry_refinement
        self._wcrt_cache: dict[tuple[TaskSet, str], Time] = {}

    # ------------------------------------------------------------------
    def _hp_wcrt_map(
        self, taskset: TaskSet, task: Task
    ) -> dict[str, Time] | None:
        """Memoised higher-priority WCRTs for the carry refinement.

        Computed hierarchically (highest priority first) with this
        same analysis; an unschedulable or non-converged hp bound is
        simply omitted, falling back to the paper's ``eta(t)+1`` for
        that task (always safe).
        """
        if not self.carry_refinement:
            return None
        result: dict[str, Time] = {}
        for hp_task in taskset.hp(task):  # priority order
            key = (taskset, hp_task.name)
            if key not in self._wcrt_cache:
                self._wcrt_cache[key] = self.response_time(
                    taskset, hp_task
                ).wcrt
            wcrt = self._wcrt_cache[key]
            if math.isfinite(wcrt):
                result[hp_task.name] = wcrt
        return result

    def response_time(self, taskset: TaskSet, task: Task) -> TaskResult:
        """WCRT bound for one task (dispatches on its LS mark)."""
        taskset.require_member(task)
        if self._supports_ls and task.latency_sensitive:
            return self._response_time_ls(taskset, task)
        return self._finalize(
            task, self._iterate(taskset, task, self._nls_mode)
        )

    def _response_time_ls(self, taskset: TaskSet, task: Task) -> TaskResult:
        case_a = self._iterate(taskset, task, AnalysisMode.LS_CASE_A)
        if self.method == "milp":
            case_b_wcrt = self._solve_case_b(taskset, task)
        else:
            case_b_wcrt = ls_case_b_bound(taskset, task)
        wcrt = max(case_a.wcrt, case_b_wcrt)
        details = dict(case_a.details)
        details["case_a_wcrt"] = case_a.wcrt
        details["case_b_wcrt"] = case_b_wcrt
        return TaskResult(
            task=task,
            wcrt=wcrt,
            iterations=case_a.iterations,
            converged=case_a.converged,
            details=details,
        )

    def _closed_form_objective(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> Callable[[], float]:
        """Last-resort safe objective for one mode's delay MILP.

        The closed-form WCRT upper-bounds the MILP fixpoint, hence also
        the per-window MILP optimum (plus copy-out), for every window
        the iteration can visit — so substituting it keeps the analysis
        an upper bound when every solver rung has failed.
        """
        if mode is AnalysisMode.LS_CASE_B:
            return lambda: ls_case_b_bound(taskset, task) - task.copy_out
        blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
        return lambda: (
            closed_form_delay_bound(
                taskset,
                task,
                blocking_intervals=blocking,
                urgent_possible=mode.uses_ls_machinery,
            )
            - task.copy_out
        )

    def _solve_model(
        self, model: MilpModel, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> MilpSolution:
        """Solve one delay MILP, resiliently when options ask for it."""
        backend = self.backend_factory()
        resilience = self.options.resilience
        if resilience is not None and not isinstance(backend, ResilientBackend):
            backend = ResilientBackend.from_config(
                backend,
                resilience,
                closed_form_objective=self._closed_form_objective(
                    taskset, task, mode
                ),
            )
        return model.solve(backend)

    def _solver_signature(self) -> tuple:
        """Solver-relevant options included in every cache key.

        Two analyses whose signatures differ must never share a cached
        objective: a different backend, time limit, gap, or resilience
        chain may return a different (still sound) bound.
        """
        sig = getattr(self, "_solver_sig", None)
        if sig is None:
            factory = self.backend_factory
            backend_tag = getattr(
                factory, "name", None
            ) or getattr(factory, "__qualname__", repr(factory))
            sig = (
                self.method,
                str(backend_tag),
                self.options.time_limit,
                self.options.mip_rel_gap,
                repr(self.options.resilience),
            )
            self._solver_sig = sig
        return sig

    def _window_signature(
        self,
        taskset: TaskSet,
        task: Task,
        window: Time,
        mode: AnalysisMode,
        hp_wcrt: dict[str, Time] | None,
    ) -> tuple[int, tuple[int, ...], int]:
        """The integer staircases through which the window enters the MILP.

        Returns ``(N_i(t), per-task budgets, cancellation budget)`` —
        together they carry *every* dependence of the formulation on
        ``t``, so two windows with equal signatures build the identical
        model (the fact the memo key relies on).
        """
        count = (
            interval_count_ls
            if mode is AnalysisMode.LS_CASE_A
            else interval_count_nls
        )
        n = count(
            taskset, task, window, hp_wcrt,
            urgent_possible=mode.uses_ls_machinery,
        )
        budgets = tuple(
            interference_budget(j, window, hp_wcrt)
            if j.priority < task.priority
            else 1
            for j in taskset
            if j.name != task.name
        )
        return n, budgets, cancellation_budget(taskset, task, window, mode)

    def _delay_objective(
        self,
        taskset: TaskSet,
        task: Task,
        window: Time,
        mode: AnalysisMode,
        hp_wcrt: dict[str, Time] | None,
        lp_screen_deadline: Time | None = None,
    ) -> _DelayEval:
        """Evaluate the delay map ``f`` at ``window``, memoised.

        A cache hit returns the exact objective a fresh build-and-solve
        would produce (the key digests the MILP's full semantic
        content, see :mod:`repro.analysis.cache`). Degraded solutions
        — where the resilient backend substituted a weaker bound — are
        never stored, so a retry keeps its chance of a sharper value.

        With ``lp_screen_deadline`` set (verdict path, exact-MILP
        method only), the LP relaxation of the freshly built model runs
        first; if even its over-approximation fits the deadline the
        integer solve is skipped and the eval comes back with
        ``proved_met`` — sound because relaxing a maximisation can only
        raise the objective.
        """
        n, budgets, cl_budget = self._window_signature(
            taskset, task, window, mode, hp_wcrt
        )
        key = delay_milp_key(
            taskset, task, mode.value, n, budgets, cl_budget,
            hp_wcrt, self._solver_signature(),
        )
        entry = self.cache.get(key)
        if entry is not None:
            objective, num_intervals, stats, degradation = entry
            return _DelayEval(
                objective, num_intervals, dict(stats), degradation, cached=True
            )
        screening = lp_screen_deadline is not None and self.method == "milp"
        lp_bound = self.cache.get("lp:" + key) if screening else None
        if (
            lp_bound is not None
            and lp_bound + task.copy_out <= lp_screen_deadline + 1e-9
        ):
            self.cache.bump("lp_screens")
            return _DelayEval(
                lp_bound, n, {}, 0, cached=True, proved_met=True
            )
        built = build_delay_milp(taskset, task, window, mode, hp_wcrt=hp_wcrt)
        if screening and lp_bound is None:
            # Middle screening tier: the LP relaxation of the same
            # formulation is a safe over-approximation — if even it
            # fits the deadline, the MILP bound does too, and the
            # integer solve never runs. The model is built exactly
            # once and shared with the integer solve below.
            from repro.milp.relaxation import LpRelaxationBackend

            try:
                relaxed = built.model.solve(LpRelaxationBackend())
                self.cache.bump("lp_solves")
                obs.emit(
                    "solve.screen",
                    task=task.name,
                    dur=relaxed.runtime_seconds,
                    mode=mode.value,
                    status=relaxed.status.value,
                    rows=built.stats.get("constraints"),
                    vars=built.stats.get("variables"),
                )
            except SolverError:
                relaxed = None  # screen only; the MILP path decides
            if relaxed is not None and relaxed.status is SolveStatus.OPTIMAL:
                self.cache.put("lp:" + key, relaxed.objective)
                if (
                    relaxed.objective + task.copy_out
                    <= lp_screen_deadline + 1e-9
                ):
                    self.cache.bump("lp_screens")
                    return _DelayEval(
                        relaxed.objective,
                        built.num_intervals,
                        dict(built.stats),
                        0,
                        cached=False,
                        proved_met=True,
                    )
        solution = self._solve_model(built.model, taskset, task, mode)
        self.cache.bump("lp_solves" if self.method == "lp" else "milp_solves")
        obs.emit(
            "solve",
            task=task.name,
            dur=solution.runtime_seconds,
            mode=mode.value,
            method=self.method,
            status=solution.status.value,
            degradation=int(solution.degradation),
            rows=built.stats.get("constraints"),
            vars=built.stats.get("variables"),
        )
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleModelError(
                f"delay MILP infeasible for {task.name} (mode={mode.value}, "
                f"window={window}); this indicates a formulation bug"
            )
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedModelError(
                f"delay MILP unbounded for {task.name} (mode={mode.value})"
            )
        degradation = solution.degradation
        if not degradation:
            self.cache.put(
                key,
                (
                    solution.objective,
                    built.num_intervals,
                    dict(built.stats),
                    degradation,
                ),
            )
        return _DelayEval(
            solution.objective,
            built.num_intervals,
            dict(built.stats),
            degradation,
            cached=False,
        )

    def _solve_case_b(self, taskset: TaskSet, task: Task) -> Time:
        key = case_b_key(taskset, task, self._solver_signature())
        entry = self.cache.get(key)
        if entry is not None:
            return entry + task.copy_out
        built = build_delay_milp(taskset, task, 0.0, AnalysisMode.LS_CASE_B)
        solution = self._solve_model(
            built.model, taskset, task, AnalysisMode.LS_CASE_B
        )
        self.cache.bump("lp_solves" if self.method == "lp" else "milp_solves")
        obs.emit(
            "solve",
            task=task.name,
            dur=solution.runtime_seconds,
            mode=AnalysisMode.LS_CASE_B.value,
            method=self.method,
            status=solution.status.value,
            degradation=int(solution.degradation),
            rows=built.stats.get("constraints"),
            vars=built.stats.get("variables"),
        )
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleModelError(f"case-(b) MILP infeasible for {task.name}")
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedModelError(f"case-(b) MILP unbounded for {task.name}")
        if not solution.degradation:
            self.cache.put(key, solution.objective)
        return solution.objective + task.copy_out

    # ------------------------------------------------------------------
    def _iterate(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> _IterationOutcome:
        options = self.options
        if self.method == "closed_form":
            blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
            wcrt = closed_form_delay_bound(
                taskset,
                task,
                blocking_intervals=blocking,
                urgent_possible=mode.uses_ls_machinery,
                deadline_cap=(task.deadline if options.stop_at_deadline else None),
            )
            return _IterationOutcome(
                wcrt, 1, not math.isinf(wcrt), {"method": "closed_form"}
            )

        response = task.total_cost
        details: dict = {
            "method": "milp", "mode": mode.value, "solves": 0, "cache_hits": 0,
        }
        converged = False
        iterations = 0
        hp_wcrt = self._hp_wcrt_map(taskset, task)
        for iterations in range(1, options.max_iterations + 1):
            window = max(response - task.exec_time - task.copy_out, task.copy_in)
            with obs.span(
                "fixpoint.iteration",
                task=task.name,
                mode=mode.value,
                iteration=iterations,
            ):
                evaluated = self._delay_objective(
                    taskset, task, window, mode, hp_wcrt
                )
            if evaluated.cached:
                details["cache_hits"] += 1
            else:
                details["solves"] += 1
            details["num_intervals"] = evaluated.num_intervals
            details.setdefault("milp_stats", evaluated.stats)
            if evaluated.degradation:
                details["degradation"] = max(
                    details.get("degradation", evaluated.degradation),
                    evaluated.degradation,
                )
            new_response = evaluated.objective + task.copy_out
            if new_response <= response + options.convergence_eps:
                response = max(response, new_response)
                converged = True
                break
            response = new_response
            if not math.isfinite(response):
                break  # a degraded bound diverged; report unschedulable
            if options.stop_at_deadline and response > task.deadline:
                break
        return _IterationOutcome(response, iterations, converged, details)

    @staticmethod
    def _finalize(task: Task, outcome: _IterationOutcome) -> TaskResult:
        return TaskResult(
            task=task,
            wcrt=outcome.wcrt,
            iterations=outcome.iterations,
            converged=outcome.converged,
            details=outcome.details,
        )

    # ------------------------------------------------------------------
    # fast schedulability verdicts
    # ------------------------------------------------------------------
    def _solve_delay(
        self, taskset: TaskSet, task: Task, window: Time, mode: AnalysisMode
    ) -> Time:
        """One MILP evaluation of the delay map ``f`` at ``window``."""
        evaluated = self._delay_objective(
            taskset, task, window, mode, self._hp_wcrt_map(taskset, task)
        )
        return evaluated.objective + task.copy_out

    def _verdict_mode(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> bool:
        """Fast schedulability verdict for one mode.

        Identical in outcome to iterating the fixpoint, but cheaper:

        1. a conservative closed-form bound within the deadline proves
           schedulability without any MILP;
        2. one evaluation at the deadline-induced window
           ``t_D = D - C - u`` — the LP relaxation of the model screens
           first (exact-MILP method), then the integer solve: the
           response map ``f`` is monotone, so ``f(D) <= D`` makes ``D``
           a pre-fixpoint and the least fixpoint (the WCRT bound) is
           ``<= D``. The model is built once and shared between the LP
           screen and the MILP solve, and the solve is memoised;
        3. otherwise the standard bottom-up iteration decides.
        """
        if task.trivially_unschedulable:
            return False
        blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
        screen = closed_form_delay_bound(
            taskset,
            task,
            blocking_intervals=blocking,
            urgent_possible=mode.uses_ls_machinery,
            deadline_cap=task.deadline,
        )
        if screen <= task.deadline + 1e-9:
            self.cache.bump("closed_form_screens")
            return True
        if self.method == "closed_form":
            return False
        window_d = max(
            task.deadline - task.exec_time - task.copy_out, task.copy_in
        )
        evaluated = self._delay_objective(
            taskset,
            task,
            window_d,
            mode,
            self._hp_wcrt_map(taskset, task),
            lp_screen_deadline=task.deadline,
        )
        if evaluated.proved_met:
            return True
        if evaluated.objective + task.copy_out <= task.deadline + 1e-9:
            return True
        outcome = self._iterate(taskset, task, mode)
        return outcome.wcrt <= task.deadline + 1e-9

    def verdict(self, taskset: TaskSet, task: Task) -> bool:
        """Schedulability verdict for one task (no WCRT value).

        Gives exactly the same answer as
        ``self.response_time(taskset, task).schedulable`` but typically
        needs zero or one MILP solve instead of a full fixpoint.
        """
        taskset.require_member(task)
        if self._supports_ls and task.latency_sensitive:
            if self.method == "milp":
                case_b = self._solve_case_b(taskset, task)
            else:
                case_b = ls_case_b_bound(taskset, task)
            if case_b > task.deadline + 1e-9:
                return False
            return self._verdict_mode(taskset, task, AnalysisMode.LS_CASE_A)
        return self._verdict_mode(taskset, task, self._nls_mode)

    def first_unschedulable(self, taskset: TaskSet) -> Task | None:
        """Highest-priority task whose verdict is negative, or None."""
        for task in taskset:  # TaskSet iterates in priority order
            if not self.verdict(taskset, task):
                return task
        return None

    # ------------------------------------------------------------------
    def analyze(self, taskset: TaskSet) -> TaskSetResult:
        """Analyse every task in the set (LS marks taken as given)."""
        results = tuple(self.response_time(taskset, t) for t in taskset)
        return TaskSetResult(
            taskset=taskset, results=results, protocol=self.protocol
        )

    def is_schedulable(self, taskset: TaskSet) -> bool:
        """All deadlines proven, with cheap necessary pre-checks.

        The CPU must fit every execution phase and the DMA every memory
        phase in the long run; exceeding either utilisation makes the
        set trivially unschedulable and skips the MILPs.
        """
        cpu_util = sum(t.exec_time / t.period for t in taskset)
        dma_util = sum((t.copy_in + t.copy_out) / t.period for t in taskset)
        if cpu_util > 1.0 + 1e-12 or dma_util > 1.0 + 1e-12:
            return False
        return self.first_unschedulable(taskset) is None
