"""Iterative worst-case response-time computation (paper Sec. VI).

The delay MILP of Sec. V is parameterised by a tentative response time
``R`` (through the window ``t = R - C_i - u_i`` that feeds the arrival
curves and the interval count). Starting from the minimum possible
response ``l_i + C_i + u_i``, the MILP is re-solved with the window
induced by its own previous optimum until the value stabilises — the
classical response-time fixpoint, monotone because larger windows only
enlarge the feasible schedule set.

For LS tasks the bound is the maximum of case (a) (not promoted —
iterated MILP) and case (b) (promoted in ``I_0`` — window-independent,
solved once and cross-checkable against its closed form).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.analysis.interface import AnalysisOptions, TaskResult, TaskSetResult
from repro.analysis.proposed.closed_form import (
    closed_form_delay_bound,
    ls_case_b_bound,
)
from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.errors import InfeasibleModelError, SolverError, UnboundedModelError
from repro.milp.highs import HighsBackend
from repro.milp.model import MilpBackend, MilpModel
from repro.milp.resilient import ResilientBackend
from repro.milp.solution import MilpSolution, SolveStatus
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time

BackendFactory = Callable[[], MilpBackend]


def _default_backend_factory(options: AnalysisOptions) -> BackendFactory:
    return lambda: HighsBackend(
        time_limit=options.time_limit,
        mip_rel_gap=options.mip_rel_gap,
        # With any early-stop knob active, report the dual bound so the
        # result stays a safe over-approximation of the delay.
        use_dual_bound=bool(options.time_limit or options.mip_rel_gap),
    )


class _IterationOutcome:
    """Internal result of one mode's fixpoint iteration."""

    __slots__ = ("wcrt", "iterations", "converged", "details")

    def __init__(
        self, wcrt: Time, iterations: int, converged: bool, details: dict
    ) -> None:
        self.wcrt = wcrt
        self.iterations = iterations
        self.converged = converged
        self.details = details


class ProposedAnalysis:
    """WCRT analysis for the paper's protocol (rules R1-R6).

    Args:
        options: Iteration/solver knobs.
        backend_factory: Callable producing a fresh MILP backend per
            solve (defaults to HiGHS configured from ``options``).
        method: ``"milp"`` (the paper's analysis), ``"lp"`` (the LP
            relaxation of the same formulation — a safe, more
            pessimistic bound at one LP solve per iteration), or
            ``"closed_form"`` (the fastest, most conservative screen).
        carry_refinement: Opt-in improvement over the paper's
            Theorem 1: charge each higher-priority task
            ``eta_j(t + R_j)`` interfering jobs (jitter-aware, using
            hierarchically computed hp WCRTs) instead of
            ``eta_j(t) + 1``. Off by default for paper fidelity.
    """

    protocol = "proposed"
    #: Mode pair used for the task under analysis; subclasses override
    #: to reuse the driver for other protocols (see WaslyAnalysis).
    _nls_mode = AnalysisMode.NLS
    _supports_ls = True

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        backend_factory: BackendFactory | None = None,
        method: str = "milp",
        carry_refinement: bool = False,
    ) -> None:
        if method not in ("milp", "lp", "closed_form"):
            raise ValueError(f"unknown method {method!r}")
        self.options = options or AnalysisOptions()
        if backend_factory is not None:
            self.backend_factory = backend_factory
        elif method == "lp":
            from repro.milp.relaxation import LpRelaxationBackend

            self.backend_factory = LpRelaxationBackend
        else:
            self.backend_factory = _default_backend_factory(self.options)
        self.method = method
        #: Opt-in deviation from the paper: charge higher-priority
        #: interference with the jitter-aware bound eta(t + R_j)
        #: instead of Theorem 1's eta(t) + 1 (see intervals.py). The
        #: hp WCRTs are computed hierarchically with this same
        #: analysis and memoised per task set.
        self.carry_refinement = carry_refinement
        self._wcrt_cache: dict[tuple[TaskSet, str], Time] = {}

    # ------------------------------------------------------------------
    def _hp_wcrt_map(
        self, taskset: TaskSet, task: Task
    ) -> dict[str, Time] | None:
        """Memoised higher-priority WCRTs for the carry refinement.

        Computed hierarchically (highest priority first) with this
        same analysis; an unschedulable or non-converged hp bound is
        simply omitted, falling back to the paper's ``eta(t)+1`` for
        that task (always safe).
        """
        if not self.carry_refinement:
            return None
        result: dict[str, Time] = {}
        for hp_task in taskset.hp(task):  # priority order
            key = (taskset, hp_task.name)
            if key not in self._wcrt_cache:
                self._wcrt_cache[key] = self.response_time(
                    taskset, hp_task
                ).wcrt
            wcrt = self._wcrt_cache[key]
            if math.isfinite(wcrt):
                result[hp_task.name] = wcrt
        return result

    def response_time(self, taskset: TaskSet, task: Task) -> TaskResult:
        """WCRT bound for one task (dispatches on its LS mark)."""
        taskset.require_member(task)
        if self._supports_ls and task.latency_sensitive:
            return self._response_time_ls(taskset, task)
        return self._finalize(
            task, self._iterate(taskset, task, self._nls_mode)
        )

    def _response_time_ls(self, taskset: TaskSet, task: Task) -> TaskResult:
        case_a = self._iterate(taskset, task, AnalysisMode.LS_CASE_A)
        if self.method == "milp":
            case_b_wcrt = self._solve_case_b(taskset, task)
        else:
            case_b_wcrt = ls_case_b_bound(taskset, task)
        wcrt = max(case_a.wcrt, case_b_wcrt)
        details = dict(case_a.details)
        details["case_a_wcrt"] = case_a.wcrt
        details["case_b_wcrt"] = case_b_wcrt
        return TaskResult(
            task=task,
            wcrt=wcrt,
            iterations=case_a.iterations,
            converged=case_a.converged,
            details=details,
        )

    def _closed_form_objective(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> Callable[[], float]:
        """Last-resort safe objective for one mode's delay MILP.

        The closed-form WCRT upper-bounds the MILP fixpoint, hence also
        the per-window MILP optimum (plus copy-out), for every window
        the iteration can visit — so substituting it keeps the analysis
        an upper bound when every solver rung has failed.
        """
        if mode is AnalysisMode.LS_CASE_B:
            return lambda: ls_case_b_bound(taskset, task) - task.copy_out
        blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
        return lambda: (
            closed_form_delay_bound(
                taskset,
                task,
                blocking_intervals=blocking,
                urgent_possible=mode.uses_ls_machinery,
            )
            - task.copy_out
        )

    def _solve_model(
        self, model: MilpModel, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> MilpSolution:
        """Solve one delay MILP, resiliently when options ask for it."""
        backend = self.backend_factory()
        resilience = self.options.resilience
        if resilience is not None and not isinstance(backend, ResilientBackend):
            backend = ResilientBackend.from_config(
                backend,
                resilience,
                closed_form_objective=self._closed_form_objective(
                    taskset, task, mode
                ),
            )
        return model.solve(backend)

    def _solve_case_b(self, taskset: TaskSet, task: Task) -> Time:
        built = build_delay_milp(taskset, task, 0.0, AnalysisMode.LS_CASE_B)
        solution = self._solve_model(
            built.model, taskset, task, AnalysisMode.LS_CASE_B
        )
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleModelError(f"case-(b) MILP infeasible for {task.name}")
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedModelError(f"case-(b) MILP unbounded for {task.name}")
        return solution.objective + task.copy_out

    # ------------------------------------------------------------------
    def _iterate(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> _IterationOutcome:
        options = self.options
        if self.method == "closed_form":
            blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
            wcrt = closed_form_delay_bound(
                taskset,
                task,
                blocking_intervals=blocking,
                urgent_possible=mode.uses_ls_machinery,
                deadline_cap=(task.deadline if options.stop_at_deadline else None),
            )
            return _IterationOutcome(
                wcrt, 1, not math.isinf(wcrt), {"method": "closed_form"}
            )

        response = task.total_cost
        details: dict = {"method": "milp", "mode": mode.value, "solves": 0}
        converged = False
        iterations = 0
        hp_wcrt = self._hp_wcrt_map(taskset, task)
        for iterations in range(1, options.max_iterations + 1):
            window = max(response - task.exec_time - task.copy_out, task.copy_in)
            built = build_delay_milp(taskset, task, window, mode, hp_wcrt=hp_wcrt)
            solution = self._solve_model(built.model, taskset, task, mode)
            details["solves"] = iterations
            details["num_intervals"] = built.num_intervals
            details.setdefault("milp_stats", built.stats)
            if solution.degradation:
                details["degradation"] = max(
                    details.get("degradation", solution.degradation),
                    solution.degradation,
                )
            if solution.status is SolveStatus.INFEASIBLE:
                raise InfeasibleModelError(
                    f"delay MILP infeasible for {task.name} (mode={mode.value}, "
                    f"window={window}); this indicates a formulation bug"
                )
            if solution.status is SolveStatus.UNBOUNDED:
                raise UnboundedModelError(
                    f"delay MILP unbounded for {task.name} (mode={mode.value})"
                )
            new_response = solution.objective + task.copy_out
            if new_response <= response + options.convergence_eps:
                response = max(response, new_response)
                converged = True
                break
            response = new_response
            if not math.isfinite(response):
                break  # a degraded bound diverged; report unschedulable
            if options.stop_at_deadline and response > task.deadline:
                break
        return _IterationOutcome(response, iterations, converged, details)

    @staticmethod
    def _finalize(task: Task, outcome: _IterationOutcome) -> TaskResult:
        return TaskResult(
            task=task,
            wcrt=outcome.wcrt,
            iterations=outcome.iterations,
            converged=outcome.converged,
            details=outcome.details,
        )

    # ------------------------------------------------------------------
    # fast schedulability verdicts
    # ------------------------------------------------------------------
    def _solve_delay(
        self, taskset: TaskSet, task: Task, window: Time, mode: AnalysisMode
    ) -> Time:
        """One MILP evaluation of the delay map ``f`` at ``window``."""
        built = build_delay_milp(
            taskset, task, window, mode,
            hp_wcrt=self._hp_wcrt_map(taskset, task),
        )
        solution = self._solve_model(built.model, taskset, task, mode)
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleModelError(
                f"delay MILP infeasible for {task.name} (mode={mode.value})"
            )
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedModelError(
                f"delay MILP unbounded for {task.name} (mode={mode.value})"
            )
        return solution.objective + task.copy_out

    def _verdict_mode(
        self, taskset: TaskSet, task: Task, mode: AnalysisMode
    ) -> bool:
        """Fast schedulability verdict for one mode.

        Identical in outcome to iterating the fixpoint, but cheaper:

        1. a conservative closed-form bound within the deadline proves
           schedulability without any MILP;
        2. one MILP evaluation at the deadline-induced window
           ``t_D = D - C - u``: the response map ``f`` is monotone, so
           ``f(D) <= D`` makes ``D`` a pre-fixpoint and the least
           fixpoint (the WCRT bound) is ``<= D``;
        3. otherwise the standard bottom-up iteration decides.
        """
        if task.trivially_unschedulable:
            return False
        blocking = 2 if mode in (AnalysisMode.NLS, AnalysisMode.WASLY) else 1
        screen = closed_form_delay_bound(
            taskset,
            task,
            blocking_intervals=blocking,
            urgent_possible=mode.uses_ls_machinery,
            deadline_cap=task.deadline,
        )
        if screen <= task.deadline + 1e-9:
            return True
        if self.method == "closed_form":
            return False
        window_d = max(
            task.deadline - task.exec_time - task.copy_out, task.copy_in
        )
        if self.method == "milp":
            # Middle tier: the LP relaxation of the same formulation is
            # a safe over-approximation — if even it fits the deadline
            # at the deadline-induced window, the MILP bound does too.
            built = build_delay_milp(
                taskset, task, window_d, mode,
                hp_wcrt=self._hp_wcrt_map(taskset, task),
            )
            from repro.milp.relaxation import LpRelaxationBackend

            try:
                relaxed = built.model.solve(LpRelaxationBackend())
            except SolverError:
                relaxed = None  # screen only; the MILP path decides
            if (
                relaxed is not None
                and relaxed.status is SolveStatus.OPTIMAL
                and relaxed.objective + task.copy_out <= task.deadline + 1e-9
            ):
                return True
        if self._solve_delay(taskset, task, window_d, mode) <= task.deadline + 1e-9:
            return True
        outcome = self._iterate(taskset, task, mode)
        return outcome.wcrt <= task.deadline + 1e-9

    def verdict(self, taskset: TaskSet, task: Task) -> bool:
        """Schedulability verdict for one task (no WCRT value).

        Gives exactly the same answer as
        ``self.response_time(taskset, task).schedulable`` but typically
        needs zero or one MILP solve instead of a full fixpoint.
        """
        taskset.require_member(task)
        if self._supports_ls and task.latency_sensitive:
            if self.method == "milp":
                case_b = self._solve_case_b(taskset, task)
            else:
                case_b = ls_case_b_bound(taskset, task)
            if case_b > task.deadline + 1e-9:
                return False
            return self._verdict_mode(taskset, task, AnalysisMode.LS_CASE_A)
        return self._verdict_mode(taskset, task, self._nls_mode)

    def first_unschedulable(self, taskset: TaskSet) -> Task | None:
        """Highest-priority task whose verdict is negative, or None."""
        for task in taskset:  # TaskSet iterates in priority order
            if not self.verdict(taskset, task):
                return task
        return None

    # ------------------------------------------------------------------
    def analyze(self, taskset: TaskSet) -> TaskSetResult:
        """Analyse every task in the set (LS marks taken as given)."""
        results = tuple(self.response_time(taskset, t) for t in taskset)
        return TaskSetResult(
            taskset=taskset, results=results, protocol=self.protocol
        )

    def is_schedulable(self, taskset: TaskSet) -> bool:
        """All deadlines proven, with cheap necessary pre-checks.

        The CPU must fit every execution phase and the DMA every memory
        phase in the long run; exceeding either utilisation makes the
        set trivially unschedulable and skips the MILPs.
        """
        cpu_util = sum(t.exec_time / t.period for t in taskset)
        dma_util = sum((t.copy_in + t.copy_out) / t.period for t in taskset)
        if cpu_util > 1.0 + 1e-12 or dma_util > 1.0 + 1e-12:
            return False
        return self.first_unschedulable(taskset) is None
