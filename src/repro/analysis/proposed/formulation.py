"""MILP formulation of the worst-case delay (paper Sec. V).

Given a task under analysis, a tentative delay window ``t`` and an
analysis mode, :func:`build_delay_milp` constructs the MILP whose
optimum upper-bounds the total length of the scheduling intervals that
delay the task, per Constraints 1-15 of the paper.

Modes
-----
``NLS``
    The task under analysis is not latency-sensitive (Sec. V-A):
    up to two lower-priority blocking intervals.
``LS_CASE_A``
    The task is LS and is *not* promoted to urgent in ``I_0``
    (Sec. V-B case (a)): at most one blocking interval, no
    lower-priority copy-in anywhere in the window (Constraint 14).
``LS_CASE_B``
    The task is LS and *is* promoted in ``I_0`` (case (b)): exactly two
    intervals; the CPU performs the task's copy-in and execution
    sequentially in ``I_1`` (Constraint 15).
``WASLY``
    The protocol of [3]: same interval structure as ``NLS`` but without
    cancellations or urgent executions (the paper notes its MILP
    "improves the one in [3]" when no task is LS — this mode is that
    specialisation, used as the [3] baseline).

Variable-encoding notes (all equivalences, not relaxations):

* Constraint 1 (``L^k_j = E^{k+1}_j``) is applied by *substitution*:
  the copy-in indicator of task j in interval k **is** ``E^{k+1}_j``.
* Constraint 2 (``E^k_j + LE^k_j = U^{k+1}_j``) likewise eliminates the
  copy-out binaries.
* Binaries that a constraint forces to zero (e.g. lower-priority
  executions beyond ``I_1``, urgent executions of NLS tasks) are simply
  not created; expression builders treat missing variables as 0.
* ``CL^k_j`` (cancelled copy-in) exists only where some LS task with a
  priority higher than j can release — including the task under
  analysis itself (its copy-in can be cancelled by a higher-priority LS
  release; the paper's Constraint 10 sums over all of Gamma).

Deviations that *enlarge* the feasible set (safe for a maximisation
bound) are documented in DESIGN.md: Constraints 5 and 6 encoded as
``<= 1`` instead of ``= 1``, and the refined interval counts.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.proposed.intervals import (
    interference_budget,
    interval_count_ls,
    interval_count_nls,
)
from repro.errors import AnalysisError
from repro.milp.expr import LinExpr, Var
from repro.milp.model import MilpModel
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time


class AnalysisMode(enum.Enum):
    """Which variant of the delay MILP to build."""

    NLS = "nls"
    LS_CASE_A = "ls_a"
    LS_CASE_B = "ls_b"
    WASLY = "wasly"

    @property
    def uses_ls_machinery(self) -> bool:
        """Whether cancellations/urgency (rules R3-R5) are modelled."""
        return self is not AnalysisMode.WASLY


@dataclass(frozen=True)
class DelayMilp:
    """A built delay MILP plus the handles the driver needs.

    Attributes:
        model: The MILP; objective = sum of interval lengths.
        deltas: The interval-length variables, by interval index.
        num_intervals: ``N_i(t)`` used for the build.
        mode: Analysis mode the MILP encodes.
        window: The tentative delay window ``t`` the build used.
        stats: Size/diagnostic counters.
    """

    model: MilpModel
    deltas: tuple[Var, ...]
    num_intervals: int
    mode: AnalysisMode
    window: Time
    stats: Mapping[str, object] = field(default_factory=dict)


class _VarTable:
    """Sparse (interval, task) -> Var map; missing entries mean 0."""

    def __init__(self, model: MilpModel, prefix: str) -> None:
        self._model = model
        self._prefix = prefix
        self._vars: dict[tuple[int, str], Var] = {}

    def create(self, k: int, task: Task) -> Var:
        var = self._model.binary(f"{self._prefix}[{k},{task.name}]")
        self._vars[(k, task.name)] = var
        return var

    def get(self, k: int, task: Task) -> Var | None:
        return self._vars.get((k, task.name))

    def row(self, k: int) -> list[Var]:
        """All variables of interval ``k``."""
        return [v for (kk, _), v in self._vars.items() if kk == k]

    def column(self, task: Task) -> list[Var]:
        """All variables of one task across intervals."""
        return [v for (_, name), v in self._vars.items() if name == task.name]

    def all_vars(self) -> list[Var]:
        return list(self._vars.values())

    def __len__(self) -> int:
        return len(self._vars)


def _lin(vars_and_coefs: list[tuple[Var | None, float]]) -> LinExpr:
    """Build a LinExpr from (maybe-missing var, coefficient) pairs."""
    expr = LinExpr()
    for var, coef in vars_and_coefs:
        if var is not None and coef != 0.0:
            expr = expr + coef * var
    return expr


def cancellation_budget(
    taskset: TaskSet, task: Task, window: Time, mode: AnalysisMode
) -> int:
    """Max cancellations in the window (DESIGN.md cancellation budget).

    Each cancellation is triggered by one LS release inside the window;
    under case (a) the task's own release at the window start counts
    too. Exposed as a function because, together with the interference
    budgets and ``N_i(t)``, it is one of the three integer staircases
    through which the window enters the formulation — the analysis
    cache keys on exactly these quantities.
    """
    if not mode.uses_ls_machinery:
        return 0
    budget = sum(
        s.eta(window) + 1 for s in taskset.ls_tasks if s.name != task.name
    )
    if mode is AnalysisMode.LS_CASE_A:
        budget += 1
    return budget


def _big_m(taskset: TaskSet) -> float:
    """A safe upper bound on any single interval's length.

    An interval lasts as long as the longer of the CPU side (at most
    one execution, possibly preceded by an urgent copy-in) and the DMA
    side (one copy-out plus one copy-in).
    """
    cpu = max(t.copy_in + t.exec_time for t in taskset)
    dma = taskset.max_copy_in() + taskset.max_copy_out()
    return cpu + dma + 1.0


def build_delay_milp(
    taskset: TaskSet,
    task: Task,
    window: Time,
    mode: AnalysisMode,
    hp_wcrt: Mapping[str, Time] | None = None,
) -> DelayMilp:
    """Construct the delay-maximisation MILP for one analysis step.

    Args:
        taskset: The per-core task set ``Gamma``.
        task: The task under analysis ``tau_i``.
        window: Tentative delay window ``t = R - C_i - u_i``.
        mode: Formulation variant (see :class:`AnalysisMode`).
        hp_wcrt: Known WCRT bounds of higher-priority tasks; when
            provided, interference is charged with the jitter-aware
            refinement instead of the paper's ``eta(t)+1`` (see
            :func:`repro.analysis.proposed.intervals.interference_budget`).

    Returns:
        The built MILP; its optimum is the worst-case total length of
        the delaying intervals (add ``u_i`` for the response time).
    """
    taskset.require_member(task)
    if mode in (AnalysisMode.LS_CASE_A, AnalysisMode.LS_CASE_B):
        if not task.latency_sensitive:
            raise AnalysisError(f"{task.name} is not marked LS; use NLS mode")
    if mode is AnalysisMode.NLS and task.latency_sensitive:
        raise AnalysisError(f"{task.name} is marked LS; use the LS modes")

    if mode is AnalysisMode.LS_CASE_B:
        return _build_case_b(taskset, task)

    if mode is AnalysisMode.LS_CASE_A:
        n = interval_count_ls(
            taskset, task, window, hp_wcrt,
            urgent_possible=mode.uses_ls_machinery,
        )
    else:
        n = interval_count_nls(
            taskset, task, window, hp_wcrt,
            urgent_possible=mode.uses_ls_machinery,
        )
    return _build_windowed(taskset, task, window, mode, n, hp_wcrt)


def update_delay_milp(
    built: DelayMilp,
    taskset: TaskSet,
    task: Task,
    window: Time,
    hp_wcrt: Mapping[str, Time] | None = None,
) -> DelayMilp | None:
    """Retarget an already-built delay MILP to a new window, in place.

    The window enters the windowed formulation *only* through the
    interval count ``N_i(t)`` (variable structure) and the right-hand
    sides of the per-task execution budgets (``C7[j]``, higher-priority
    rows) and the cancellation budget (``CLbudget``). When the new
    window keeps ``N_i(t)`` unchanged, mutating those row bounds yields
    a model bit-identical to a fresh :func:`build_delay_milp` at the
    new window — same variables, same coefficient matrix, same row
    order and names (audit provenance included) — without re-running
    any construction Python. Returns ``None`` when the interval count
    changed and the caller must rebuild.
    """
    mode = built.mode
    if mode is AnalysisMode.LS_CASE_B:
        return built  # case (b) is window-independent
    count = (
        interval_count_ls
        if mode is AnalysisMode.LS_CASE_A
        else interval_count_nls
    )
    n = count(
        taskset, task, window, hp_wcrt,
        urgent_possible=mode.uses_ls_machinery,
    )
    if n != built.num_intervals:
        return None
    model = built.model
    for j in taskset.hp(task):
        model.set_rhs(
            f"C7[{j.name}]", float(interference_budget(j, window, hp_wcrt))
        )
    model.set_rhs(
        "CLbudget", float(cancellation_budget(taskset, task, window, mode))
    )
    return dataclasses.replace(built, window=window)


# ----------------------------------------------------------------------
# shared windowed formulation (NLS, LS case (a), WASLY)
# ----------------------------------------------------------------------
def _cancellers(
    taskset: TaskSet, task: Task, victim: Task, mode: AnalysisMode
) -> list[Task]:
    """LS tasks whose release can cancel ``victim``'s copy-in (R3).

    A release of an LS task ``s`` cancels an in-progress copy-in of any
    task with a priority lower than ``s``. The task under analysis
    itself counts when it is LS (case (a)): its own release at the
    window start can cancel a lower-priority copy-in.
    """
    if not mode.uses_ls_machinery:
        return []
    out = [
        s
        for s in taskset.ls_tasks
        if s.priority < victim.priority and s.name not in (task.name, victim.name)
    ]
    if mode is AnalysisMode.LS_CASE_A and task.priority < victim.priority:
        out.append(task)
    return out


def _build_windowed(
    taskset: TaskSet,
    task: Task,
    window: Time,
    mode: AnalysisMode,
    n: int,
    hp_wcrt: Mapping[str, Time] | None = None,
) -> DelayMilp:
    others = tuple(j for j in taskset if j.name != task.name)
    hp = set(t.name for t in taskset.hp(task))
    lp = set(t.name for t in taskset.lp(task))
    max_l_all = max(t.copy_in for t in taskset)
    max_u_all = max(t.copy_out for t in taskset)
    big_m = _big_m(taskset)
    # Lower-priority executions are confined to the first `lp_exec_span`
    # intervals: two for NLS/WASLY (Constraint 3), one for LS case (a)
    # (Constraint 14).
    lp_exec_span = 1 if mode is AnalysisMode.LS_CASE_A else 2

    model = MilpModel(f"delay[{task.name},{mode.value},N={n}]")

    # ------------------------------------------------------------------
    # binary structure variables (sparse: only where a schedule may
    # set them, per Constraints 3, 4, 14)
    # ------------------------------------------------------------------
    E = _VarTable(model, "E")
    LE = _VarTable(model, "LE")
    CL = _VarTable(model, "CL")

    for j in others:
        is_lp = j.name in lp
        for k in range(0, n - 1):  # executions live in I_0 .. I_{N-2}
            if is_lp and k >= lp_exec_span:
                break
            E.create(k, j)
            if mode.uses_ls_machinery and j.latency_sensitive:
                LE.create(k, j)

    # Cancelled copy-ins CL^k_j, k in [0, N-3]; lower-priority victims
    # only in I_0 (Constraint 3 / 14); the task under analysis can be a
    # victim too (its copy-in may be cancelled by a higher LS release).
    for j in taskset:
        if not _cancellers(taskset, task, j, mode):
            continue
        span = 1 if j.name in lp else n - 2
        for k in range(0, min(span, n - 2)):
            CL.create(k, j)

    # ------------------------------------------------------------------
    # continuous interval variables
    # ------------------------------------------------------------------
    dma_side_max = max_l_all + max_u_all
    cpu_side_max = max(
        (
            (j.copy_in + j.exec_time)
            if (j.latency_sensitive and mode.uses_ls_machinery)
            else j.exec_time
            for j in others
        ),
        default=0.0,
    )
    deltas: list[Var] = []
    d_exec: list[Var] = []
    d_in: list[Var] = []
    d_out: list[Var] = []
    for k in range(n):
        cpu_cap_k = task.exec_time if k == n - 1 else cpu_side_max
        deltas.append(
            model.continuous(f"D[{k}]", 0.0, max(cpu_cap_k, dma_side_max))
        )
        if k == n - 1:
            # Constraint 12: the last interval executes tau_i exactly.
            d_exec.append(model.continuous(f"De[{k}]", task.exec_time, task.exec_time))
            d_in.append(model.continuous(f"Dl[{k}]", 0.0, max_l_all))
        elif k == n - 2:
            d_exec.append(model.continuous(f"De[{k}]", 0.0, big_m))
            # Constraint 12: second-last copy-in is tau_i's, length l_i.
            d_in.append(model.continuous(f"Dl[{k}]", task.copy_in, task.copy_in))
        else:
            d_exec.append(model.continuous(f"De[{k}]", 0.0, big_m))
            d_in.append(model.continuous(f"Dl[{k}]", 0.0, big_m))
        if k == 0:
            # Constraint 12: first copy-out belongs to an unknown
            # pre-window task.
            d_out.append(model.continuous(f"Du[{k}]", 0.0, max_u_all))
        else:
            d_out.append(model.continuous(f"Du[{k}]", 0.0, big_m))

    # ------------------------------------------------------------------
    # Constraint 5: at most one CPU occupant per interval.
    # ------------------------------------------------------------------
    for k in range(0, n - 1):
        occupants = E.row(k) + LE.row(k)
        if occupants:
            model.add(LinExpr.total(occupants) <= 1, f"C5[{k}]")

    # ------------------------------------------------------------------
    # Constraint 6: at most one copy-in (completed or cancelled) per
    # interval. The completed copy-in of interval k is the execution
    # indicator of interval k+1 (Constraint 1 by substitution).
    # ------------------------------------------------------------------
    for k in range(0, n - 2):
        terms = E.row(k + 1) + CL.row(k)
        if terms:
            model.add(LinExpr.total(terms) <= 1, f"C6[{k}]")

    # ------------------------------------------------------------------
    # Constraint 7: per-task execution budgets.
    # ------------------------------------------------------------------
    for j in others:
        occurrences = E.column(j) + LE.column(j)
        if not occurrences:
            continue
        if j.name in hp:
            budget = interference_budget(j, window, hp_wcrt)
        else:
            budget = 1
        model.add(LinExpr.total(occurrences) <= budget, f"C7[{j.name}]")

    # ------------------------------------------------------------------
    # Constraint 8: an urgent execution in I_{k+1} needs a cancelled
    # copy-in of a task with lower priority than the promoted task in
    # I_k (rules R3/R4/R5; tau_i is in the ready queue throughout).
    # ------------------------------------------------------------------
    for j in others:
        if not j.latency_sensitive or not mode.uses_ls_machinery:
            continue
        for k in range(0, n - 2):
            le_var = LE.get(k + 1, j)
            if le_var is None:
                continue
            victims = [
                CL.get(k, victim)
                for victim in taskset
                if victim.priority > j.priority
            ]
            model.add(
                _lin([(v, 1.0) for v in victims]) >= le_var,
                f"C8[{k},{j.name}]",
            )

    # ------------------------------------------------------------------
    # Cancellation budget (DESIGN.md): each cancellation is triggered
    # by one LS release inside the window.
    # ------------------------------------------------------------------
    cl_vars = CL.all_vars()
    if cl_vars:
        model.add(
            LinExpr.total(cl_vars)
            <= cancellation_budget(taskset, task, window, mode),
            "CLbudget",
        )

    # ------------------------------------------------------------------
    # Constraint 9: CPU time per interval.
    # ------------------------------------------------------------------
    for k in range(0, n - 1):
        expr = _lin(
            [(E.get(k, j), j.exec_time) for j in others]
            + [(LE.get(k, j), j.copy_in + j.exec_time) for j in others]
        )
        model.add(d_exec[k] <= expr, f"C9[{k}]")

    # ------------------------------------------------------------------
    # Constraint 10: DMA copy-in time per interval (completed copy-in
    # of the task executing next interval, or a cancelled one).
    # ------------------------------------------------------------------
    for k in range(0, n - 2):
        expr = _lin(
            [(E.get(k + 1, j), j.copy_in) for j in others]
            + [(CL.get(k, j), j.copy_in) for j in taskset]
        )
        model.add(d_in[k] <= expr, f"C10[{k}]")

    # ------------------------------------------------------------------
    # Constraint 11: DMA copy-out time per interval = output of the
    # interval-before's occupant (Constraint 2 by substitution).
    # ------------------------------------------------------------------
    for k in range(1, n):
        expr = _lin(
            [(E.get(k - 1, j), j.copy_out) for j in others]
            + [(LE.get(k - 1, j), j.copy_out) for j in others]
        )
        model.add(d_out[k] <= expr, f"C11[{k}]")

    # ------------------------------------------------------------------
    # Constraint 13: interval length = max(CPU side, DMA side).
    # The big-M of each inequality only has to cover the *other* side's
    # largest possible value (when alpha deactivates an inequality, the
    # active one already caps Delta_k), which keeps the LP relaxation
    # tight and the branch-and-bound shallow.
    # ------------------------------------------------------------------
    for k in range(n):
        cpu_cap = task.exec_time if k == n - 1 else cpu_side_max
        alpha = model.binary(f"alpha[{k}]")
        model.add(deltas[k] <= d_exec[k] + dma_side_max * alpha, f"C13a[{k}]")
        model.add(
            deltas[k] <= d_in[k] + d_out[k] + cpu_cap * (1 - alpha), f"C13b[{k}]"
        )

    model.maximize(LinExpr.total(deltas))

    return DelayMilp(
        model=model,
        deltas=tuple(deltas),
        num_intervals=n,
        mode=mode,
        window=window,
        stats={
            **model.stats(),
            "E_vars": len(E),
            "LE_vars": len(LE),
            "CL_vars": len(CL),
        },
    )


# ----------------------------------------------------------------------
# LS case (b): tau_i promoted to urgent in I_0 (Sec. V-B case (b))
# ----------------------------------------------------------------------
def _build_case_b(taskset: TaskSet, task: Task) -> DelayMilp:
    """Two intervals: anything in I_0; CPU runs ``l_i + C_i`` in I_1.

    The promotion (R4) requires a cancelled or absent copy-in in I_0,
    and the cancelled victim is necessarily in ``lp(tau_i)`` (any LS
    released in I_0 with higher priority than tau_i would have taken
    the urgency instead), so the I_0 DMA copy-in time is bounded by the
    largest lower-priority copy-in (Constraint 15).
    """
    others = tuple(j for j in taskset if j.name != task.name)
    lp_l = [j.copy_in for j in taskset.lp(task)]
    max_l_victim = max(lp_l, default=0.0)
    max_l_next = max((j.copy_in for j in others), default=0.0)
    max_u_all = max(t.copy_out for t in taskset)
    big_m = _big_m(taskset)

    model = MilpModel(f"delay[{task.name},ls_b]")
    E = _VarTable(model, "E")
    LE = _VarTable(model, "LE")
    for j in others:
        E.create(0, j)
        if j.latency_sensitive:
            LE.create(0, j)

    occupants = E.row(0) + LE.row(0)
    if occupants:
        model.add(LinExpr.total(occupants) <= 1, "C5[0]")

    d0 = model.continuous("D[0]", 0.0, big_m)
    d1 = model.continuous("D[1]", 0.0, big_m)
    d_exec0 = model.continuous("De[0]", 0.0, big_m)
    d_in0 = model.continuous("Dl[0]", 0.0, max_l_victim)
    d_out0 = model.continuous("Du[0]", 0.0, max_u_all)
    # Constraint 15: the CPU side of I_1 is exactly l_i + C_i.
    cpu1 = task.copy_in + task.exec_time
    d_exec1 = model.continuous("De[1]", cpu1, cpu1)
    d_in1 = model.continuous("Dl[1]", 0.0, max_l_next)
    d_out1 = model.continuous("Du[1]", 0.0, big_m)

    model.add(
        d_exec0
        <= _lin(
            [(E.get(0, j), j.exec_time) for j in others]
            + [(LE.get(0, j), j.copy_in + j.exec_time) for j in others]
        ),
        "C9[0]",
    )
    model.add(
        d_out1
        <= _lin(
            [(E.get(0, j), j.copy_out) for j in others]
            + [(LE.get(0, j), j.copy_out) for j in others]
        ),
        "C11[1]",
    )
    for k, (d, de, di, du) in enumerate(
        [(d0, d_exec0, d_in0, d_out0), (d1, d_exec1, d_in1, d_out1)]
    ):
        alpha = model.binary(f"alpha[{k}]")
        model.add(d <= de + big_m * alpha, f"C13a[{k}]")
        model.add(d <= di + du + big_m * (1 - alpha), f"C13b[{k}]")

    model.maximize(d0 + d1)
    return DelayMilp(
        model=model,
        deltas=(d0, d1),
        num_intervals=2,
        mode=AnalysisMode.LS_CASE_B,
        window=0.0,
        stats=model.stats(),
    )
