"""Fast conservative delay bounds (no MILP solve).

These bounds over-approximate every scheduling interval by the longest
it could possibly be — ``max(CPU side, max copy-in + max copy-out)`` —
and count intervals exactly as Theorem 1 / Corollary 1 do. They are
cheap fixpoints, provably no tighter than the MILP (whose per-interval
lengths are tied to the specific occupant), and serve three purposes:

* a fast screening mode for large experiments;
* a property-test oracle (``simulation <= MILP <= closed form``);
* the *exact* treatment of LS case (b), whose two-interval structure
  admits a closed form (used to cross-check the case-(b) MILP).
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time

_FIXPOINT_CAP = 100_000


def _interval_bound(taskset: TaskSet, occupant: Task, urgent_possible: bool) -> Time:
    """Longest an interval occupied by ``occupant`` can last.

    The CPU side is the execution (plus a sequential copy-in when the
    occupant may run urgent, R5); the DMA side is at most one copy-out
    plus one copy-in of arbitrary tasks.
    """
    cpu = occupant.exec_time
    if urgent_possible and occupant.latency_sensitive:
        cpu += occupant.copy_in
    dma = taskset.max_copy_in() + taskset.max_copy_out()
    return max(cpu, dma)


def ls_case_b_bound(taskset: TaskSet, task: Task) -> Time:
    """Exact closed form of LS case (b) (task promoted in ``I_0``).

    ``I_0`` holds one arbitrary execution (or none) in parallel with a
    cancelled lower-priority copy-in and a pre-window copy-out; ``I_1``
    holds the CPU-side ``l_i + C_i`` in parallel with the copy-out of
    ``I_0``'s occupant and one further copy-in; the response ends after
    the task's own copy-out.
    """
    if not task.latency_sensitive:
        raise AnalysisError(f"{task.name} is not LS; case (b) does not apply")
    others = [j for j in taskset if j.name != task.name]
    exec0 = max(
        (
            (j.copy_in + j.exec_time) if j.latency_sensitive else j.exec_time
            for j in others
        ),
        default=0.0,
    )
    max_l_victim = max((j.copy_in for j in taskset.lp(task)), default=0.0)
    max_u_all = max(t.copy_out for t in taskset)
    delta0 = max(exec0, max_l_victim + max_u_all)
    max_l_next = max((j.copy_in for j in others), default=0.0)
    max_u_prev = max((j.copy_out for j in others), default=0.0)
    delta1 = max(task.copy_in + task.exec_time, max_l_next + max_u_prev)
    return delta0 + delta1 + task.copy_out


def closed_form_delay_bound(
    taskset: TaskSet,
    task: Task,
    blocking_intervals: int,
    urgent_possible: bool,
    deadline_cap: Time | None = None,
) -> Time:
    """Conservative WCRT fixpoint with per-interval over-approximation.

    Args:
        taskset: The per-core task set.
        task: Task under analysis.
        blocking_intervals: 2 for NLS / protocol [3], 1 for LS case (a).
        urgent_possible: Whether LS tasks may run with a sequential
            copy-in (True for the proposed protocol, False for [3]).
        deadline_cap: Abort (returning ``inf``) once the bound passes
            this value; defaults to the task's deadline.

    Returns:
        A WCRT upper bound, or ``inf`` when the fixpoint diverges past
        the cap.
    """
    taskset.require_member(task)
    cap = task.deadline if deadline_cap is None else deadline_cap
    hp = taskset.hp(task)
    lp = taskset.lp(task)
    dma_side = taskset.max_copy_in() + taskset.max_copy_out()

    lp_bounds = sorted(
        (_interval_bound(taskset, j, urgent_possible) for j in lp), reverse=True
    )
    blocking = sum(lp_bounds[: min(blocking_intervals, len(lp_bounds))])
    # One potentially execution-free interval (I_0 can be pure DMA work
    # when nothing was loaded at the release instant).
    slack_interval = dma_side
    own = max(task.exec_time, dma_side) + task.copy_out

    def delay(window: Time) -> Time:
        interference = sum(
            (j.eta(window) + 1) * _interval_bound(taskset, j, urgent_possible)
            for j in hp
        )
        return slack_interval + blocking + interference

    window = task.copy_in
    for _ in range(_FIXPOINT_CAP):
        response = delay(window) + own
        new_window = response - task.exec_time - task.copy_out
        if new_window <= window + 1e-9:
            return response
        window = new_window
        if response > cap:
            return math.inf
    return math.inf
