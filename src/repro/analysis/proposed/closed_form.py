"""Fast conservative delay bounds (no MILP solve).

These bounds over-approximate every scheduling interval by the longest
it could possibly be — ``max(CPU side, max copy-in + max copy-out)`` —
and count intervals exactly as Theorem 1 / Corollary 1 do. They are
cheap fixpoints, provably no tighter than the MILP (whose per-interval
lengths are tied to the specific occupant), and serve three purposes:

* a fast screening mode for large experiments;
* a property-test oracle (``simulation <= MILP <= closed form``);
* the *exact* treatment of LS case (b), whose two-interval structure
  admits a closed form (used to cross-check the case-(b) MILP).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.curves import BurstyArrival, PeriodicJitterArrival, SporadicArrival
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import TIME_EPS, Time

_FIXPOINT_CAP = 100_000


def _interval_bound(taskset: TaskSet, occupant: Task, urgent_possible: bool) -> Time:
    """Longest an interval occupied by ``occupant`` can last.

    The CPU side is the execution (plus a sequential copy-in when the
    occupant may run urgent, R5); the DMA side is at most one copy-out
    plus one copy-in of arbitrary tasks.
    """
    cpu = occupant.exec_time
    if urgent_possible and occupant.latency_sensitive:
        cpu += occupant.copy_in
    dma = taskset.max_copy_in() + taskset.max_copy_out()
    return max(cpu, dma)


def ls_case_b_bound(taskset: TaskSet, task: Task) -> Time:
    """Exact closed form of LS case (b) (task promoted in ``I_0``).

    ``I_0`` holds one arbitrary execution (or none) in parallel with a
    cancelled lower-priority copy-in and a pre-window copy-out; ``I_1``
    holds the CPU-side ``l_i + C_i`` in parallel with the copy-out of
    ``I_0``'s occupant and one further copy-in; the response ends after
    the task's own copy-out.
    """
    if not task.latency_sensitive:
        raise AnalysisError(f"{task.name} is not LS; case (b) does not apply")
    others = [j for j in taskset if j.name != task.name]
    exec0 = max(
        (
            (j.copy_in + j.exec_time) if j.latency_sensitive else j.exec_time
            for j in others
        ),
        default=0.0,
    )
    max_l_victim = max((j.copy_in for j in taskset.lp(task)), default=0.0)
    max_u_all = max(t.copy_out for t in taskset)
    delta0 = max(exec0, max_l_victim + max_u_all)
    max_l_next = max((j.copy_in for j in others), default=0.0)
    max_u_prev = max((j.copy_out for j in others), default=0.0)
    delta1 = max(task.copy_in + task.exec_time, max_l_next + max_u_prev)
    return delta0 + delta1 + task.copy_out


def closed_form_delay_bound(
    taskset: TaskSet,
    task: Task,
    blocking_intervals: int,
    urgent_possible: bool,
    deadline_cap: Time | None = None,
) -> Time:
    """Conservative WCRT fixpoint with per-interval over-approximation.

    Args:
        taskset: The per-core task set.
        task: Task under analysis.
        blocking_intervals: 2 for NLS / protocol [3], 1 for LS case (a).
        urgent_possible: Whether LS tasks may run with a sequential
            copy-in (True for the proposed protocol, False for [3]).
        deadline_cap: Abort (returning ``inf``) once the bound passes
            this value; defaults to the task's deadline.

    Returns:
        A WCRT upper bound, or ``inf`` when the fixpoint diverges past
        the cap.
    """
    taskset.require_member(task)
    cap = task.deadline if deadline_cap is None else deadline_cap
    hp = taskset.hp(task)
    lp = taskset.lp(task)
    dma_side = taskset.max_copy_in() + taskset.max_copy_out()

    lp_bounds = sorted(
        (_interval_bound(taskset, j, urgent_possible) for j in lp), reverse=True
    )
    blocking = sum(lp_bounds[: min(blocking_intervals, len(lp_bounds))])
    # One potentially execution-free interval (I_0 can be pure DMA work
    # when nothing was loaded at the release instant).
    slack_interval = dma_side
    own = max(task.exec_time, dma_side) + task.copy_out

    def delay(window: Time) -> Time:
        interference = sum(
            (j.eta(window) + 1) * _interval_bound(taskset, j, urgent_possible)
            for j in hp
        )
        return slack_interval + blocking + interference

    window = task.copy_in
    for _ in range(_FIXPOINT_CAP):
        response = delay(window) + own
        new_window = response - task.exec_time - task.copy_out
        if new_window <= window + 1e-9:
            return response
        window = new_window
        if response > cap:
            return math.inf
    return math.inf


# ----------------------------------------------------------------------
# vectorised batch screening
# ----------------------------------------------------------------------
def _ceil_div_vec(delta: np.ndarray, period: float) -> np.ndarray:
    """Vectorised replica of ``curves.arrival._ceil_div`` (with the
    same near-integer snapping), applied elementwise."""
    raw = delta / period
    nearest = np.round(raw)
    snapped = np.abs(raw - nearest) <= TIME_EPS * np.maximum(
        1.0, np.abs(nearest)
    )
    counts = np.where(snapped, nearest, np.ceil(raw))
    return np.where(delta > 0, counts, 0.0)


def eta_batch(task: Task, deltas: np.ndarray) -> np.ndarray:
    """``task.eta`` over a whole vector of windows at once.

    The closed forms of the three arrival models in
    :mod:`repro.curves` are evaluated with numpy (bit-equal to the
    scalar implementations — same snapping, same rounding); unknown
    curve types fall back to elementwise calls.
    """
    arrivals = task.arrivals
    if isinstance(arrivals, SporadicArrival):
        return _ceil_div_vec(deltas, arrivals.period)
    if isinstance(arrivals, BurstyArrival):
        return np.minimum(
            _ceil_div_vec(deltas + arrivals.jitter, arrivals.period),
            _ceil_div_vec(deltas, arrivals.d_min),
        )
    if isinstance(arrivals, PeriodicJitterArrival):
        return _ceil_div_vec(deltas + arrivals.jitter, arrivals.period)
    return np.array([float(arrivals.eta(float(d))) for d in deltas])


def closed_form_delay_bounds_batch(
    taskset: TaskSet,
    tasks: Sequence[Task],
    blocking_intervals: Sequence[int],
    urgent_possible: bool,
    caps: Sequence[Time],
) -> np.ndarray:
    """All tasks' conservative WCRT fixpoints, iterated as one batch.

    Semantically equal to calling :func:`closed_form_delay_bound` per
    task (same interval bounds, same convergence/cap rules) but the
    per-iteration interference sums run as one numpy matrix product
    across every task still iterating — the screening tier of a whole
    task set costs a handful of vector operations instead of
    ``O(tasks x iterations x hp)`` Python arithmetic.

    Returns an array of WCRT upper bounds (``inf`` where the fixpoint
    passed its cap).
    """
    if not tasks:
        return np.empty(0)
    members = list(taskset)
    bounds_by_name = {
        j.name: _interval_bound(taskset, j, urgent_possible) for j in members
    }
    dma_side = taskset.max_copy_in() + taskset.max_copy_out()

    m = len(tasks)
    # Static per-task quantities.
    blocking = np.empty(m)
    own = np.empty(m)
    exec_out = np.empty(m)
    copy_in = np.empty(m)
    cap_arr = np.asarray([float(c) for c in caps])
    # hp interference structure: matrix W[i, j] = interval bound of
    # member j if j has higher priority than analysed task i, else 0.
    weights = np.zeros((m, len(members)))
    for i, task in enumerate(tasks):
        lp_bounds = sorted(
            (bounds_by_name[j.name] for j in taskset.lp(task)), reverse=True
        )
        k = min(int(blocking_intervals[i]), len(lp_bounds))
        blocking[i] = sum(lp_bounds[:k])
        own[i] = max(task.exec_time, dma_side) + task.copy_out
        exec_out[i] = task.exec_time + task.copy_out
        copy_in[i] = task.copy_in
        for j_index, j in enumerate(members):
            if j.priority < task.priority:
                weights[i, j_index] = bounds_by_name[j.name]

    windows = copy_in.copy()
    results = np.full(m, math.inf)
    active = np.ones(m, dtype=bool)
    for _ in range(_FIXPOINT_CAP):
        if not active.any():
            break
        idx = np.flatnonzero(active)
        w = windows[idx]
        # eta matrix over the active tasks: E[a, j] = eta_j(w_a).
        eta = np.empty((len(idx), len(members)))
        for j_index, j in enumerate(members):
            eta[:, j_index] = eta_batch(j, w)
        interference = ((eta + 1.0) * weights[idx]).sum(axis=1)
        response = dma_side + blocking[idx] + interference + own[idx]
        new_window = response - exec_out[idx]
        converged = new_window <= w + 1e-9
        results[idx[converged]] = response[converged]
        diverged = ~converged & (response > cap_arr[idx])
        still = ~converged & ~diverged
        windows[idx[still]] = new_window[still]
        active[idx[converged]] = False
        active[idx[diverged]] = False
    return results
