"""Interval-count bounds (paper Theorem 1 and Corollary 1).

The schedule window analysed by the MILP consists of ``N_i(t)``
scheduling time intervals; the task under analysis executes in the
last one and (unless urgent) its DMA copy-in occupies the second-last.

The paper states ``N_i(t) = sum_{hp}(eta_j(t)+1) + 3`` for NLS tasks
(two blocking intervals + interference + own execution) and ``+ 2`` for
LS tasks (one blocking interval). The structural (non-interference)
delay intervals of an NLS window are either

* two blocking intervals occupied by two *distinct* lower-priority
  tasks (Constraint 7 allows each to execute once), or
* one blocking interval followed by a *pipeline bubble*: the task was
  released mid-interval, so nothing was loaded for the next interval
  and its own copy-in runs there with the CPU idle (the interval still
  has DMA length: the blocker's copy-out plus the copy-in).

Both shapes need two extra intervals when at least one lower-priority
task exists; with none, only the bubble remains. An LS task under
case (a) never sees the bubble: whenever no copy-in completes in the
release interval, rule R4 would promote it — which is case (b) — so
case (a) keeps the paper's one extra blocking interval (when a
lower-priority task exists), with a floor of two intervals
(copy-in + execution) overall.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time


def interference_budget(
    interfering: Task,
    window: Time,
    hp_wcrt: Mapping[str, Time] | None = None,
) -> int:
    """Max jobs of one higher-priority task delaying the window.

    The paper's Theorem 1 charges ``eta_j(t) + 1`` (one carry-in
    instance pending at the window start). When the interfering task's
    own WCRT bound ``R_j`` is known and finite (analysis in priority
    order), the classical jitter-aware refinement applies: only jobs
    released after ``-R_j`` relative to the window start can still be
    incomplete, so at most ``eta_j(t + R_j)`` jobs interfere — always
    at most the paper's count for ``R_j <= T_j``. The refinement is an
    *opt-in* deviation from the paper (``carry_refinement`` on the
    analysis classes); the default reproduces Theorem 1 exactly.
    """
    if hp_wcrt is not None:
        wcrt = hp_wcrt.get(interfering.name)
        if wcrt is not None and math.isfinite(wcrt):
            refined = interfering.eta(window + wcrt)
            return min(refined, interfering.eta(window) + 1)
    return interfering.eta(window) + 1


def _interference_intervals(
    taskset: TaskSet,
    task: Task,
    window: Time,
    hp_wcrt: Mapping[str, Time] | None = None,
) -> int:
    """Max number of higher-priority job executions in the window."""
    return sum(
        interference_budget(j, window, hp_wcrt) for j in taskset.hp(task)
    )


def _refinement_surcharge(
    taskset: TaskSet,
    task: Task,
    window: Time,
    hp_wcrt: Mapping[str, Time],
) -> int:
    """Extra structural intervals charged under the refinement only.

    The paper's ``eta_j(t) + 1`` budgets leave at least one surplus
    interference interval per higher-priority task; those spares
    silently absorb two delay shapes that are not executions of
    higher-priority jobs *inside* the window:

    * the partial interval already in progress when ``tau_i`` is
      released (e.g. a higher-priority copy-in occupying the DMA while
      the CPU idles) — at most one, and
    * CPU-idle cancellation bubbles: a higher-priority LS release
      cancels ``tau_i``'s in-progress copy-in (rules R3/R4), leaving an
      interval where only the doomed copy-in ran — at most one per
      higher-priority LS job that can appear in the window.

    The jitter-aware refinement removes the slack, so both must be
    charged explicitly (the paper's own count stays an upper bound, so
    callers cap the refined count at it).
    """
    bubbles = sum(
        interference_budget(j, window, hp_wcrt)
        for j in taskset.hp(task)
        if j.latency_sensitive
    )
    return 1 + bubbles


def interval_count_nls(
    taskset: TaskSet,
    task: Task,
    window: Time,
    hp_wcrt: Mapping[str, Time] | None = None,
    urgent_possible: bool = True,
) -> int:
    """``N_i(t)`` for an NLS task under analysis (Theorem 1, refined).

    Structural extra intervals: two when any lower-priority task exists
    (two blockings, or one blocking plus the release bubble — see the
    module docstring), one otherwise (the bubble alone); plus
    interference and the task's own execution interval. Under the
    refinement a structural surcharge is added, capped at the paper's
    count, which also bounds it — see :func:`_refinement_surcharge`.
    """
    extra = 2 if taskset.lp(task) else 1
    n = _interference_intervals(taskset, task, window, hp_wcrt) + extra + 1
    if hp_wcrt is not None and urgent_possible:
        paper = _interference_intervals(taskset, task, window) + extra + 1
        n = min(n + _refinement_surcharge(taskset, task, window, hp_wcrt), paper)
    return max(n, 2)


def interval_count_ls(
    taskset: TaskSet,
    task: Task,
    window: Time,
    hp_wcrt: Mapping[str, Time] | None = None,
    urgent_possible: bool = True,
) -> int:
    """``N_i(t)`` for an LS task, case (a) (Corollary 1, refined).

    At most one lower-priority blocking interval (Property 4). Under
    the refinement a structural surcharge is added exactly as in
    :func:`interval_count_nls`.
    """
    blocking = min(1, len(taskset.lp(task)))
    n = _interference_intervals(taskset, task, window, hp_wcrt) + blocking + 1
    if hp_wcrt is not None and urgent_possible:
        paper = _interference_intervals(taskset, task, window) + blocking + 1
        n = min(n + _refinement_surcharge(taskset, task, window, hp_wcrt), paper)
    return max(n, 2)
