"""Decode a delay-MILP solution into a worst-case schedule witness.

The delay MILP's binary variables describe *which* schedule shape the
solver found worst: who executes in each interval, which copy-ins are
cancelled, who runs urgent. This module turns a solved model back into
that structural description — per interval: occupant, copy-in, copy-out,
cancellation, and the chosen lengths — so the worst case can be read,
printed, and sanity-checked (the checks in :func:`validate_witness`
mirror the protocol rules on the decoded schedule).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.proposed.formulation import DelayMilp
from repro.errors import AnalysisError
from repro.milp.solution import MilpSolution
from repro.types import Time

_SET = 0.5  # binaries are snapped to {0,1}; anything above is "set"


@dataclass(frozen=True)
class WitnessInterval:
    """One interval of the decoded worst-case schedule."""

    index: int
    length: Time
    cpu_length: Time
    dma_in_length: Time
    dma_out_length: Time
    executes: str | None = None
    urgent: bool = False
    copy_in_of: str | None = None
    cancelled_copy_in_of: str | None = None


@dataclass(frozen=True)
class ScheduleWitness:
    """The decoded schedule plus headline numbers."""

    task_name: str
    mode: str
    intervals: tuple[WitnessInterval, ...]
    total_delay: Time

    def render(self) -> str:
        """Readable table of the worst-case window."""
        lines = [
            f"worst-case window for {self.task_name} "
            f"(mode={self.mode}, {len(self.intervals)} intervals, "
            f"delay={self.total_delay:.3f})",
            f"{'k':>3} {'len':>8} {'cpu':>8} {'dma':>12}  activity",
        ]
        for iv in self.intervals:
            dma = f"{iv.dma_out_length:.2f}+{iv.dma_in_length:.2f}"
            acts = []
            if iv.executes:
                acts.append(
                    f"exec {iv.executes}{' (urgent)' if iv.urgent else ''}"
                )
            if iv.copy_in_of:
                acts.append(f"copy-in {iv.copy_in_of}")
            if iv.cancelled_copy_in_of:
                acts.append(f"CANCEL {iv.cancelled_copy_in_of}")
            lines.append(
                f"{iv.index:>3} {iv.length:>8.3f} {iv.cpu_length:>8.3f} "
                f"{dma:>12}  {'; '.join(acts) or '-'}"
            )
        return "\n".join(lines)


def _lookup(solution: MilpSolution, name: str) -> float:
    try:
        return solution.value_by_name(name)
    except KeyError:
        return 0.0


def extract_witness(
    built: DelayMilp, solution: MilpSolution, task_name: str
) -> ScheduleWitness:
    """Decode a solved delay MILP into a :class:`ScheduleWitness`.

    Args:
        built: The formulation returned by ``build_delay_milp``.
        solution: Its (optimal) solution.
        task_name: The task under analysis (labels the final interval).
    """
    if not solution.status.has_solution:
        raise AnalysisError(
            f"cannot extract a witness from a {solution.status.value} solve"
        )
    set_binaries = set(solution.binaries_set())
    n = built.num_intervals

    def binary_owner(prefix: str, k: int) -> str | None:
        tag = f"{prefix}[{k},"
        for name in set_binaries:
            if name.startswith(tag):
                return name[len(tag):-1]
        return None

    intervals = []
    for k in range(n):
        executes = binary_owner("E", k)
        urgent_of = binary_owner("LE", k)
        if k == n - 1:
            executes = task_name
        copy_in_of = binary_owner("E", k + 1) if k < n - 1 else None
        if k == n - 2 and built.mode.value != "ls_b":
            copy_in_of = task_name
        intervals.append(
            WitnessInterval(
                index=k,
                length=solution[built.deltas[k]],
                cpu_length=_lookup(solution, f"De[{k}]"),
                dma_in_length=_lookup(solution, f"Dl[{k}]"),
                dma_out_length=_lookup(solution, f"Du[{k}]"),
                executes=urgent_of or executes,
                urgent=urgent_of is not None,
                copy_in_of=copy_in_of,
                cancelled_copy_in_of=binary_owner("CL", k),
            )
        )
    return ScheduleWitness(
        task_name=task_name,
        mode=built.mode.value,
        intervals=tuple(intervals),
        total_delay=sum(iv.length for iv in intervals),
    )


def validate_witness(witness: ScheduleWitness) -> None:
    """Check protocol-level sanity of a decoded schedule.

    These are semantic checks on the decoded structure, complementary
    to the MILP's own constraints: interval lengths are covered by the
    claimed work, at most one occupant per interval, and the task under
    analysis executes exactly in the final interval.
    """
    last = witness.intervals[-1]
    if last.executes != witness.task_name:
        raise AnalysisError(
            f"final interval executes {last.executes!r}, expected "
            f"{witness.task_name!r}"
        )
    for iv in witness.intervals:
        dma = iv.dma_in_length + iv.dma_out_length
        if iv.length > max(iv.cpu_length, dma) + 1e-6:
            raise AnalysisError(
                f"interval {iv.index} length {iv.length} exceeds both the "
                f"CPU ({iv.cpu_length}) and DMA ({dma}) work"
            )
        if iv.executes is None and iv.cpu_length > 1e-6:
            raise AnalysisError(
                f"interval {iv.index} claims CPU time without an occupant"
            )
