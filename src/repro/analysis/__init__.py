"""Schedulability analyses for the three compared approaches.

* :mod:`repro.analysis.nps` — classical non-preemptive fixed-priority
  scheduling, memory phases executed inline by the CPU (the paper's
  "NPS" baseline [16]).
* :mod:`repro.analysis.wasly` — the protocol of Wasly & Pellizzoni [3]
  (double-buffered intervals, up to two lower-priority blockers),
  analysed with the paper's MILP machinery specialised to
  ``Gamma_LS = emptyset`` plus a closed-form variant.
* :mod:`repro.analysis.proposed` — the paper's protocol (rules R1-R6)
  analysed with the MILP of Sec. V, NLS and LS cases.
* :mod:`repro.analysis.threshold` — limited preemption of the 3-phase
  model via per-task preemption thresholds (zoo protocol).
* :mod:`repro.analysis.regulated` — NPS under per-core memory
  bandwidth regulation (zoo protocol).
* :mod:`repro.analysis.registry` — the protocol registry every layer
  (config, CLI, report, simulators) resolves names through.
* :mod:`repro.analysis.ls_assignment` — the greedy LS-marking
  algorithm of Sec. VI and ablation heuristics.
* :mod:`repro.analysis.schedulability` — task-set level front end.
"""

from repro.analysis.cache import AnalysisCache, active_cache, cache_scope
from repro.analysis.interface import (
    AnalysisOptions,
    RegulationConfig,
    TaskResult,
    TaskSetResult,
)
from repro.analysis.nps import NpsAnalysis
from repro.analysis.wasly import WaslyAnalysis
from repro.analysis.proposed import ProposedAnalysis
from repro.analysis.threshold import ThresholdAnalysis
from repro.analysis.regulated import RegulatedAnalysis, regulated_duration
from repro.analysis.registry import (
    ProtocolSpec,
    make_analysis,
    protocol_spec,
    register_protocol,
    registered_protocols,
    simulable_protocols,
    simulator_class,
)
from repro.analysis.ls_assignment import (
    LsAssignmentOutcome,
    greedy_ls_assignment,
)
from repro.analysis.schedulability import analyze_taskset, is_schedulable

__all__ = [
    "AnalysisCache",
    "active_cache",
    "cache_scope",
    "AnalysisOptions",
    "RegulationConfig",
    "TaskResult",
    "TaskSetResult",
    "NpsAnalysis",
    "WaslyAnalysis",
    "ProposedAnalysis",
    "ThresholdAnalysis",
    "RegulatedAnalysis",
    "regulated_duration",
    "ProtocolSpec",
    "make_analysis",
    "protocol_spec",
    "register_protocol",
    "registered_protocols",
    "simulable_protocols",
    "simulator_class",
    "LsAssignmentOutcome",
    "greedy_ls_assignment",
    "analyze_taskset",
    "is_schedulable",
]
