"""Content-addressed memoisation for the MILP analysis hot path.

Reproducing a Fig. 2 sweep means thousands of response-time fixpoints,
and the delay MILP of one fixpoint step depends on its window ``t``
*only through integer quantities*: the interference budgets
``eta_j(t) + 1``, the interval count ``N_i(t)``, and the cancellation
budget — all staircase functions of ``t``. Two fixpoint iterations
whose windows fall on the same staircase plateau therefore build the
*identical* MILP, and so does the final "confirming" solve of every
converged fixpoint. This module gives those repeats a name: a
content-addressed cache keyed by a canonical digest of everything the
MILP optimum depends on —

* the analysed task's phase durations ``(l, C, u)``;
* every other task's ``(l, C, u)``, LS flag, and hp/lp side, listed in
  priority order (names are deliberately excluded: the cache is
  content-addressed, two isomorphic task sets share entries);
* the per-task interference budgets and the cancellation budget the
  window induces (the *only* way ``t`` enters the formulation);
* the interval count ``N_i(t)``;
* the higher-priority WCRTs when the carry refinement is active;
* the analysis mode and the solver-relevant options (method,
  time limit, MIP gap, resilience configuration).

Because the key captures the MILP's full semantic content, a hit
returns the exact float a fresh build-and-solve would produce — cached
and uncached runs are bit-identical, which the experiment tests assert.

Scoping
-------
:func:`cache_scope` installs a cache for a dynamic extent; every
analysis constructed inside the scope (e.g. by
:func:`repro.analysis.schedulability.is_schedulable`) shares it, so a
greedy LS search's repeated whole-set analyses reuse each other's
solves. The experiment runner opens one scope per (point, task set)
work unit — the same scoping in the sequential and the parallel engine,
which keeps the surfaced hit/miss counters deterministic and identical
between the two.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping, Protocol, TypeVar

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.obs import events as obs


class PersistentStoreLike(Protocol):
    """What the cache needs from an on-disk tier (see store.py)."""

    def fetch(self, digest: str) -> tuple[object | None, bool]:
        """Return ``(value, corrupted)`` for one digest."""

    def store(self, digest: str, value: object) -> None:
        """Upsert one digest's value."""

#: Counter names every cache exposes (missing ones read as 0).
#: ``hits`` counts the in-memory tier; ``persistent.hits`` the on-disk
#: tier (its ``bump`` events are the ``cache.persistent.*`` trace
#: family); ``misses`` means neither tier had the digest.
#: ``milp_warm_starts`` counts fixpoint iterations that reused the
#: previous iteration's compiled model — either retargeted in place or
#: squeezed closed by its LP bound without an integer solve.
#: ``unit_store.hits`` counts whole finished *work units* the sweep
#: service answered from the persistent store without dispatching any
#: analysis (see :func:`repro.experiments.units.served_unit`).
COUNTER_NAMES = (
    "hits",
    "misses",
    "persistent.hits",
    "persistent.corrupt",
    "milp_solves",
    "lp_solves",
    "milp_warm_starts",
    "closed_form_screens",
    "lp_screens",
    "screened_out",
    "unit_store.hits",
)

_F = TypeVar("_F", bound=Callable[..., object])


def bound_producer(fn: _F) -> _F:
    """Mark a function as an approved producer of ``("lp", ...)`` entries.

    Screening bounds are *upper* bounds, not optima; a screen entry
    must never be able to shadow an exact ``("milp", ...)`` verdict.
    The persistent store enforces that dynamically with rank-ordered
    upserts, and the ``screen-soundness`` lint rule enforces the
    *direction* statically: every call that writes an ``("lp", ...)``
    tuple into a cache/store must sit inside a function carrying this
    decorator, so new bound producers are an explicit, reviewable act
    rather than an accident of refactoring. The decorator itself is
    behaviour-neutral — it only tags the function object.
    """
    setattr(fn, "__bound_producer__", True)
    return fn


def _entry_rank(value: object) -> int:
    """Soundness rank of a cache entry: screens below exact verdicts.

    Mirrors :func:`repro.analysis.store.entry_rank` for the memory
    tier without importing the sqlite layer: ``("lp", bound)`` screen
    entries rank below everything else (``("milp", ...)`` tuples and
    bare solved objectives are exact).
    """
    if isinstance(value, tuple) and value and value[0] == "lp":
        return 1
    return 2


class AnalysisCache:
    """Bounded content-addressed memo for per-task analysis results.

    Two tiers: a per-scope in-memory LRU dict, optionally backed by a
    cross-run/cross-process :class:`repro.analysis.store.PersistentStore`.
    A persistent hit fills the memory tier, so each digest pays the
    disk read at most once per scope.

    Args:
        capacity: Maximum number of entries kept (least recently used
            entries are evicted first). The default comfortably holds
            every distinct MILP of a full Fig. 2 point.
        enabled: With ``False`` the cache never stores or returns
            entries but still counts solves — used by tests and
            benchmarks to measure the uncached (seed) behaviour with
            identical instrumentation.
        persistent: Optional on-disk tier, consulted on memory misses
            and written through on :meth:`put`.
    """

    def __init__(
        self,
        capacity: int = 50_000,
        enabled: bool = True,
        persistent: "PersistentStoreLike | None" = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.persistent = persistent
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def get(self, key: str) -> object | None:
        """Look up a digest in both tiers, counting the hit or miss."""
        if not self.enabled:
            self.bump("misses")
            return None
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.bump("hits")
            return entry
        if self.persistent is not None:
            value, corrupted = self.persistent.fetch(key)
            if corrupted:
                # The digest check caught a torn/garbled row: the store
                # dropped it, we report it, and the caller re-solves.
                self.bump("persistent.corrupt")
            if value is not None:
                self._remember(key, value)
                self.bump("persistent.hits")
                return value
        self.bump("misses")
        return None

    def _remember(self, key: str, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def put(self, key: str, value: object, persist: bool = True) -> None:
        """Store a value under a digest (evicting LRU entries).

        With ``persist=False`` the value stays in the memory tier only
        — used for screening bounds whose floating-point value depends
        on scope-local batching and therefore must not be shared across
        work units (the persistent tier only holds values that are a
        pure function of the digest).
        """
        if not self.enabled:
            return
        existing = self._entries.get(key)
        if existing is not None and _entry_rank(value) < _entry_rank(existing):
            # A screening bound never overwrites an exact verdict —
            # the memory-tier twin of the store's rank-ordered upsert.
            return
        self._remember(key, value)
        if persist and self.persistent is not None:
            self.persistent.store(key, value)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._counters.clear()

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named counter (solves, screens, hits...).

        Mirrors every increment as a ``cache.<name>`` trace event, so a
        run's trace reconciles with its surfaced ``analysis_stats`` by
        construction: both are sums over the same ``bump`` calls.
        """
        self._counters[name] = self._counters.get(name, 0) + amount
        obs.emit(f"cache.{name}", amount=amount)

    @property
    def counters(self) -> dict[str, int]:
        """A copy of the nonzero counters."""
        return dict(self._counters)

    def stats(self) -> dict[str, int]:
        """All standard counters, including zero-valued ones."""
        return {name: self._counters.get(name, 0) for name in COUNTER_NAMES}

    @property
    def hit_rate(self) -> float:
        """Hits (either tier) over lookups (0.0 when none happened)."""
        hits = self._counters.get("hits", 0) + self._counters.get(
            "persistent.hits", 0
        )
        lookups = hits + self._counters.get("misses", 0)
        return hits / lookups if lookups else 0.0


# ----------------------------------------------------------------------
# scoping
# ----------------------------------------------------------------------
_SCOPES: list[AnalysisCache] = []


def active_cache() -> AnalysisCache | None:
    """The innermost scoped cache, or ``None`` outside any scope."""
    return _SCOPES[-1] if _SCOPES else None


@contextmanager
def cache_scope(cache: AnalysisCache | None = None) -> Iterator[AnalysisCache]:
    """Install ``cache`` (or a fresh one) for the dynamic extent.

    Every analysis object constructed inside the scope without an
    explicit cache shares the scoped one, so independent entry points
    (``is_schedulable`` per protocol, greedy rounds, ...) pool their
    memoised solves and report into one set of counters.
    """
    scoped = cache if cache is not None else AnalysisCache()
    _SCOPES.append(scoped)
    try:
        yield scoped
    finally:
        _SCOPES.pop()


# ----------------------------------------------------------------------
# key construction
# ----------------------------------------------------------------------
def _task_signature(task: Task) -> tuple:
    """The parameters of one task that enter a delay MILP.

    Deadlines and names are deliberately absent: neither appears in the
    formulation (deadlines only gate verdicts, names only label
    variables), and leaving them out lets isomorphic inputs share
    entries. Arrival curves enter solely through the integer budgets,
    which the caller supplies separately.
    """
    return (task.copy_in, task.exec_time, task.copy_out, task.latency_sensitive)


def digest(parts: tuple) -> str:
    """Stable content digest of a canonical key tuple.

    ``repr`` of floats round-trips exactly, so two keys collide only
    when every semantic input is identical.
    """
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def delay_milp_key(
    taskset: TaskSet,
    task: Task,
    mode: str,
    num_intervals: int,
    budgets: tuple[int, ...],
    cancellation_budget: int,
    hp_wcrt: Mapping[str, float] | None,
    solver_signature: tuple,
) -> str:
    """Digest of one windowed delay MILP's full semantic content.

    ``budgets`` lists, in priority order over the *other* tasks, the
    execution budget each receives (``eta_j(t)+1`` refined or not for
    higher-priority tasks, 1 for lower-priority blockers); together
    with ``num_intervals`` and ``cancellation_budget`` they carry every
    window dependence of the formulation.
    """
    others = tuple(
        (
            _task_signature(j),
            j.priority < task.priority,
            (
                None
                if hp_wcrt is None
                else hp_wcrt.get(j.name)
            ),
        )
        for j in taskset
        if j.name != task.name
    )
    return digest(
        (
            "delay",
            mode,
            _task_signature(task),
            others,
            budgets,
            num_intervals,
            cancellation_budget,
            solver_signature,
        )
    )


def case_b_key(taskset: TaskSet, task: Task, solver_signature: tuple) -> str:
    """Digest of the (window-independent) LS case-(b) MILP."""
    others = tuple(
        (_task_signature(j), j.priority < task.priority)
        for j in taskset
        if j.name != task.name
    )
    return digest(("ls_b", _task_signature(task), others, solver_signature))
