"""On-disk persistent tier of the analysis cache (sqlite).

The in-memory :class:`repro.analysis.cache.AnalysisCache` dies with its
process, so a repeated or resumed sweep re-solves every MILP. This
module adds the second tier: a content-addressed sqlite store keyed by
the same semantic digests, shared across runs, sweep points, and
``--jobs N`` worker processes.

Design notes
------------
* **Concurrency.** The database runs in WAL mode with a busy timeout,
  so concurrent readers never block and concurrent writers serialise
  briefly. Writes are *upserts by digest*: because the key digests the
  MILP's full semantic content, two workers racing on one digest write
  payloads describing the same mathematical optimum, and the rank rule
  below makes the race outcome order-independent.
* **Entry ranks.** An entry is either an exact solved optimum
  (``milp``-tagged, rank 2) or an LP-relaxation screening bound
  (``lp``-tagged, rank 1). An upsert only replaces a row when the new
  rank is strictly higher — an exact optimum upgrades a screening
  bound, never the other way around — so the store converges to the
  same content regardless of writer interleaving.
* **Corruption.** Every payload is stored next to its sha256; a reader
  that finds a mismatch (torn write, bit rot, injected fault) deletes
  the row and reports it to the caller, which re-solves. A corrupted
  entry is *never* trusted. The ``cache.corrupt`` fault site of
  :mod:`repro.faults` garbles rows on write to pin exactly this path.
* **Schema version.** :data:`SCHEMA_VERSION` is bumped whenever the
  entry encoding, the digest inputs, or the table layout change. A
  store created under a different version is discarded wholesale on
  open — a stale on-disk entry can never alias a new-formulation key.
* **Processes.** Connections are opened lazily per process (never
  shared across ``fork``); passing a :class:`PersistentStore` to a
  worker pickles only its path.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from pathlib import Path
from typing import Iterable, Iterator

from repro.faults import injection

#: Bump when the payload encoding, digest inputs, or table layout
#: change; mismatching stores are discarded on open (see module notes).
SCHEMA_VERSION = 1

#: Rank of each entry tag; upserts replace a row only with a strictly
#: higher rank (exact optima upgrade screening bounds, never vice
#: versa), which makes concurrent writes order-independent.
ENTRY_RANKS = {"lp": 1, "milp": 2}


def _encode(value: object) -> str:
    """Canonical JSON text of one cache entry.

    Entries are tuples ``("milp", objective, n, stats, degradation)``,
    ``("lp", bound)``, or bare floats (the case-(b) memo); tuples are
    JSON lists. ``json`` round-trips Python floats exactly (it emits
    ``repr`` and parses back the identical double), so a decoded entry
    is bit-identical to the stored one.
    """
    if isinstance(value, tuple):
        return json.dumps(
            {"k": "t", "v": list(value)}, sort_keys=True, allow_nan=False
        )
    return json.dumps({"k": "s", "v": value}, sort_keys=True, allow_nan=False)


def _decode(text: str) -> object:
    raw = json.loads(text)
    if raw["k"] == "t":
        return tuple(raw["v"])
    return raw["v"]


def entry_rank(value: object) -> int:
    """Upsert rank of an entry (see :data:`ENTRY_RANKS`)."""
    if isinstance(value, tuple) and value and value[0] in ENTRY_RANKS:
        return ENTRY_RANKS[value[0]]
    return ENTRY_RANKS["milp"]  # bare floats are exact solved values


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class PersistentStore:
    """Digest-keyed sqlite store backing :class:`AnalysisCache`.

    Args:
        path: Database file; created (with parents) on first use.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        #: Corrupted rows detected (and dropped) by this process.
        self.corrupt_dropped = 0

    # -- connection lifecycle ------------------------------------------
    def __getstate__(self) -> dict:
        # Only the path crosses process boundaries; each process opens
        # its own connection (sqlite handles must never survive fork).
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._conn = None
        self._pid = None
        self.corrupt_dropped = 0

    def _connect(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is not None and self._pid == pid:
            return self._conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is not None and row[0] != str(SCHEMA_VERSION):
            # A different build wrote this store; its entries may alias
            # new-formulation digests, so the whole store is discarded.
            conn.execute("DROP TABLE IF EXISTS entries")
            conn.execute("DELETE FROM meta")
            row = None
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta VALUES "
                "('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " digest TEXT PRIMARY KEY,"
            " payload TEXT NOT NULL,"
            " sha TEXT NOT NULL,"
            " rank INTEGER NOT NULL,"
            " created REAL NOT NULL)"
        )
        conn.commit()
        self._conn = conn
        self._pid = pid
        return conn

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None

    # -- the two-tier contract -----------------------------------------
    def fetch(self, digest: str) -> tuple[object | None, bool]:
        """Look up one digest: ``(value, corrupted)``.

        A row whose payload fails its sha256 check (or does not decode)
        is deleted and reported as ``(None, True)`` — the caller counts
        the corruption and re-solves; the entry is never trusted.
        """
        conn = self._connect()
        row = conn.execute(
            "SELECT payload, sha FROM entries WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            return None, False
        payload, sha = row
        if _sha(payload) == sha:
            try:
                return _decode(payload), False
            except (ValueError, KeyError, TypeError):
                pass  # undecodable despite a matching sha: treat as corrupt
        conn.execute("DELETE FROM entries WHERE digest = ?", (digest,))
        conn.commit()
        self.corrupt_dropped += 1
        return None, True

    def fetch_many(self, digests: "Iterable[str]") -> dict[str, object]:
        """Batched probe: the decodable subset of ``digests``.

        The sweep service consults the store for *every* unit of a
        submitted sweep before dispatching anything; issuing one
        ``SELECT`` per unit would pay the connection round-trip and
        B-tree descent thousands of times for a warm repeat sweep.
        This batches the probe into ``IN (...)`` queries (chunked under
        sqlite's bound-parameter limit) and applies the same per-row
        sha256 verification as :meth:`fetch` — corrupt rows are deleted,
        counted, and simply absent from the returned mapping, so the
        caller re-solves them exactly as it would a miss.
        """
        hits: dict[str, object] = {}
        wanted = sorted(set(digests))
        if not wanted:
            return hits
        conn = self._connect()
        corrupt: list[str] = []
        for start in range(0, len(wanted), 500):
            chunk = wanted[start : start + 500]
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                f"SELECT digest, payload, sha FROM entries"
                f" WHERE digest IN ({marks})",
                chunk,
            ).fetchall()
            for digest, payload, sha in rows:
                if _sha(payload) == sha:
                    try:
                        hits[digest] = _decode(payload)
                        continue
                    except (ValueError, KeyError, TypeError):
                        pass
                corrupt.append(digest)
        for digest in corrupt:
            conn.execute("DELETE FROM entries WHERE digest = ?", (digest,))
        if corrupt:
            conn.commit()
            self.corrupt_dropped += len(corrupt)
        return hits

    def store(self, digest: str, value: object) -> None:
        """Upsert one entry (higher rank wins; equal rank is a no-op).

        Equal-rank payloads for one digest are identical by
        content-addressing, so skipping the write loses nothing and
        keeps concurrent writers convergent.
        """
        payload = _encode(value)
        sha = _sha(payload)
        spec = injection.fire("cache.corrupt", key=digest[:12])
        if spec is not None:
            # Injected torn/garbage row: the sha no longer matches the
            # payload, which is exactly what the digest check on read
            # must detect, drop, and re-solve.
            if spec.mode == "torn":
                payload = payload[: max(1, len(payload) // 2)]
            else:
                payload = "\x00garbage\x00" + payload[:8]
        conn = self._connect()
        # ``created`` is a write sequence, not a wall-clock time: the
        # subquery runs inside the (serialised) write transaction, so
        # it is atomic, and workers stay free of clock reads — gc's
        # "most recently written" ordering needs nothing more.
        conn.execute(
            "INSERT INTO entries (digest, payload, sha, rank, created)"
            " VALUES (?, ?, ?, ?,"
            "         (SELECT COALESCE(MAX(created), 0) + 1 FROM entries))"
            " ON CONFLICT(digest) DO UPDATE SET"
            " payload=excluded.payload, sha=excluded.sha,"
            " rank=excluded.rank, created=excluded.created"
            " WHERE excluded.rank > entries.rank",
            (digest, payload, sha, entry_rank(value)),
        )
        conn.commit()

    # -- maintenance (the ``repro cache`` subcommand) ------------------
    def stats(self) -> dict[str, object]:
        """Entry counts, rank breakdown, schema version, file size."""
        conn = self._connect()
        total = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        by_rank = {
            tag: conn.execute(
                "SELECT COUNT(*) FROM entries WHERE rank = ?", (rank,)
            ).fetchone()[0]
            for tag, rank in sorted(ENTRY_RANKS.items())
        }
        size = self.path.stat().st_size if self.path.exists() else 0
        return {
            "path": str(self.path),
            "schema_version": SCHEMA_VERSION,
            "entries": total,
            "exact_entries": by_rank["milp"],
            "screen_entries": by_rank["lp"],
            "file_bytes": size,
        }

    def gc(self, keep: int) -> int:
        """Drop all but the ``keep`` most recently written entries.

        Returns the number of rows removed. The file is vacuumed so the
        space is actually released.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        conn = self._connect()
        before = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        conn.execute(
            "DELETE FROM entries WHERE digest NOT IN ("
            " SELECT digest FROM entries"
            " ORDER BY created DESC, digest LIMIT ?)",
            (keep,),
        )
        conn.commit()
        conn.execute("VACUUM")
        after = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        return before - after

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        conn = self._connect()
        removed = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        conn.execute("DELETE FROM entries")
        conn.commit()
        conn.execute("VACUUM")
        return removed

    def digests(self) -> Iterator[str]:
        """All stored digests (test/diagnostic helper)."""
        conn = self._connect()
        for (digest,) in conn.execute(
            "SELECT digest FROM entries ORDER BY digest"
        ):
            yield digest

    def __len__(self) -> int:
        conn = self._connect()
        return int(conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0])

    def __repr__(self) -> str:
        return f"PersistentStore({str(self.path)!r})"
