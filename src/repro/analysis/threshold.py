"""Limited-preemption analysis with per-task preemption thresholds.

The ``threshold`` protocol runs the 3-phase task model with memory
inline (as NPS) but relaxes full non-preemption: each *phase* is a
non-preemptive chunk, and at a phase boundary the running job — which
holds its task's preemption threshold ``theta`` as its effective
priority from start to completion — yields only to ready tasks of
priority strictly higher than ``theta`` (numerically ``< theta``).
This is the scheduling model of Thilakasiri & Becker's limited
preemption of the 3-phase task model, transplanted onto this repo's
arrival-curve conventions.

With the default thresholds (``theta_i = pi_i``) every phase boundary
is preemptible by any higher-priority task, which shrinks
lower-priority blocking from a whole job (NPS) to a single phase. A
threshold above a task's priority (numerically lower) trades blocking
imposed on others for protection from interference after its start.

The WCRT bound is a two-stage fixpoint in the same release-anchored
carry convention as :meth:`repro.analysis.nps.NpsAnalysis`'s
``"carry"`` variant, so zoo comparisons against ``nps_carry`` charge
carry-in identically:

* *Start*: ``S = B_i + sum_hp (eta_j(S) + 1) * c_j`` where the
  blocking ``B_i`` of a lower-priority task ``j`` is its largest
  single phase when ``pi_i < theta_j`` (the job is evicted at its next
  boundary) and its whole cost otherwise (it runs to completion). At
  most one lower-priority job can block: none starts while ``tau_i``
  is pending, and a preempted one cannot resume past ``tau_i``.
* *Finish*: ``F = S + c_i + sum_{j: pi_j < theta_i}
  eta_j(F - S) * c_j`` — after its start ``tau_i`` is preempted (at
  boundaries) only by tasks outranking its threshold.

Both stages only ever over-count interference relative to the full
window charge (``eta`` is subadditive), so the bound is a sound
sufficient test; the :class:`repro.sim.threshold_sim.ThresholdSimulator`
cross-validation asserts observed <= bound on the experiment matrix.
"""

from __future__ import annotations

from repro.analysis.interface import AnalysisOptions, TaskResult, TaskSetResult
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time


def resolve_thresholds(
    taskset: TaskSet,
    pairs: tuple[tuple[str, int], ...] | None,
) -> dict[str, int]:
    """Per-task preemption thresholds, validated against the task set.

    ``pairs`` is the ``AnalysisOptions.preemption_thresholds`` tuple;
    tasks it does not name default to their own priority (preemptible
    at every boundary by any higher-priority task). A threshold must
    outrank-or-equal its task's priority (``theta <= pi``): anything
    else would let a job be preempted by lower-priority work.
    """
    thresholds = {t.name: t.priority for t in taskset}
    for name, theta in pairs or ():
        task = taskset.by_name(name)  # raises on unknown names
        if theta > task.priority:
            raise AnalysisError(
                f"preemption threshold {theta} of {name!r} is below its "
                f"priority {task.priority}; thresholds may only raise "
                "effective priority (theta <= priority)"
            )
        thresholds[name] = theta
    return thresholds


def max_phase(task: Task) -> Time:
    """The largest single non-preemptive chunk of a 3-phase job."""
    return max(task.copy_in, task.exec_time, task.copy_out)


class ThresholdAnalysis:
    """WCRT analysis for preemption-threshold limited preemption."""

    protocol = "threshold"

    def __init__(self, options: AnalysisOptions | None = None) -> None:
        self.options = options or AnalysisOptions()

    # ------------------------------------------------------------------
    def blocking(
        self, taskset: TaskSet, task: Task, thresholds: dict[str, int]
    ) -> Time:
        """Worst lower-priority blocking (at most one blocker).

        A lower-priority job that ``task`` outranks past its threshold
        is evicted at its next phase boundary (one phase); one that
        ``task`` cannot preempt runs to completion (whole cost).
        """
        worst = 0.0
        for j in taskset.lp(task):
            if task.priority < thresholds[j.name]:
                worst = max(worst, max_phase(j))
            else:
                worst = max(worst, j.total_cost)
        return worst

    def response_time(self, taskset: TaskSet, task: Task) -> TaskResult:
        """Two-stage (start, finish) fixpoint bound for one task."""
        taskset.require_member(task)
        thresholds = resolve_thresholds(
            taskset, self.options.preemption_thresholds
        )
        hp = taskset.hp(task)
        blocking = self.blocking(taskset, task, thresholds)
        eps = self.options.convergence_eps
        theta = thresholds[task.name]

        # Stage 1: latest start of the copy-in phase.
        start = blocking + sum(t.total_cost for t in hp)
        converged = False
        iterations = 0
        for iterations in range(1, self.options.max_iterations + 1):
            new_start = blocking + sum(
                (t.eta(start) + 1) * t.total_cost for t in hp
            )
            if new_start <= start + eps:
                converged = True
                start = max(start, new_start)
                break
            start = new_start
            if (
                self.options.stop_at_deadline
                and start + task.total_cost > task.deadline
            ):
                break
        if not converged:
            return TaskResult(
                task=task,
                wcrt=start + task.total_cost,
                iterations=iterations,
                converged=False,
                details={"blocking": blocking, "start": start},
            )

        # Stage 2: finish time under post-start interference from tasks
        # outranking this task's threshold.
        preemptors = [t for t in hp if t.priority < theta]
        finish = start + task.total_cost
        converged = False
        for extra in range(1, self.options.max_iterations + 1):
            iterations += 1
            new_finish = (
                start
                + task.total_cost
                + sum(t.eta(finish - start) * t.total_cost for t in preemptors)
            )
            if new_finish <= finish + eps:
                converged = True
                finish = max(finish, new_finish)
                break
            finish = new_finish
            if self.options.stop_at_deadline and finish > task.deadline:
                break
        return TaskResult(
            task=task,
            wcrt=finish,
            iterations=iterations,
            converged=converged,
            details={
                "blocking": blocking,
                "start": start,
                "threshold": theta,
            },
        )

    def analyze(self, taskset: TaskSet) -> TaskSetResult:
        """Analyse every task of the set."""
        results = tuple(self.response_time(taskset, t) for t in taskset)
        return TaskSetResult(
            taskset=taskset, results=results, protocol=self.protocol
        )

    def is_schedulable(self, taskset: TaskSet) -> bool:
        """Whether every task's bound proves its deadline."""
        if taskset.total_utilization > 1.0 + 1e-12:
            return False
        return all(
            self.response_time(taskset, t).schedulable for t in taskset
        )
