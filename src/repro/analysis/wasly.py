"""Analysis of the protocol by Wasly & Pellizzoni [3].

Protocol [3] double-buffers the local memory across scheduling
intervals exactly like the proposed protocol, but has no cancellation
or urgency rules: a task under analysis can therefore be blocked by up
to *two* lower-priority tasks regardless of latency sensitivity
(Sec. III-A, Fig. 1(a)).

The paper observes (Sec. VIII) that its MILP, specialised to the case
where no task is latency-sensitive, *improves* on the original analysis
of [3]; this module exposes precisely that specialisation
(:class:`WaslyAnalysis`) — which is conservative as a baseline, since a
stronger baseline can only shrink the reported advantage of the
proposed protocol — plus the coarser closed-form interval-counting
bound (``method="closed_form"``) in the spirit of [3]'s original
analysis.

LS marks on tasks are ignored: protocol [3] predates the distinction.
"""

from __future__ import annotations

from repro.analysis.proposed.formulation import AnalysisMode
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.model.task import Task
from repro.model.taskset import TaskSet


class WaslyAnalysis(ProposedAnalysis):
    """WCRT analysis for protocol [3] (no LS machinery, 2 blockers)."""

    protocol = "wasly"
    _nls_mode = AnalysisMode.WASLY
    _supports_ls = False

    def response_time(self, taskset: TaskSet, task: Task):
        # Protocol [3] has no LS notion: analyse every task with the
        # WASLY mode over a task set with LS marks cleared, so that no
        # urgent/cancellation structure can appear in the window.
        plain = taskset.with_ls_marks(())
        plain_task = plain.by_name(task.name)
        result = super().response_time(plain, plain_task)
        # Report against the caller's task object (with original marks).
        return type(result)(
            task=task,
            wcrt=result.wcrt,
            iterations=result.iterations,
            converged=result.converged,
            details=result.details,
        )
