"""Sensitivity analysis: how much headroom does a task set have?

Standard companion tooling for schedulability analyses: given a task
set and a protocol, find the largest scaling of a parameter for which
the set stays schedulable (or the smallest that makes it schedulable).
Implemented by bisection over a monotone scaling knob with the
protocol's schedulability test as the oracle.

Provided knobs:

* **execution scaling** — multiply every ``C_i`` (and, with it,
  ``l_i``/``u_i`` when they were derived as ``gamma * C_i``) by a
  factor: the classic "critical scaling factor" metric;
* **memory scaling** — multiply only the copy phases ``l_i``/``u_i``:
  how memory-intensive can the workload get before the protocol
  breaks (the gamma axis of the paper's Fig. 2(e));
* **deadline scaling** — multiply every deadline: how much deadline
  tightening the set tolerates (the beta axis of Fig. 2(f)).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.analysis.schedulability import is_schedulable
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet

#: A scaling transform: (task, factor) -> scaled task.
TaskScaler = Callable[[Task, float], Task]


def scale_execution(task: Task, factor: float) -> Task:
    """Scale all three phases (memory phases follow the execution)."""
    return replace(
        task,
        exec_time=task.exec_time * factor,
        copy_in=task.copy_in * factor,
        copy_out=task.copy_out * factor,
    )


def scale_memory(task: Task, factor: float) -> Task:
    """Scale only the copy phases."""
    return replace(
        task,
        copy_in=task.copy_in * factor,
        copy_out=task.copy_out * factor,
    )


def scale_deadline(task: Task, factor: float) -> Task:
    """Scale the relative deadline."""
    return replace(task, deadline=task.deadline * factor)


SCALERS: dict[str, TaskScaler] = {
    "execution": scale_execution,
    "memory": scale_memory,
    "deadline": scale_deadline,
}


def scaled_taskset(taskset: TaskSet, scaler: TaskScaler, factor: float) -> TaskSet:
    """Apply a scaler to every task of a set."""
    if factor <= 0:
        raise AnalysisError(f"scaling factor must be positive, got {factor}")
    return TaskSet(scaler(task, factor) for task in taskset)


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of a sensitivity search.

    Attributes:
        knob: Which scaler was searched.
        critical_factor: Largest factor (for increasing knobs) or
            smallest factor (for ``deadline``, which *helps* when
            larger) at which the set is schedulable, within tolerance.
        schedulable_at_one: Whether the unscaled set was schedulable.
        evaluations: Oracle calls performed.
    """

    knob: str
    critical_factor: float
    schedulable_at_one: bool
    evaluations: int


def critical_scaling_factor(
    taskset: TaskSet,
    knob: str = "execution",
    protocol: str = "proposed",
    method: str = "milp",
    ls_policy: str = "greedy",
    lower: float = 0.05,
    upper: float = 4.0,
    tolerance: float = 0.01,
) -> SensitivityResult:
    """Bisect for the critical scaling factor of one knob.

    For ``execution`` and ``memory`` the schedulability predicate is
    monotonically *decreasing* in the factor (more work is never
    easier); for ``deadline`` it is *increasing* (looser deadlines are
    never harder). The search returns the boundary within
    ``tolerance`` — the largest schedulable factor for decreasing
    knobs, the smallest for the deadline knob.
    """
    try:
        scaler = SCALERS[knob]
    except KeyError:
        raise AnalysisError(
            f"unknown knob {knob!r}; expected one of {sorted(SCALERS)}"
        ) from None
    if not 0 < lower < upper:
        raise AnalysisError("need 0 < lower < upper")
    increasing_helps = knob == "deadline"

    evaluations = 0

    def ok(factor: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        candidate = scaled_taskset(taskset, scaler, factor)
        return is_schedulable(
            candidate, protocol, method=method, ls_policy=ls_policy
        )

    at_one = ok(1.0)

    if increasing_helps:
        # Find the smallest schedulable factor in [lower, upper].
        if ok(lower):
            return SensitivityResult(knob, lower, at_one, evaluations)
        if not ok(upper):
            return SensitivityResult(
                knob, float("inf"), at_one, evaluations
            )
        lo, hi = lower, upper  # lo infeasible, hi feasible
        while hi - lo > tolerance:
            mid = (lo + hi) / 2
            if ok(mid):
                hi = mid
            else:
                lo = mid
        return SensitivityResult(knob, hi, at_one, evaluations)

    # Decreasing knob: find the largest schedulable factor.
    if not ok(lower):
        return SensitivityResult(knob, 0.0, at_one, evaluations)
    if ok(upper):
        return SensitivityResult(knob, upper, at_one, evaluations)
    lo, hi = lower, upper  # lo feasible, hi infeasible
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return SensitivityResult(knob, lo, at_one, evaluations)
