"""Latency-sensitive marking policies (paper Sec. VI).

Marking a task LS shrinks its own blocking (one interval instead of
two, Property 4) but can increase the interference it causes on others
(cancelled copy-ins must be redone; urgent executions occupy the CPU
for ``l + C`` instead of ``C``). The paper therefore proposes a greedy
algorithm: start with every task NLS, analyse, mark the first
deadline-missing task LS, and repeat — declaring failure when an
already-LS task misses.

Ablation policies (``all_nls``, ``all_ls``, ``tightest_deadlines``) are
provided to quantify how much the greedy search matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interface import TaskSetResult
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.errors import AnalysisError
from repro.model.taskset import TaskSet
from repro.obs import events as obs


@dataclass(frozen=True)
class LsAssignmentOutcome:
    """Result of an LS-marking search.

    Attributes:
        schedulable: Whether a marking proving all deadlines was found.
        taskset: The task set with the final LS marks applied.
        final_result: The full analysis of the final marking; ``None``
            when the search ran in verdict-only mode
            (``collect_results=False``), which the experiment harness
            uses because only the boolean matters there.
        rounds: Number of full task-set analyses performed.
        history: LS-name frozensets tried, in order.
    """

    schedulable: bool
    taskset: TaskSet
    final_result: TaskSetResult | None
    rounds: int
    history: tuple[frozenset[str], ...]

    @property
    def ls_names(self) -> frozenset[str]:
        """Names of the tasks marked LS in the final configuration."""
        return frozenset(t.name for t in self.taskset.ls_tasks)


def greedy_ls_assignment(
    taskset: TaskSet,
    analysis: ProposedAnalysis | None = None,
    collect_results: bool = True,
) -> LsAssignmentOutcome:
    """The greedy algorithm of Sec. VI.

    All tasks start NLS. After each full analysis, the
    highest-priority task missing its deadline is marked LS (if it is
    already LS, the set is deemed unschedulable). Terminates after at
    most ``n + 1`` rounds since each round adds one LS mark.

    With ``collect_results=False`` each round uses the analysis's fast
    per-task verdicts (same outcomes, far fewer MILP solves) and the
    returned ``final_result`` is ``None``.
    """
    analysis = analysis or ProposedAnalysis()
    current = taskset.with_ls_marks(())
    ls_names: set[str] = set()
    history: list[frozenset[str]] = []
    rounds = 0

    while True:
        rounds += 1
        history.append(frozenset(ls_names))
        with obs.span("ls.round", round=rounds, marks=len(ls_names)):
            if collect_results:
                result = analysis.analyze(current)
                miss_task = (
                    None if result.first_miss is None else result.first_miss.task
                )
            else:
                result = None
                miss_task = analysis.first_unschedulable(current)
        if miss_task is None:
            return LsAssignmentOutcome(
                schedulable=True,
                taskset=current,
                final_result=result,
                rounds=rounds,
                history=tuple(history),
            )
        if miss_task.latency_sensitive:
            return LsAssignmentOutcome(
                schedulable=False,
                taskset=current,
                final_result=result,
                rounds=rounds,
                history=tuple(history),
            )
        ls_names.add(miss_task.name)
        current = current.with_ls_marks(ls_names)


def _single_round(
    taskset_marked: TaskSet,
    analysis: ProposedAnalysis,
    collect_results: bool,
    marks: frozenset[str],
) -> LsAssignmentOutcome:
    with obs.span("ls.round", round=1, marks=len(marks)):
        if collect_results:
            result = analysis.analyze(taskset_marked)
            schedulable = result.schedulable
        else:
            result = None
            schedulable = analysis.first_unschedulable(taskset_marked) is None
    return LsAssignmentOutcome(
        schedulable=schedulable,
        taskset=taskset_marked,
        final_result=result,
        rounds=1,
        history=(marks,),
    )


def all_nls_assignment(
    taskset: TaskSet,
    analysis: ProposedAnalysis | None = None,
    collect_results: bool = True,
) -> LsAssignmentOutcome:
    """Ablation: never mark anything LS (single round)."""
    analysis = analysis or ProposedAnalysis()
    return _single_round(
        taskset.with_ls_marks(()), analysis, collect_results, frozenset()
    )


def all_ls_assignment(
    taskset: TaskSet,
    analysis: ProposedAnalysis | None = None,
    collect_results: bool = True,
) -> LsAssignmentOutcome:
    """Ablation: mark every task LS (single round)."""
    analysis = analysis or ProposedAnalysis()
    names = frozenset(t.name for t in taskset)
    return _single_round(
        taskset.with_ls_marks(names), analysis, collect_results, names
    )


def tightest_deadline_assignment(
    taskset: TaskSet,
    analysis: ProposedAnalysis | None = None,
    collect_results: bool = True,
    fraction: float = 0.5,
) -> LsAssignmentOutcome:
    """Ablation: statically mark the tasks with the least slack LS.

    Marks the ``fraction`` of tasks with the smallest ``D - (l+C+u)``
    (absolute laxity) as LS, then analyses once. A cheap stand-in for
    the greedy search that captures the "tight deadlines benefit from
    LS" intuition of the paper's Fig. 2(f) discussion.
    """
    if not 0.0 <= fraction <= 1.0:
        raise AnalysisError(f"fraction must be within [0, 1], got {fraction}")
    analysis = analysis or ProposedAnalysis()
    count = round(len(taskset) * fraction)
    by_laxity = sorted(taskset, key=lambda t: t.deadline - t.total_cost)
    names = frozenset(t.name for t in by_laxity[:count])
    return _single_round(
        taskset.with_ls_marks(names), analysis, collect_results, names
    )


#: Registry used by the experiment harness and the CLI.
LS_POLICIES = {
    "greedy": greedy_ls_assignment,
    "all_nls": all_nls_assignment,
    "all_ls": all_ls_assignment,
    "tightest_deadlines": tightest_deadline_assignment,
}
