"""Protocol registry: one name -> analysis/simulator mapping.

The sweep stack was born with three protocols wired in by name; growing
a protocol zoo means every layer (config, runner, report, CLI) must ask
*one* authority which names exist and how to build their analysis — and
optionally their simulator, for the observed-<=-bound cross-validation
harness. That authority is this module.

Built-in protocols register themselves at import; out-of-tree code can
call :func:`register_protocol` with its own :class:`ProtocolSpec` (the
EXPERIMENTS.md "Protocol zoo" section walks through it). Simulator
factories are *lazy* zero-argument callables so registering an
analysis never drags :mod:`repro.sim` into pure-analysis imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.interface import AnalysisOptions
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the harness needs to know about one protocol.

    Attributes:
        name: Registry key (``ExperimentConfig.protocols`` entries,
            CLI ``--protocols`` values, report column headers).
        make_analysis: ``(options, method) -> analysis`` factory; the
            returned object must offer ``analyze``/``is_schedulable``/
            ``response_time`` (see :class:`repro.analysis.nps.NpsAnalysis`
            for the minimal shape).
        simulator: Optional lazy factory ``() -> simulator class``
            (itself called as ``cls(taskset)``); ``None`` marks an
            analysis-only protocol (e.g. ``nps_carry``, whose carry
            convention has no distinct runtime behaviour).
        description: One line for ``--help`` and docs.
    """

    name: str
    make_analysis: Callable[[AnalysisOptions | None, str], object]
    simulator: Callable[[], type] | None = None
    description: str = ""


_REGISTRY: dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add one protocol to the registry (idempotent per exact name)."""
    if not spec.name:
        raise AnalysisError("protocol name must be non-empty")
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise AnalysisError(
            f"protocol {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def registered_protocols() -> tuple[str, ...]:
    """All registered protocol names, in registration order."""
    return tuple(_REGISTRY)


def protocol_spec(name: str) -> ProtocolSpec:
    """The spec of one registered protocol (one-line error otherwise)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AnalysisError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{', '.join(_REGISTRY)}"
        ) from None


def make_analysis(
    name: str,
    options: AnalysisOptions | None = None,
    method: str = "milp",
):
    """Build the analysis object of one registered protocol."""
    return protocol_spec(name).make_analysis(options, method)


def simulator_class(name: str) -> type:
    """The simulator class of one registered protocol.

    Raises a one-line :class:`AnalysisError` when the protocol exists
    but is analysis-only.
    """
    spec = protocol_spec(name)
    if spec.simulator is None:
        raise AnalysisError(
            f"protocol {name!r} has no simulator (analysis-only); "
            f"simulable protocols: {', '.join(simulable_protocols())}"
        )
    return spec.simulator()


def simulable_protocols() -> tuple[str, ...]:
    """Names of protocols that have a simulator."""
    return tuple(
        name for name, spec in _REGISTRY.items() if spec.simulator is not None
    )


# ----------------------------------------------------------------------
# built-in protocols
# ----------------------------------------------------------------------
def _nps_simulator() -> type:
    from repro.sim.nps_sim import NpsSimulator

    return NpsSimulator


def _wasly_simulator() -> type:
    from repro.sim.interval_sim import WaslySimulator

    return WaslySimulator


def _proposed_simulator() -> type:
    from repro.sim.interval_sim import ProposedSimulator

    return ProposedSimulator


def _threshold_simulator() -> type:
    from repro.sim.threshold_sim import ThresholdSimulator

    return ThresholdSimulator


def _regulated_simulator() -> type:
    from repro.sim.regulated_sim import RegulatedSimulator

    return RegulatedSimulator


def _register_builtins() -> None:
    from repro.analysis.nps import NpsAnalysis
    from repro.analysis.regulated import RegulatedAnalysis
    from repro.analysis.threshold import ThresholdAnalysis
    from repro.analysis.wasly import WaslyAnalysis
    from repro.analysis.proposed.response_time import ProposedAnalysis

    register_protocol(ProtocolSpec(
        name="nps",
        make_analysis=lambda options, method: NpsAnalysis(
            options, variant="exact"
        ),
        simulator=_nps_simulator,
        description="non-preemptive FP, memory inline (exact busy window)",
    ))
    register_protocol(ProtocolSpec(
        name="nps_carry",
        make_analysis=lambda options, method: NpsAnalysis(
            options, variant="carry"
        ),
        simulator=None,
        description="NPS under the paper's carry-in convention "
        "(analysis-only)",
    ))
    register_protocol(ProtocolSpec(
        name="wasly",
        make_analysis=lambda options, method: WaslyAnalysis(
            options, method=method
        ),
        simulator=_wasly_simulator,
        description="double-buffered interval protocol of [3]",
    ))
    register_protocol(ProtocolSpec(
        name="proposed",
        make_analysis=lambda options, method: ProposedAnalysis(
            options, method=method
        ),
        simulator=_proposed_simulator,
        description="the paper's protocol (rules R1-R6, LS support)",
    ))
    register_protocol(ProtocolSpec(
        name="threshold",
        make_analysis=lambda options, method: ThresholdAnalysis(options),
        simulator=_threshold_simulator,
        description="3-phase limited preemption via preemption "
        "thresholds (Thilakasiri & Becker)",
    ))
    register_protocol(ProtocolSpec(
        name="regulated",
        make_analysis=lambda options, method: RegulatedAnalysis(options),
        simulator=_regulated_simulator,
        description="NPS under per-core memory bandwidth regulation "
        "(Agrawal et al.)",
    ))


_register_builtins()
