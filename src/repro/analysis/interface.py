"""Common result and option types shared by all analyses."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.milp.resilient import ResilienceConfig
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time


@dataclass(frozen=True)
class RegulationConfig:
    """Per-core memory-bandwidth regulation (the ``regulated`` protocol).

    A MemGuard-style regulator grants each core a memory budget of
    ``budget`` time units of DMA-rate transfer per replenishment
    ``period``; a memory phase that exhausts the budget stalls until the
    next replenishment. Execution phases consume no budget. ``budget ==
    period`` degenerates to unregulated memory (the ``nps_carry``
    bound).

    Attributes:
        budget: Memory-transfer time granted per period (``Q``).
        period: Replenishment period (``P``); budgets do not accumulate
            across periods.
    """

    budget: float
    period: float

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 < self.budget <= self.period:
            raise ValueError(
                f"budget must be in (0, period], got {self.budget} "
                f"with period {self.period}"
            )


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs shared by the response-time analyses.

    Attributes:
        max_iterations: Cap on response-time fixpoint iterations;
            hitting it reports an unbounded (infinite) WCRT.
        stop_at_deadline: Abort the iteration as soon as the tentative
            response time exceeds the deadline. The task is then
            reported unschedulable with the last tentative bound; this
            is the mode used for schedulability experiments, where only
            the verdict matters.
        time_limit: Per-MILP wall-clock budget in seconds; when hit,
            the solver's dual bound is used, which keeps the reported
            delay a safe upper bound (at the price of pessimism).
        mip_rel_gap: Relative MIP gap passed to the solver; nonzero
            values trade tightness for speed, again on the safe side
            because the dual bound is reported.
        convergence_eps: Fixpoint convergence tolerance on the WCRT.
        screening: Enable the verdict screening cascade (closed-form
            bounds — vectorised or scalar —, batched LP screens, the
            deadline-window probe, the LP fixpoint) and the
            warm-started incremental MILP fixpoint. When ``False``,
            every exact-MILP verdict is decided by the plain bottom-up
            fixpoint. Screens only ever *prove* schedulability — a
            failed screen falls through to the exact solve — and warm
            starts are value-exact, so verdicts are bit-identical
            either way; disable only to measure the unscreened
            baseline (``BENCH_milp.json``).
        resilience: When set, every MILP solve runs through a
            :class:`repro.milp.ResilientBackend` configured from it:
            watchdog, transient-error retries, and the safe-degradation
            fallback chain down to the closed-form bound. ``None`` (the
            default) keeps the historical fail-fast behaviour.
        preemption_thresholds: For the ``threshold`` protocol: explicit
            per-task preemption thresholds as a tuple of ``(task name,
            threshold)`` pairs (a tuple, not a dict, so the frozen
            options stay hashable and ``repr``-stable for cache keys).
            A job of threshold ``theta`` can only be preempted — at its
            phase boundaries — by ready tasks with priority strictly
            less than ``theta``. ``None`` (the default) uses each
            task's own priority as its threshold.
        regulation: For the ``regulated`` protocol: the per-core memory
            bandwidth budget (see :class:`RegulationConfig`). ``None``
            means unregulated memory phases.
    """

    max_iterations: int = 60
    stop_at_deadline: bool = True
    time_limit: float | None = None
    mip_rel_gap: float = 0.0
    convergence_eps: float = 1e-6
    screening: bool = True
    resilience: ResilienceConfig | None = None
    preemption_thresholds: tuple[tuple[str, int], ...] | None = None
    regulation: RegulationConfig | None = None


@dataclass(frozen=True)
class TaskResult:
    """Per-task analysis outcome.

    Attributes:
        task: The analysed task (with the LS flag used for analysis).
        wcrt: Worst-case response-time bound (``inf`` if divergent).
        iterations: Fixpoint iterations performed.
        converged: Whether the iteration reached a fixpoint (``False``
            when it stopped early at the deadline or at the cap).
        details: Analysis-specific diagnostics (e.g. interval counts,
            MILP sizes, solver runtimes).
    """

    task: Task
    wcrt: Time
    iterations: int = 0
    converged: bool = True
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def schedulable(self) -> bool:
        """Whether the bound proves the deadline (``wcrt <= D``)."""
        return self.wcrt <= self.task.deadline + 1e-9

    @property
    def slack(self) -> Time:
        """Deadline minus WCRT bound (negative when unschedulable)."""
        if math.isinf(self.wcrt):
            return -math.inf
        return self.task.deadline - self.wcrt


@dataclass(frozen=True)
class TaskSetResult:
    """Task-set level outcome: one :class:`TaskResult` per task."""

    taskset: TaskSet
    results: tuple[TaskResult, ...]
    protocol: str

    def __post_init__(self) -> None:
        names = {r.task.name for r in self.results}
        missing = {t.name for t in self.taskset} - names
        if missing:
            raise ValueError(f"missing results for tasks {sorted(missing)}")

    @property
    def schedulable(self) -> bool:
        """Whether every task meets its deadline."""
        return all(r.schedulable for r in self.results)

    def result_for(self, name: str) -> TaskResult:
        """The result of the task called ``name``."""
        for r in self.results:
            if r.task.name == name:
                return r
        raise KeyError(name)

    @property
    def first_miss(self) -> TaskResult | None:
        """The highest-priority task that misses its deadline, if any."""
        missing = [r for r in self.results if not r.schedulable]
        if not missing:
            return None
        return min(missing, key=lambda r: r.task.priority)

    def summary_rows(self) -> list[tuple[str, float, float, bool]]:
        """``(name, wcrt, deadline, schedulable)`` rows for reporting."""
        return [
            (r.task.name, r.wcrt, r.task.deadline, r.schedulable)
            for r in self.results
        ]
