"""Classical non-preemptive fixed-priority analysis (the NPS baseline).

Under NPS the DMA is not used: each job executes its three phases
back-to-back on the CPU (cost ``l + C + u``) and runs to completion
once started. The analysis is the standard busy-window formulation for
non-preemptive fixed priorities [16]: lower-priority blocking of at
most one job, level-i busy window, and a per-job start-time recurrence
(the job loop is required because non-preemptive self-pushing makes the
first job not necessarily the worst one).
"""

from __future__ import annotations

import math

from repro.analysis.interface import AnalysisOptions, TaskResult, TaskSetResult
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time

#: Iteration cap for the inner fixpoints; generous because each
#: iteration strictly increases the tentative value by at least one
#: task cost.
_FIXPOINT_CAP = 100_000


def _fixpoint(update, start: Time, limit: Time, eps: float = 1e-9) -> Time:
    """Iterate ``x = update(x)`` from ``start`` until stable or > limit."""
    x = start
    for _ in range(_FIXPOINT_CAP):
        nxt = update(x)
        if nxt <= x + eps:
            return x if nxt <= x else nxt
        x = nxt
        if x > limit:
            return math.inf
    return math.inf


class NpsAnalysis:
    """Worst-case response-time analysis for plain non-preemptive FP.

    Two variants are provided:

    * ``"exact"`` — the classical busy-window analysis with a per-job
      start-time recurrence (George-style): the tightest standard NPS
      test.
    * ``"carry"`` — the arrival-curve convention of the paper's own
      framework: every higher-priority task contributes
      ``eta_j(t) + 1`` jobs to the delay window that starts at the
      analysed job's *release* (one carry-in instance each, exactly as
      Theorem 1 charges the interval protocols). Strictly more
      pessimistic than ``"exact"``, hence still a sound sufficient
      test.

    The experiment harness uses ``"carry"`` so the three compared
    analyses charge carry-in interference identically (the paper's
    NPS reference [16] is not specific enough to settle the convention;
    see EXPERIMENTS.md). ``"exact"`` is the default for direct API use
    and is exercised as an ablation benchmark.
    """

    protocol = "nps"

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        variant: str = "exact",
    ) -> None:
        if variant not in ("exact", "carry"):
            raise AnalysisError(f"unknown NPS variant {variant!r}")
        self.options = options or AnalysisOptions()
        self.variant = variant

    # ------------------------------------------------------------------
    def blocking(self, taskset: TaskSet, task: Task) -> Time:
        """Maximum lower-priority blocking: one whole lp job."""
        return max((t.total_cost for t in taskset.lp(task)), default=0.0)

    def busy_window(self, taskset: TaskSet, task: Task, limit: Time) -> Time:
        """Length of the level-i busy window (``inf`` when divergent)."""
        hep = [task, *taskset.hp(task)]
        blocking = self.blocking(taskset, task)

        def update(x: Time) -> Time:
            return blocking + sum(
                t.arrivals.eta_closed(x) * t.total_cost for t in hep
            )

        return _fixpoint(update, task.total_cost + blocking, limit)

    def _response_time_carry(self, taskset: TaskSet, task: Task) -> TaskResult:
        """The ``"carry"`` variant: release-anchored window, +1 carry."""
        hp = taskset.hp(task)
        blocking = self.blocking(taskset, task)
        response = task.total_cost + blocking
        converged = False
        iterations = 0
        for iterations in range(1, self.options.max_iterations + 1):
            window = response - task.total_cost
            new_response = (
                blocking
                + sum((t.eta(window) + 1) * t.total_cost for t in hp)
                + task.total_cost
            )
            if new_response <= response + self.options.convergence_eps:
                converged = True
                break
            response = new_response
            if self.options.stop_at_deadline and response > task.deadline:
                break
        return TaskResult(
            task=task,
            wcrt=response,
            iterations=iterations,
            converged=converged,
            details={"variant": "carry", "blocking": blocking},
        )

    def response_time(self, taskset: TaskSet, task: Task) -> TaskResult:
        """WCRT bound of ``task`` within ``taskset`` under NPS."""
        taskset.require_member(task)
        if self.variant == "carry":
            return self._response_time_carry(taskset, task)
        hp = taskset.hp(task)
        blocking = self.blocking(taskset, task)

        # Cap busy windows at a horizon past which we call it divergent:
        # enough for every job of every task to appear many times over.
        horizon = 1000.0 * max(t.deadline for t in taskset)
        window = self.busy_window(taskset, task, horizon)
        if math.isinf(window):
            return TaskResult(
                task=task,
                wcrt=math.inf,
                iterations=0,
                converged=False,
                details={"reason": "level-i busy window diverges"},
            )

        num_jobs = task.arrivals.eta_closed(window)
        wcrt: Time = 0.0
        jobs_checked = 0
        for q in range(num_jobs):
            # Start-time recurrence for job q: blocking, q prior jobs of
            # tau_i, and all higher-priority jobs released in [0, s].
            def update(s: Time, q: int = q) -> Time:
                return (
                    blocking
                    + q * task.total_cost
                    + sum(t.arrivals.eta_closed(s) * t.total_cost for t in hp)
                )

            start = _fixpoint(update, blocking + q * task.total_cost, horizon)
            if math.isinf(start):
                return TaskResult(
                    task=task,
                    wcrt=math.inf,
                    converged=False,
                    details={"reason": f"start-time recurrence for job {q} diverges"},
                )
            finish = start + task.total_cost
            release = task.arrivals.earliest_release(q)
            wcrt = max(wcrt, finish - release)
            jobs_checked += 1
            if self.options.stop_at_deadline and wcrt > task.deadline:
                break

        return TaskResult(
            task=task,
            wcrt=wcrt,
            iterations=jobs_checked,
            converged=True,
            details={"busy_window": window, "jobs_in_window": num_jobs},
        )

    def analyze(self, taskset: TaskSet) -> TaskSetResult:
        """Analyse every task; stops early per options on a miss."""
        results = []
        for task in taskset:
            results.append(self.response_time(taskset, task))
        return TaskSetResult(
            taskset=taskset, results=tuple(results), protocol=self.protocol
        )

    def is_schedulable(self, taskset: TaskSet) -> bool:
        """Convenience wrapper: all deadlines proven."""
        # Quick necessary condition: serialized utilisation must fit.
        if taskset.total_utilization > 1.0 + 1e-12:
            return False
        for task in taskset:
            if not self.response_time(taskset, task).schedulable:
                return False
        return True


def nps_response_time(taskset: TaskSet, task: Task) -> Time:
    """Functional shorthand for a single task's NPS WCRT bound."""
    if task not in taskset:
        raise AnalysisError(f"{task.name!r} is not in the task set")
    return NpsAnalysis().response_time(taskset, task).wcrt
