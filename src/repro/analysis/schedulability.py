"""Task-set level schedulability front end.

One entry point for the three compared approaches, matching the
experimental setup of Sec. VII:

* ``"nps"`` — classical non-preemptive scheduling, memory inline;
* ``"wasly"`` — protocol [3];
* ``"proposed"`` — the paper's protocol, with an LS-marking policy
  (the greedy algorithm of Sec. VI by default).
"""

from __future__ import annotations

from repro.analysis.interface import AnalysisOptions, TaskSetResult
from repro.analysis.ls_assignment import LS_POLICIES
from repro.analysis.nps import NpsAnalysis
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.analysis.wasly import WaslyAnalysis
from repro.errors import AnalysisError
from repro.model.taskset import TaskSet

PROTOCOLS = ("nps", "nps_carry", "wasly", "proposed")


def _make_analysis(
    protocol: str,
    options: AnalysisOptions | None,
    method: str,
):
    if protocol == "nps":
        return NpsAnalysis(options, variant="exact")
    if protocol == "nps_carry":
        return NpsAnalysis(options, variant="carry")
    if protocol == "wasly":
        return WaslyAnalysis(options, method=method)
    if protocol == "proposed":
        return ProposedAnalysis(options, method=method)
    raise AnalysisError(
        f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}"
    )


def analyze_taskset(
    taskset: TaskSet,
    protocol: str,
    options: AnalysisOptions | None = None,
    method: str = "milp",
    ls_policy: str = "as_marked",
) -> TaskSetResult:
    """Full per-task analysis of a task set under one protocol.

    Args:
        taskset: The per-core task set.
        protocol: ``"nps"``, ``"wasly"`` or ``"proposed"``.
        options: Shared analysis options.
        method: ``"milp"`` or ``"closed_form"`` (ignored for NPS).
        ls_policy: For the proposed protocol: ``"as_marked"`` uses the
            task set's current LS flags, any key of
            :data:`repro.analysis.ls_assignment.LS_POLICIES` runs that
            marking search first.

    Returns:
        Per-task results (for a marking policy, of the final marking).
    """
    analysis = _make_analysis(protocol, options, method)
    if protocol == "proposed" and ls_policy != "as_marked":
        try:
            policy = LS_POLICIES[ls_policy]
        except KeyError:
            raise AnalysisError(
                f"unknown LS policy {ls_policy!r}; expected 'as_marked' or one "
                f"of {sorted(LS_POLICIES)}"
            ) from None
        return policy(taskset, analysis).final_result
    return analysis.analyze(taskset)


def is_schedulable(
    taskset: TaskSet,
    protocol: str,
    options: AnalysisOptions | None = None,
    method: str = "milp",
    ls_policy: str = "greedy",
) -> bool:
    """Schedulability verdict for one protocol (experiment workhorse).

    The proposed protocol defaults to the greedy LS search of Sec. VI,
    mirroring the paper's experiments.
    """
    analysis = _make_analysis(protocol, options, method)
    if protocol == "proposed":
        if ls_policy == "as_marked":
            return analysis.is_schedulable(taskset)
        try:
            policy = LS_POLICIES[ls_policy]
        except KeyError:
            raise AnalysisError(
                f"unknown LS policy {ls_policy!r}; expected 'as_marked' or one "
                f"of {sorted(LS_POLICIES)}"
            ) from None
        # Cheap necessary conditions before any MILP is built.
        cpu_util = sum(t.exec_time / t.period for t in taskset)
        dma_util = sum((t.copy_in + t.copy_out) / t.period for t in taskset)
        if cpu_util > 1.0 + 1e-12 or dma_util > 1.0 + 1e-12:
            return False
        return policy(taskset, analysis, collect_results=False).schedulable
    return analysis.is_schedulable(taskset)
