"""Task-set level schedulability front end.

One entry point for every registered protocol (see
:mod:`repro.analysis.registry`), matching the experimental setup of
Sec. VII plus the zoo extensions:

* ``"nps"`` / ``"nps_carry"`` — classical non-preemptive scheduling,
  memory inline (exact busy window / the paper's carry convention);
* ``"wasly"`` — protocol [3];
* ``"proposed"`` — the paper's protocol, with an LS-marking policy
  (the greedy algorithm of Sec. VI by default);
* ``"threshold"`` — limited preemption via preemption thresholds;
* ``"regulated"`` — NPS under memory bandwidth regulation.
"""

from __future__ import annotations

from repro.analysis.interface import AnalysisOptions, TaskSetResult
from repro.analysis.ls_assignment import LS_POLICIES
from repro.analysis.registry import make_analysis, registered_protocols
from repro.errors import AnalysisError
from repro.model.taskset import TaskSet

#: All registered protocol names (import-time snapshot of the built-ins
#: plus anything registered before this module loads; prefer calling
#: :func:`repro.analysis.registry.registered_protocols` for a live view).
PROTOCOLS = registered_protocols()


def _make_analysis(
    protocol: str,
    options: AnalysisOptions | None,
    method: str,
):
    return make_analysis(protocol, options, method)


def analyze_taskset(
    taskset: TaskSet,
    protocol: str,
    options: AnalysisOptions | None = None,
    method: str = "milp",
    ls_policy: str = "as_marked",
) -> TaskSetResult:
    """Full per-task analysis of a task set under one protocol.

    Args:
        taskset: The per-core task set.
        protocol: Any registered protocol name.
        options: Shared analysis options.
        method: ``"milp"`` or ``"closed_form"`` (ignored by the
            non-MILP protocols).
        ls_policy: For the proposed protocol: ``"as_marked"`` uses the
            task set's current LS flags, any key of
            :data:`repro.analysis.ls_assignment.LS_POLICIES` runs that
            marking search first.

    Returns:
        Per-task results (for a marking policy, of the final marking).
    """
    analysis = _make_analysis(protocol, options, method)
    if protocol == "proposed" and ls_policy != "as_marked":
        try:
            policy = LS_POLICIES[ls_policy]
        except KeyError:
            raise AnalysisError(
                f"unknown LS policy {ls_policy!r}; expected 'as_marked' or one "
                f"of {sorted(LS_POLICIES)}"
            ) from None
        return policy(taskset, analysis).final_result
    return analysis.analyze(taskset)


def is_schedulable(
    taskset: TaskSet,
    protocol: str,
    options: AnalysisOptions | None = None,
    method: str = "milp",
    ls_policy: str = "greedy",
) -> bool:
    """Schedulability verdict for one protocol (experiment workhorse).

    The proposed protocol defaults to the greedy LS search of Sec. VI,
    mirroring the paper's experiments.
    """
    analysis = _make_analysis(protocol, options, method)
    if protocol == "proposed":
        if ls_policy == "as_marked":
            return analysis.is_schedulable(taskset)
        try:
            policy = LS_POLICIES[ls_policy]
        except KeyError:
            raise AnalysisError(
                f"unknown LS policy {ls_policy!r}; expected 'as_marked' or one "
                f"of {sorted(LS_POLICIES)}"
            ) from None
        # Cheap necessary conditions before any MILP is built.
        cpu_util = sum(t.exec_time / t.period for t in taskset)
        dma_util = sum((t.copy_in + t.copy_out) / t.period for t in taskset)
        if cpu_util > 1.0 + 1e-12 or dma_util > 1.0 + 1e-12:
            return False
        return policy(taskset, analysis, collect_results=False).schedulable
    return analysis.is_schedulable(taskset)
