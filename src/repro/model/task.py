"""The three-phase task model of the paper (Sec. II).

A task is characterised by the worst-case durations of its three
phases — copy-in ``l`` (load from global to local memory), execution
``C`` (contention-free, local-memory only), copy-out ``u`` (store back
to global memory) — plus a release model (an arrival curve), a relative
deadline ``D`` and a unique fixed priority. Lower numeric priority
value means higher scheduling priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.curves import ArrivalCurve, SporadicArrival
from repro.errors import ModelError
from repro.types import Priority, Time


@dataclass(frozen=True)
class Task:
    """An independent sporadic real-time task with three-phase execution.

    Attributes:
        name: Human-readable unique identifier.
        exec_time: Worst-case duration ``C_i`` of the execution phase.
        copy_in: Worst-case duration ``l_i`` of the copy-in phase.
        copy_out: Worst-case duration ``u_i`` of the copy-out phase.
        deadline: Relative deadline ``D_i``.
        priority: Unique fixed priority (lower value = higher priority).
        arrivals: Arrival curve ``eta_i`` bounding release events.
        latency_sensitive: Whether the task is in ``Gamma_LS``.
        footprint: Optional local-memory footprint in bytes; checked
            against memory-partition sizes when a platform is supplied.
    """

    name: str
    exec_time: Time
    copy_in: Time
    copy_out: Time
    deadline: Time
    priority: Priority
    arrivals: ArrivalCurve
    latency_sensitive: bool = False
    footprint: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be non-empty")
        if self.exec_time <= 0:
            raise ModelError(f"{self.name}: exec_time must be positive")
        if self.copy_in < 0 or self.copy_out < 0:
            raise ModelError(f"{self.name}: copy phases must be non-negative")
        if self.deadline <= 0:
            raise ModelError(f"{self.name}: deadline must be positive")
        if self.footprint is not None and self.footprint <= 0:
            raise ModelError(f"{self.name}: footprint must be positive")

    @staticmethod
    def sporadic(
        name: str,
        exec_time: Time,
        period: Time,
        deadline: Time | None = None,
        copy_in: Time = 0.0,
        copy_out: Time = 0.0,
        priority: Priority = 0,
        latency_sensitive: bool = False,
        footprint: int | None = None,
    ) -> "Task":
        """Build a sporadic task (the event model of the evaluation)."""
        return Task(
            name=name,
            exec_time=exec_time,
            copy_in=copy_in,
            copy_out=copy_out,
            deadline=period if deadline is None else deadline,
            priority=priority,
            arrivals=SporadicArrival(period),
            latency_sensitive=latency_sensitive,
            footprint=footprint,
        )

    @property
    def total_cost(self) -> Time:
        """Serialised cost ``l_i + C_i + u_i`` (what NPS executes)."""
        return self.copy_in + self.exec_time + self.copy_out

    @property
    def trivially_unschedulable(self) -> bool:
        """``D < l + C + u``: unschedulable under every protocol.

        Every compared approach finishes a job no earlier than
        ``l + C + u`` after its release (the copy-in may be hidden
        behind *other* work, but a job's own response always spans its
        three phases). The paper's deadline generation
        (``D ~ U[C + beta(T - C), T]``) can produce such tasks for
        small ``beta`` and large ``gamma``; they count as unschedulable
        for all protocols rather than being rejected at generation.
        """
        return self.deadline < self.total_cost - 1e-12

    @property
    def period(self) -> Time:
        """Minimum inter-arrival time, when the event model has one."""
        if isinstance(self.arrivals, SporadicArrival):
            return self.arrivals.period
        period = getattr(self.arrivals, "period", None)
        if period is None:
            raise ModelError(f"{self.name}: arrival curve has no period")
        return float(period)

    @property
    def utilization(self) -> float:
        """Execution-phase utilisation ``C_i / T_i`` (paper Sec. VII)."""
        return self.exec_time / self.period

    @property
    def total_utilization(self) -> float:
        """Utilisation including memory phases: ``(l+C+u)/T``."""
        return self.total_cost / self.period

    def as_latency_sensitive(self, flag: bool = True) -> "Task":
        """Return a copy with the LS flag set (tasks are immutable)."""
        if self.latency_sensitive == flag:
            return self
        return replace(self, latency_sensitive=flag)

    def with_priority(self, priority: Priority) -> "Task":
        """Return a copy with a different priority."""
        return replace(self, priority=priority)

    def eta(self, delta: Time) -> int:
        """Shorthand for ``self.arrivals.eta(delta)``."""
        return self.arrivals.eta(delta)

    def __repr__(self) -> str:
        tag = "LS" if self.latency_sensitive else "NLS"
        return (
            f"Task({self.name!r}, C={self.exec_time}, l={self.copy_in}, "
            f"u={self.copy_out}, D={self.deadline}, prio={self.priority}, {tag})"
        )
