"""Per-core task sets with the priority/LS queries used by the analyses.

A :class:`TaskSet` models the workload ``Gamma`` of one core (the
protocol and all analyses are per-core, Sec. II). It validates
uniqueness of names and priorities and exposes the ``hp``/``lp`` and
``Gamma_LS``/``Gamma_NLS`` partitions the paper's notation relies on.
Task sets are immutable: LS re-marking produces a new set, which keeps
the greedy algorithm of Sec. VI side-effect free.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

from repro.errors import ModelError
from repro.model.task import Task
from repro.types import Time


class TaskSet:
    """An immutable collection of tasks sharing one core."""

    __slots__ = ("_tasks", "_by_name")

    def __init__(self, tasks: Iterable[Task]) -> None:
        ordered = sorted(tasks, key=lambda t: t.priority)
        if not ordered:
            raise ModelError("a task set must contain at least one task")
        names = [t.name for t in ordered]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate task names in {names}")
        priorities = [t.priority for t in ordered]
        if len(set(priorities)) != len(priorities):
            raise ModelError(f"priorities must be unique, got {priorities}")
        self._tasks: tuple[Task, ...] = tuple(ordered)
        self._by_name = {t.name: t for t in ordered}

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def __contains__(self, task: object) -> bool:
        if isinstance(task, Task):
            return self._by_name.get(task.name) == task
        if isinstance(task, str):
            return task in self._by_name
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TaskSet) and other._tasks == self._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:
        return f"TaskSet({list(self._tasks)!r})"

    def digest(self) -> str:
        """Short stable hex digest of the task parameters.

        Unlike :func:`hash`, the value is stable across processes, so
        failure ledgers and checkpoints can name the exact task set a
        fault occurred on.
        """
        h = hashlib.sha256()
        for t in self._tasks:
            h.update(
                repr(
                    (
                        t.name,
                        t.exec_time,
                        t.copy_in,
                        t.copy_out,
                        t.deadline,
                        t.priority,
                        t.arrivals,
                        t.latency_sensitive,
                    )
                ).encode()
            )
        return h.hexdigest()[:16]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> tuple[Task, ...]:
        """All tasks, ordered by decreasing priority (increasing value)."""
        return self._tasks

    def by_name(self, name: str) -> Task:
        """Return the task called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"no task named {name!r} in the set") from None

    def require_member(self, task: Task) -> Task:
        """Validate that ``task`` belongs to this set and return it."""
        member = self._by_name.get(task.name)
        if member is None or member != task:
            raise ModelError(f"{task.name!r} is not a member of this task set")
        return member

    # ------------------------------------------------------------------
    # priority partitions (paper notation)
    # ------------------------------------------------------------------
    def hp(self, task: Task) -> tuple[Task, ...]:
        """Tasks with higher priority than ``task`` (``hp(tau_i)``)."""
        self.require_member(task)
        return tuple(t for t in self._tasks if t.priority < task.priority)

    def lp(self, task: Task) -> tuple[Task, ...]:
        """Tasks with lower priority than ``task`` (``lp(tau_i)``)."""
        self.require_member(task)
        return tuple(t for t in self._tasks if t.priority > task.priority)

    def hp_ls(self, task: Task) -> tuple[Task, ...]:
        """Higher-priority latency-sensitive tasks (``hp^LS``)."""
        return tuple(t for t in self.hp(task) if t.latency_sensitive)

    def lp_ls(self, task: Task) -> tuple[Task, ...]:
        """Lower-priority latency-sensitive tasks (``lp^LS``)."""
        return tuple(t for t in self.lp(task) if t.latency_sensitive)

    def hp_nls(self, task: Task) -> tuple[Task, ...]:
        """Higher-priority non-latency-sensitive tasks (``hp^NLS``)."""
        return tuple(t for t in self.hp(task) if not t.latency_sensitive)

    def lp_nls(self, task: Task) -> tuple[Task, ...]:
        """Lower-priority non-latency-sensitive tasks (``lp^NLS``)."""
        return tuple(t for t in self.lp(task) if not t.latency_sensitive)

    @property
    def ls_tasks(self) -> tuple[Task, ...]:
        """``Gamma_LS``: tasks marked latency-sensitive."""
        return tuple(t for t in self._tasks if t.latency_sensitive)

    @property
    def nls_tasks(self) -> tuple[Task, ...]:
        """``Gamma_NLS``: tasks not marked latency-sensitive."""
        return tuple(t for t in self._tasks if not t.latency_sensitive)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Total execution-phase utilisation ``sum C_i / T_i``."""
        return sum(t.utilization for t in self._tasks)

    @property
    def total_utilization(self) -> float:
        """Utilisation including memory phases ``sum (l+C+u)/T``."""
        return sum(t.total_utilization for t in self._tasks)

    def max_copy_in(self, exclude: Task | None = None) -> Time:
        """``max_j l_j``, optionally excluding one task."""
        values = [t.copy_in for t in self._tasks if t is not exclude]
        return max(values, default=0.0)

    def max_copy_out(self, exclude: Task | None = None) -> Time:
        """``max_j u_j``, optionally excluding one task."""
        values = [t.copy_out for t in self._tasks if t is not exclude]
        return max(values, default=0.0)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_ls_marks(self, ls_names: Iterable[str]) -> "TaskSet":
        """Return a copy where exactly the named tasks are LS."""
        wanted = set(ls_names)
        unknown = wanted - set(self._by_name)
        if unknown:
            raise ModelError(f"unknown task names in LS marking: {sorted(unknown)}")
        return TaskSet(
            t.as_latency_sensitive(t.name in wanted) for t in self._tasks
        )

    def with_task_replaced(self, task: Task) -> "TaskSet":
        """Return a copy with the same-named task replaced by ``task``."""
        if task.name not in self._by_name:
            raise ModelError(f"no task named {task.name!r} to replace")
        return TaskSet(
            task if t.name == task.name else t for t in self._tasks
        )

    @staticmethod
    def from_parameters(
        rows: Sequence[tuple[str, Time, Time, Time, Time, Time]],
    ) -> "TaskSet":
        """Build a sporadic task set from ``(name, C, l, u, T, D)`` rows.

        Priorities are assigned deadline-monotonically (ties broken by
        row order), matching common practice for non-preemptive FP.
        """
        order = sorted(range(len(rows)), key=lambda i: (rows[i][5], i))
        prio_of = {idx: p for p, idx in enumerate(order)}
        tasks = []
        for i, (name, c, l, u, t, d) in enumerate(rows):
            tasks.append(
                Task.sporadic(
                    name,
                    exec_time=c,
                    copy_in=l,
                    copy_out=u,
                    period=t,
                    deadline=d,
                    priority=prio_of[i],
                )
            )
        return TaskSet(tasks)
