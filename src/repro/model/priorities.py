"""Priority-assignment policies.

The paper assumes "a unique priority" per task (Sec. II) without fixing
how priorities are chosen; the evaluation harness uses
deadline-monotonic (DM) ordering, the standard choice for constrained
deadlines. This module provides DM and rate-monotonic (RM) assignment
plus Audsley's Optimal Priority Assignment (OPA), which searches
priority orders using a schedulability analysis as an oracle.

OPA applicability: Audsley's algorithm is optimal for analyses where a
task's schedulability depends only on (i) its own parameters, (ii) the
*set* of higher-priority tasks (not their relative order), and (iii)
the set of lower-priority tasks only through order-independent terms.
The NPS and interval-protocol analyses in this package satisfy (i)-(ii)
— interference is a sum over the hp *set* — and use lower-priority
tasks only through blocking maxima/budgets, so OPA applies in the
standard "weakly optimal" sense. The LS *marking* interacts with
priorities, so for the proposed protocol OPA is run for a fixed
marking (all-NLS by default); the greedy LS search can be applied on
top of the found order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import AnalysisError
from repro.model.task import Task
from repro.model.taskset import TaskSet

#: Oracle signature: is `task` schedulable in `taskset` at its current
#: priority? (The task is a member of the set.)
SchedulabilityOracle = Callable[[TaskSet, Task], bool]


def _reassign(tasks: Sequence[Task]) -> TaskSet:
    """Give tasks consecutive priorities in their current order."""
    return TaskSet(
        task.with_priority(prio) for prio, task in enumerate(tasks)
    )


def deadline_monotonic(tasks: Iterable[Task]) -> TaskSet:
    """DM: shorter relative deadline = higher priority."""
    ordered = sorted(tasks, key=lambda t: (t.deadline, t.name))
    return _reassign(ordered)


def rate_monotonic(tasks: Iterable[Task]) -> TaskSet:
    """RM: shorter period = higher priority."""
    ordered = sorted(tasks, key=lambda t: (t.period, t.name))
    return _reassign(ordered)


def audsley_opa(
    tasks: Iterable[Task],
    oracle: SchedulabilityOracle,
) -> TaskSet | None:
    """Audsley's Optimal Priority Assignment.

    Assigns the lowest priority level to any task the oracle accepts at
    that level, then recurses on the rest. Returns a schedulable
    priority assignment, or ``None`` when no assignment exists that the
    oracle accepts (in which case, for an OPA-compatible oracle, *no*
    fixed-priority order is schedulable).

    Args:
        tasks: The tasks to order (their current priorities are
            ignored; the result carries fresh priorities ``0..n-1``).
        oracle: Schedulability test used at each level.
    """
    remaining = list(tasks)
    if not remaining:
        raise AnalysisError("cannot assign priorities to an empty set")
    n = len(remaining)
    assigned: list[Task] = [None] * n  # type: ignore[list-item]

    for level in range(n - 1, -1, -1):
        placed = False
        for candidate in list(remaining):
            # Build a trial set: candidate at this level, the other
            # unassigned tasks above it (their relative order is
            # irrelevant for an OPA-compatible oracle), the already
            # assigned tasks below.
            others = [t for t in remaining if t is not candidate]
            trial_order = others + [candidate] + [
                t for t in assigned[level + 1:]
            ]
            trial_set = _reassign(trial_order)
            trial_task = trial_set[len(others)]
            if oracle(trial_set, trial_task):
                assigned[level] = candidate
                remaining.remove(candidate)
                placed = True
                break
        if not placed:
            return None
    return _reassign(assigned)


def opa_with_analysis(
    tasks: Iterable[Task],
    protocol: str = "proposed",
    method: str = "milp",
) -> TaskSet | None:
    """OPA with one of the package's analyses as the oracle.

    LS marks are cleared first (see the module docstring); re-run the
    greedy LS search on the returned set if desired.
    """
    from repro.analysis.schedulability import _make_analysis

    analysis = _make_analysis(protocol, None, method)

    def oracle(taskset: TaskSet, task: Task) -> bool:
        if task.trivially_unschedulable:
            return False
        if hasattr(analysis, "verdict"):
            return analysis.verdict(taskset, task)
        return analysis.response_time(taskset, task).schedulable

    plain = [t.as_latency_sensitive(False) for t in tasks]
    return audsley_opa(plain, oracle)
