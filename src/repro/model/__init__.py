"""Task, task-set, and platform models (paper Sec. II)."""

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.model.platform import (
    Core,
    DmaEngine,
    LocalMemory,
    Platform,
    copy_times_from_footprint,
)
from repro.model.partitioning import (
    PartitioningResult,
    partition_tasks,
)

__all__ = [
    "Task",
    "TaskSet",
    "Core",
    "DmaEngine",
    "LocalMemory",
    "Platform",
    "copy_times_from_footprint",
    "PartitioningResult",
    "partition_tasks",
]
