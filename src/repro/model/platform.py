"""Platform model (paper Sec. II, "Platform Model").

The paper targets COTS platforms such as the NXP QorIQ T1042: identical
cores, each with a private dual-ported local memory (scratch-pad, or a
locked cache with stashing) split into two same-size partitions, a
per-core DMA engine, a crossbar, and a shared global memory.

This module is a *descriptive* model: it carries the parameters the
rest of the library needs (partition sizes for footprint checks, DMA
bandwidth to derive copy-phase durations) and validates that a task set
fits a core. Timing behaviour itself lives in the analyses and the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.types import Time


@dataclass(frozen=True)
class LocalMemory:
    """A per-core dual-ported local memory split into two partitions.

    Attributes:
        size_bytes: Total capacity; each partition gets half (the
            protocol mandates two same-size partitions, Sec. IV).
    """

    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ModelError("local memory size must be positive")
        if self.size_bytes % 2 != 0:
            raise ModelError(
                "local memory size must be even to form two equal partitions"
            )

    @property
    def partition_bytes(self) -> int:
        """Capacity of one of the two partitions."""
        return self.size_bytes // 2

    def fits(self, task: Task) -> bool:
        """Whether the task's footprint fits one partition.

        Tasks without a declared footprint are assumed to fit (the
        paper's evaluation generates copy times directly).
        """
        if task.footprint is None:
            return True
        return task.footprint <= self.partition_bytes


@dataclass(frozen=True)
class DmaEngine:
    """A per-core DMA engine with a sustained transfer bandwidth.

    Attributes:
        bandwidth_bytes_per_ms: Sustained copy bandwidth, already
            de-rated for worst-case global-memory contention (the paper
            folds contention into ``l_i``/``u_i`` via [7, 8]).
        setup_time: Fixed per-transfer programming overhead.
    """

    bandwidth_bytes_per_ms: float
    setup_time: Time = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_ms <= 0:
            raise ModelError("DMA bandwidth must be positive")
        if self.setup_time < 0:
            raise ModelError("DMA setup time must be non-negative")

    def transfer_time(self, num_bytes: int) -> Time:
        """Worst-case time to move ``num_bytes`` between memories."""
        if num_bytes < 0:
            raise ModelError("transfer size must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.setup_time + num_bytes / self.bandwidth_bytes_per_ms


@dataclass(frozen=True)
class Core:
    """One processing core with its local memory and DMA engine."""

    index: int
    memory: LocalMemory
    dma: DmaEngine

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError("core index must be non-negative")


@dataclass(frozen=True)
class Platform:
    """A multicore platform of identical cores (paper Sec. II)."""

    cores: tuple[Core, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.cores:
            raise ModelError("a platform needs at least one core")
        indices = [c.index for c in self.cores]
        if sorted(indices) != list(range(len(self.cores))):
            raise ModelError(f"core indices must be 0..{len(self.cores)-1}")

    @staticmethod
    def homogeneous(
        num_cores: int,
        memory_bytes: int = 512 * 1024,
        dma_bandwidth_bytes_per_ms: float = 4 * 1024 * 1024,
        dma_setup_time: Time = 0.0,
    ) -> "Platform":
        """Build a platform of ``num_cores`` identical cores."""
        if num_cores <= 0:
            raise ModelError("num_cores must be positive")
        memory = LocalMemory(memory_bytes)
        dma = DmaEngine(dma_bandwidth_bytes_per_ms, dma_setup_time)
        return Platform(
            tuple(Core(i, memory, dma) for i in range(num_cores))
        )

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def validate_taskset(self, core: Core, taskset: TaskSet) -> None:
        """Check every task's footprint fits the core's partitions."""
        oversized = [t.name for t in taskset if not core.memory.fits(t)]
        if oversized:
            raise ModelError(
                f"tasks {oversized} exceed the {core.memory.partition_bytes}-byte "
                f"partition of core {core.index}"
            )


def copy_times_from_footprint(
    task_footprint_bytes: int,
    output_bytes: int,
    core: Core,
) -> tuple[Time, Time]:
    """Derive ``(l_i, u_i)`` from memory footprints and DMA bandwidth.

    ``task_footprint_bytes`` is everything loaded in the copy-in phase
    (code + input data); ``output_bytes`` is what the copy-out phase
    writes back. Raises if the footprint cannot fit one partition.
    """
    if task_footprint_bytes <= 0:
        raise ModelError("footprint must be positive")
    if output_bytes < 0 or output_bytes > task_footprint_bytes:
        raise ModelError("output size must be within the task footprint")
    if task_footprint_bytes > core.memory.partition_bytes:
        raise ModelError(
            f"footprint {task_footprint_bytes} exceeds partition size "
            f"{core.memory.partition_bytes}"
        )
    return (
        core.dma.transfer_time(task_footprint_bytes),
        core.dma.transfer_time(output_bytes),
    )
