"""Static task-to-core partitioning heuristics.

The paper assumes tasks are statically partitioned to cores and
analyses each core in isolation (Sec. II). This module provides the
classical bin-packing heuristics used to produce such partitions, so
the multicore story is end-to-end: generate tasks, partition them,
analyse each core with any of the three analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Literal, Sequence

from repro.errors import PartitioningError
from repro.model.platform import Platform
from repro.model.task import Task
from repro.model.taskset import TaskSet

Heuristic = Literal["first_fit", "best_fit", "worst_fit"]


@dataclass(frozen=True)
class PartitioningResult:
    """Outcome of a partitioning run.

    Attributes:
        assignments: One task set per core, index-aligned with the
            platform's cores. Cores that received no task hold ``None``.
        heuristic: The heuristic that produced the assignment.
    """

    assignments: tuple[TaskSet | None, ...]
    heuristic: Heuristic

    @property
    def per_core_utilization(self) -> tuple[float, ...]:
        """Execution-phase utilisation of each core."""
        return tuple(
            ts.utilization if ts is not None else 0.0 for ts in self.assignments
        )

    def core_of(self, task: Task) -> int:
        """Index of the core the task was assigned to."""
        for idx, ts in enumerate(self.assignments):
            if ts is not None and task in ts:
                return idx
        raise PartitioningError(f"{task.name!r} was not assigned to any core")


def _capacity_left(bin_util: float, cap: float, task: Task) -> float:
    return cap - bin_util - task.total_utilization


def partition_tasks(
    tasks: Iterable[Task],
    platform: Platform,
    heuristic: Heuristic = "first_fit",
    capacity: float = 1.0,
    sort_decreasing: bool = True,
) -> PartitioningResult:
    """Partition tasks onto the platform's cores by utilisation.

    Tasks are considered in decreasing total-utilisation order by
    default ("-decreasing" variants of the heuristics), and a task fits
    a core when the core's accumulated *total* utilisation (including
    memory phases, since on a single DMA+CPU pair both sides consume
    bandwidth) stays at or below ``capacity``. Footprint feasibility is
    also enforced when tasks declare footprints.

    Raises:
        PartitioningError: When some task fits no core.
    """
    if not 0 < capacity <= 1.0:
        raise PartitioningError(f"capacity must be in (0, 1], got {capacity}")
    task_list = list(tasks)
    if sort_decreasing:
        task_list.sort(key=lambda t: t.total_utilization, reverse=True)

    bins: list[list[Task]] = [[] for _ in platform.cores]
    utils = [0.0 for _ in platform.cores]

    def eligible(core_idx: int, task: Task) -> bool:
        if not platform.cores[core_idx].memory.fits(task):
            return False
        return _capacity_left(utils[core_idx], capacity, task) >= -1e-12

    pickers: dict[Heuristic, Callable[[Sequence[int], Task], int]] = {
        "first_fit": lambda idxs, _t: idxs[0],
        "best_fit": lambda idxs, t: min(
            idxs, key=lambda i: _capacity_left(utils[i], capacity, t)
        ),
        "worst_fit": lambda idxs, t: max(
            idxs, key=lambda i: _capacity_left(utils[i], capacity, t)
        ),
    }
    if heuristic not in pickers:
        raise PartitioningError(f"unknown heuristic {heuristic!r}")
    pick = pickers[heuristic]

    for task in task_list:
        candidates = [i for i in range(platform.num_cores) if eligible(i, task)]
        if not candidates:
            raise PartitioningError(
                f"{task.name!r} (U_total={task.total_utilization:.3f}) fits no core"
            )
        chosen = pick(candidates, task)
        bins[chosen].append(task)
        utils[chosen] += task.total_utilization

    assignments = tuple(
        TaskSet(bin_tasks) if bin_tasks else None for bin_tasks in bins
    )
    return PartitioningResult(assignments=assignments, heuristic=heuristic)
