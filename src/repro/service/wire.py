"""Length-prefixed JSON framing shared by every sweep-service peer.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single message object. The framing is
deliberately minimal — no versioned handshake beyond the ``hello``
message, no compression, no pipelining — because the payloads are
small (unit descriptors and integer verdict counts) and the protocol
must stay debuggable with ``nc`` and a hex dump. The same codec backs
the synchronous :mod:`socket` endpoints (workers, the submit client)
and the coordinator's :mod:`asyncio` streams.

Message vocabulary (the ``type`` field):

===================  ==============================================
``hello``            First frame of every connection:
                     ``{"role": "worker" | "client"}``.
``welcome``          Coordinator → worker: the run context a worker
                     needs (``cache_path``, ``fault_plan``).
``unit``             Coordinator → worker: evaluate one
                     (point, task set) unit at a given attempt.
``result``           Worker → coordinator: the finished unit
                     (counts, ledger, cache stats, buffered events).
``submit``           Client → coordinator: run one sweep config.
``progress``         Coordinator → client: one completed point.
``unit_done``        Coordinator → client: live per-unit progress
                     (completed / served / total counts).
``sweep_done``       Coordinator → client: the finished sweep as a
                     :func:`repro.experiments.persistence.sweep_to_dict`
                     payload.
``error``            Coordinator → client: the sweep failed; carries
                     the error type and message.
===================  ==============================================
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from repro.errors import ExperimentError

#: struct format of the frame header: one unsigned 32-bit big-endian
#: payload length.
_HEADER = ">I"
_HEADER_SIZE = struct.calcsize(_HEADER)

#: Upper bound on a single frame's payload. Sweep configs and unit
#: results are kilobytes; anything near this is a protocol violation
#: (or an attack), not data.
MAX_FRAME = 64 * 1024 * 1024


class WireError(ExperimentError):
    """A malformed or oversized frame on a sweep-service connection."""


def encode_frame(message: dict) -> bytes:
    """One message as header + JSON payload bytes."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise WireError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME}-byte cap"
        )
    return struct.pack(_HEADER, len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise WireError(
            f"frame payload is not a typed message object: {message!r}"
        )
    return message


def _parse_header(header: bytes) -> int:
    (length,) = struct.unpack(_HEADER, header)
    if length > MAX_FRAME:
        raise WireError(
            f"announced frame of {length} bytes exceeds the "
            f"{MAX_FRAME}-byte cap"
        )
    return length


# ----------------------------------------------------------------------
# synchronous endpoints (workers, the submit client)
# ----------------------------------------------------------------------
def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError``."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"peer closed the connection mid-frame "
                f"({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> "dict | None":
    """The next message, or ``None`` on a clean end-of-stream."""
    try:
        first = sock.recv(_HEADER_SIZE)
    except ConnectionError:
        return None
    if not first:
        return None
    if len(first) < _HEADER_SIZE:
        first += _recv_exact(sock, _HEADER_SIZE - len(first))
    return _decode_payload(_recv_exact(sock, _parse_header(first)))


# ----------------------------------------------------------------------
# asyncio endpoints (the coordinator)
# ----------------------------------------------------------------------
async def send_message_async(
    writer: asyncio.StreamWriter, message: dict
) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


async def recv_message_async(reader: asyncio.StreamReader) -> "dict | None":
    """The next message, or ``None`` when the peer is gone."""
    try:
        header = await reader.readexactly(_HEADER_SIZE)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length = _parse_header(header)
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return _decode_payload(payload)
