"""Sharded sweep service: coordinator, workers, and submit client.

The distributed face of the experiment engine (``repro serve`` /
``repro submit``). The coordinator shards a sweep into the same pure
(point, task set) units the local engines use, answers already-solved
units straight from the content-addressed persistent store, dispatches
only unseen digests to socket-connected workers, and merges through
the parent-only checkpoint path — bit-identical to a sequential run.
See :mod:`repro.service.coordinator` for the pipeline and
:mod:`repro.service.wire` for the protocol.
"""

from repro.service.client import submit_sweep
from repro.service.coordinator import (
    SweepService,
    run_service_sweep,
    serve,
)
from repro.service.worker import spawn_worker, worker_main

__all__ = [
    "SweepService",
    "run_service_sweep",
    "serve",
    "spawn_worker",
    "submit_sweep",
    "worker_main",
]
