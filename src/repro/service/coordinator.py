"""Sweep-service coordinator: shard, probe the store, dispatch, merge.

One asyncio server accepts both roles on one port (the first frame's
``hello`` names the role). Workers register into an idle pool; clients
submit sweep configs and stream progress back. Sweeps are processed
one at a time — the coordinator is the *parent* of the sweep in
exactly the sense the local engines use the word: the only writer of
the trace, the checkpoint, and the unit-result store.

The dispatch pipeline per submitted sweep:

1. **Resume.** The sweep's checkpoint (``checkpoint_dir/<config
   digest>.json``) is loaded tolerantly; points it already holds are
   skipped, digest-failed points are dropped and re-solved — the same
   ``checkpoint_version`` 1/2 recovery the CLI ``--resume`` path uses,
   which is what makes a *coordinator* restart survivable: resubmit,
   and only the lost tail is recomputed.
2. **Store probe.** Every pending (point, task set) unit's content
   address (:func:`repro.experiments.units.unit_digest`) is probed
   against the persistent store in one batched ``fetch_many`` *before
   anything is dispatched*. Hits are recorded immediately as served
   units (zero analysis, a ``unit_store.hits`` counter, a
   ``service.unit.served`` trace event); only unseen digests reach a
   worker. A fully-warm repeat submit therefore completes without a
   single solve or dispatch. With a fault plan active the probe and
   the store writes are disabled — injected faults must actually
   execute, and their outcomes must not poison the store.
3. **Dispatch.** Remaining units go to idle workers in sorted order.
   A worker connection dying mid-unit is a crash of that unit: the
   same requeue → solo re-run → quarantine ladder as the local pool
   (the :class:`~repro.experiments.units.UnitScheduler` is shared
   code), with the socket itself playing the inflight-marker role —
   connection loss attributes the crash precisely, no filesystem
   forensics needed.
4. **Merge.** Unit results merge through the scheduler's parent-only
   checkpoint path; solved units are written back to the store so the
   next overlapping sweep starts warmer.
"""

from __future__ import annotations

import asyncio
import os
import time
from contextlib import nullcontext
from typing import Awaitable, Callable

from repro.analysis.interface import AnalysisOptions
from repro.analysis.store import PersistentStore
from repro.errors import ExperimentError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import (
    _config_from_dict,
    cleanup_stale_tmp,
    config_digest,
    load_checkpoint_recovering,
    sweep_to_dict,
)
from repro.experiments.runner import sweep_stale_marker_dirs
from repro.experiments.units import (
    FailurePolicy,
    PointResult,
    SweepResult,
    UnitScheduler,
    _coerce_policy,
    served_unit,
    unit_digest,
    unit_from_wire,
    unit_to_payload,
)
from repro.faults import injection as faults
from repro.faults.plan import FaultPlan
from repro.obs.events import TraceWriter
from repro.service.wire import (
    encode_frame,
    recv_message_async,
    send_message_async,
)
from repro.service.worker import options_from_dict, options_to_dict, spawn_worker


class _WorkerConn:
    """Coordinator-side state of one connected worker."""

    def __init__(
        self,
        worker_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.id = worker_id
        self.reader = reader
        self.writer = writer
        self.alive = True
        #: Sweep ids whose config this worker already holds.
        self.known_sweeps: set[str] = set()
        #: Unit key currently dispatched to this worker, if any.
        self.inflight: "tuple[int, int] | None" = None
        self.closed = asyncio.Event()


class SweepService:
    """The coordinator: owns workers, the store, and sweep processing.

    ``worker_spawner`` (when set) is invoked to replace dead local
    workers, bounded per sweep by the same ``4 + 2 * units`` respawn
    budget the process-pool engine uses; without a spawner the service
    runs with whatever workers connect (remote mode) and fails loudly
    when none remain.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_path: "str | None" = None,
        checkpoint_dir: "str | None" = None,
        trace_dir: "str | None" = None,
        fault_plan: FaultPlan | None = None,
        worker_spawner: "Callable[[str, int], object] | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.cache_path = cache_path
        self.checkpoint_dir = checkpoint_dir
        self.trace_dir = trace_dir
        self.fault_plan = fault_plan
        self.store = (
            PersistentStore(cache_path) if cache_path is not None else None
        )
        self._spawner = worker_spawner
        self._server: "asyncio.AbstractServer | None" = None
        self._workers: dict[int, _WorkerConn] = {}
        self._idle: "asyncio.Queue[_WorkerConn]" = asyncio.Queue()
        self._next_worker_id = 0
        self._next_sweep = 0
        self._sweep_lock = asyncio.Lock()
        self._writer: TraceWriter | None = None
        self._respawns = 0
        self._respawn_budget = 0
        #: A replacement worker process we spawned that has not joined
        #: yet (None when none is outstanding) — one at a time, so a
        #: slow-booting replacement is not mistaken for a dead one.
        self._spawn_probe: object | None = None
        self.sweeps_done = 0
        self._sweep_finished = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for worker in list(self._workers.values()):
            try:
                await send_message_async(worker.writer, {"type": "shutdown"})
            except (ConnectionError, OSError):
                pass
            worker.alive = False
            worker.closed.set()
            worker.writer.close()
        self._workers.clear()

    async def wait_for_sweeps(self, count: int) -> None:
        """Block until ``count`` sweeps have been processed."""
        while self.sweeps_done < count:
            self._sweep_finished.clear()
            await self._sweep_finished.wait()

    @property
    def live_workers(self) -> int:
        return sum(1 for w in self._workers.values() if w.alive)

    # -- connection handling -------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        hello = await recv_message_async(reader)
        if hello is None or hello.get("type") != "hello":
            writer.close()
            return
        if hello.get("role") == "worker":
            await self._handle_worker(reader, writer)
        else:
            await self._handle_client(reader, writer)

    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker = _WorkerConn(self._next_worker_id, reader, writer)
        self._next_worker_id += 1
        self._workers[worker.id] = worker
        self._spawn_probe = None
        try:
            await send_message_async(writer, {
                "type": "welcome",
                "cache_path": self.cache_path,
                "fault_plan": (
                    self.fault_plan.to_dict()
                    if self.fault_plan is not None
                    else None
                ),
            })
        except (ConnectionError, OSError):
            self._drop_worker(worker)
            return
        self._emit("service.worker.joined", worker=worker.id)
        self._idle.put_nowait(worker)
        # Hold the connection open until the dispatch path (or stop())
        # declares the worker gone; all reads happen in _run_unit.
        await worker.closed.wait()

    def _drop_worker(self, worker: _WorkerConn) -> None:
        if not worker.alive:
            return
        worker.alive = False
        worker.closed.set()
        self._workers.pop(worker.id, None)
        self._emit(
            "service.worker.left",
            worker=worker.id,
            inflight=0 if worker.inflight is None else 1,
        )
        try:
            worker.writer.close()
        except OSError:
            pass

    async def _acquire_worker(self) -> _WorkerConn:
        while True:
            if self.live_workers == 0:
                probe = self._spawn_probe
                if probe is not None:
                    alive = getattr(probe, "is_alive", None)
                    if callable(alive) and not alive():
                        self._spawn_probe = None  # died before joining
                if self._spawn_probe is None:
                    if (
                        self._spawner is not None
                        and self._respawns < self._respawn_budget
                    ):
                        self._respawns += 1
                        self._spawn_probe = self._spawner(
                            self.host, self.port
                        )
                    elif self._spawner is not None:
                        raise ExperimentError(
                            f"sweep service aborted: workers kept dying "
                            f"({self._respawns} respawns) — the "
                            f"environment is killing workers faster than "
                            f"quarantine can isolate the cause"
                        )
                    else:
                        raise ExperimentError(
                            "sweep service has no live workers and no way "
                            "to spawn replacements; connect workers and "
                            "resubmit"
                        )
            try:
                worker = await asyncio.wait_for(self._idle.get(), timeout=0.05)
            except asyncio.TimeoutError:
                continue
            if worker.alive:
                return worker

    # -- client handling -----------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        message = await recv_message_async(reader)
        if message is None:
            writer.close()
            return
        if message.get("type") != "submit":
            await send_message_async(writer, {
                "type": "error", "error_type": "WireError",
                "message": f"expected a submit message, got "
                           f"{message.get('type')!r}",
            })
            writer.close()
            return

        def point_progress(result: PointResult) -> None:
            # Sync callback from the scheduler: buffer the frame; the
            # event loop flushes it with the next await.
            writer.write(encode_frame({
                "type": "progress",
                "x": result.x,
                "ratios": dict(result.ratios),
                "failures": len(result.failures),
            }))

        def unit_progress(done: int, total: int, served: int) -> None:
            writer.write(encode_frame({
                "type": "unit_done", "done": done, "total": total,
                "served": served,
            }))

        try:
            config = _config_from_dict(message["config"])
            sweep = await self.process_sweep(
                config,
                options=options_from_dict(message.get("options")),
                failure_policy=message.get(
                    "policy", FailurePolicy.COUNT_UNSCHEDULABLE.value
                ),
                progress=point_progress,
                unit_progress=unit_progress,
            )
        except ReproError as exc:
            try:
                await send_message_async(writer, {
                    "type": "error",
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                })
            except (ConnectionError, OSError):
                pass
        else:
            try:
                await send_message_async(writer, {
                    "type": "sweep_done",
                    "sweep": sweep_to_dict(sweep),
                })
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()

    # -- sweep processing ----------------------------------------------
    def _emit(self, name: str, **fields: object) -> None:
        if self._writer is not None:
            self._writer.emit(name, **fields)  # type: ignore[arg-type]

    async def process_sweep(
        self,
        config: ExperimentConfig,
        *,
        options: AnalysisOptions | None = None,
        failure_policy: "FailurePolicy | str" = (
            FailurePolicy.COUNT_UNSCHEDULABLE
        ),
        progress: "Callable[[PointResult], None] | None" = None,
        unit_progress: "Callable[[int, int, int], None] | None" = None,
        trace_path: "str | None" = None,
    ) -> SweepResult:
        """Run one sweep through probe → dispatch → merge.

        Serialised: concurrent submits queue on the sweep lock. The
        full experiment contract of :func:`repro.experiments.runner.
        run_experiment` applies — same unit decomposition, same
        checkpoint format, same trace schema, bit-identical results.
        """
        async with self._sweep_lock:
            try:
                return await self._process_sweep_locked(
                    config, options, _coerce_policy(failure_policy),
                    progress, unit_progress, trace_path,
                )
            finally:
                self.sweeps_done += 1
                self._sweep_finished.set()

    async def _process_sweep_locked(
        self,
        config: ExperimentConfig,
        options: AnalysisOptions | None,
        policy: FailurePolicy,
        progress: "Callable[[PointResult], None] | None",
        unit_progress: "Callable[[int, int, int], None] | None",
        trace_path: "str | None",
    ) -> SweepResult:
        digest = config_digest(config)
        sweep_id = f"s{self._next_sweep}"
        self._next_sweep += 1
        checkpoint_path: "str | None" = None
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            checkpoint_path = os.path.join(
                self.checkpoint_dir, f"{digest}.json"
            )
            cleanup_stale_tmp(checkpoint_path)
        completed: dict[int, PointResult] = {}
        recovered: list[str] = []
        if checkpoint_path is not None:
            completed, recovered = load_checkpoint_recovering(
                checkpoint_path, config
            )
        if trace_path is None and self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
            # One file per *sweep*, not per config: a repeat submit of
            # the same config (resumed or store-served, hence a nearly
            # empty trace) must not clobber the cold run's full trace.
            trace_path = os.path.join(
                self.trace_dir, f"{digest}.{sweep_id}.trace.jsonl"
            )
        writer = (
            TraceWriter(trace_path, run_id=digest[:12])
            if trace_path is not None
            else None
        )
        self._writer = writer
        plan_scope = (
            faults.injecting(self.fault_plan)
            if self.fault_plan is not None
            else nullcontext()
        )
        try:
            with plan_scope:
                if writer is not None:
                    writer.emit(
                        "run.start",
                        points=len(config.points),
                        sets=config.sets_per_point,
                        jobs=self.live_workers,
                        resumed=len(completed),
                    )
                    for problem in recovered:
                        writer.emit("checkpoint.recovered", detail=problem)
                sweep_stale_marker_dirs(writer)
                run_start = time.perf_counter()
                self._emit(
                    "service.start", port=self.port, workers=self.live_workers
                )
                scheduler = UnitScheduler(
                    config,
                    policy,
                    completed,
                    checkpoint_path=checkpoint_path,
                    writer=writer,
                    fault_plan=self.fault_plan,
                    progress=progress,
                )
                total_units = len(scheduler.pending)
                self._respawns = 0
                self._respawn_budget = 4 + 2 * total_units
                self._emit(
                    "service.submit",
                    points=len(config.points),
                    units=total_units,
                    resumed=len(completed),
                )

                def report_units(served: int) -> None:
                    if unit_progress is not None:
                        unit_progress(
                            total_units - len(scheduler.pending),
                            total_units,
                            served,
                        )

                served = 0
                dispatched = 0
                digests: dict[tuple[int, int], str] = {}
                # Pre-dispatch store probe: with a fault plan active the
                # store is bypassed entirely (reads *and* writes) so
                # injected faults execute and their outcomes stay out of
                # the store.
                if self.store is not None and self.fault_plan is None:
                    digests = {
                        key: unit_digest(
                            config, key[0], key[1], options, policy
                        )
                        for key in scheduler.pending
                    }
                    hits = self.store.fetch_many(digests.values())
                    for key in sorted(digests):
                        value = hits.get(digests[key])
                        if (
                            isinstance(value, tuple)
                            and len(value) == 2
                            and value[0] == "unit"
                        ):
                            self._emit(
                                "service.unit.served",
                                point=key[0],
                                unit=key[1],
                            )
                            scheduler.record_unit(
                                key[0],
                                served_unit(
                                    value[1], trace=writer is not None
                                ),
                            )
                            served += 1
                            report_units(served)
                sweep_context = {
                    "type": "sweep",
                    "sweep": sweep_id,
                    "config": message_config(config),
                    "options": options_to_dict(options),
                    "policy": policy.value,
                    "trace": writer is not None,
                }
                while not scheduler.done:
                    # Crash-implicated units re-run alone (the probe
                    # semantics of the local pool): an isolated repeat
                    # crash is unambiguous, innocent collateral passes.
                    suspect_keys = scheduler.suspects()
                    batch = (
                        [suspect_keys[0]]
                        if suspect_keys
                        else sorted(scheduler.pending)
                    )
                    batch_attempts = {
                        key: scheduler.pending[key] for key in batch
                    }
                    outcomes = await asyncio.gather(
                        *(
                            self._run_unit(
                                sweep_context,
                                key,
                                attempt,
                                scheduler,
                                digests,
                            )
                            for key, attempt in batch_attempts.items()
                        ),
                        return_exceptions=True,
                    )
                    for outcome in outcomes:
                        if isinstance(outcome, BaseException):
                            raise outcome
                        if outcome:
                            dispatched += 1
                            report_units(served)
                self._emit(
                    "service.sweep.done", served=served, dispatched=dispatched
                )
                result = scheduler.result()
                if writer is not None:
                    writer.emit(
                        "run.end", dur=time.perf_counter() - run_start
                    )
                return result
        finally:
            self._writer = None
            if writer is not None:
                writer.close()

    async def _run_unit(
        self,
        sweep_context: dict,
        key: "tuple[int, int]",
        attempt: int,
        scheduler: UnitScheduler,
        digests: "dict[tuple[int, int], str]",
    ) -> bool:
        """Dispatch one unit to a worker; returns True when evaluated.

        A worker connection dying before the result frame lands is this
        unit's crash: the worker is dropped and the scheduler decides
        requeue vs. quarantine, exactly as a broken local pool would.
        """
        sweep_id = sweep_context["sweep"]
        worker = await self._acquire_worker()
        reply: "dict | None" = None
        try:
            if sweep_id not in worker.known_sweeps:
                await send_message_async(worker.writer, sweep_context)
                worker.known_sweeps.add(sweep_id)
            worker.inflight = key
            await send_message_async(worker.writer, {
                "type": "unit", "sweep": sweep_id,
                "point": key[0], "unit": key[1], "attempt": attempt,
            })
            self._emit(
                "service.unit.dispatched",
                point=key[0],
                unit=key[1],
                worker=worker.id,
            )
            reply = await recv_message_async(worker.reader)
        except (ConnectionError, OSError):
            reply = None
        if reply is None or reply.get("type") != "result":
            self._drop_worker(worker)
            self._emit(
                "worker.crash",
                point=key[0],
                unit=key[1],
                attempt=attempt,
                crashes=scheduler.crash_counts.get(key, 0) + 1,
            )
            scheduler.record_crash(
                key,
                attempt,
                "WorkerCrashError",
                "service worker disconnected while evaluating this task set",
            )
            return False
        worker.inflight = None
        self._idle.put_nowait(worker)
        error = reply.get("error")
        if error is not None:
            if error.get("repro") or scheduler.policy is FailurePolicy.RAISE:
                raise ExperimentError(
                    f"worker failed evaluating (point {key[0]}, set "
                    f"{key[1]}): {error['type']}: {error['message']}"
                )
            scheduler.record_crash(
                key, attempt, error["type"], error["message"]
            )
            return False
        unit = unit_from_wire(reply["payload"])
        scheduler.record_unit(key[0], unit)
        if self.store is not None and self.fault_plan is None:
            self.store.store(
                digests[key], ("unit", unit_to_payload(unit))
            )
        return True


def message_config(config: ExperimentConfig) -> dict:
    """The wire form of a sweep config (persistence's checkpoint form)."""
    from repro.experiments.persistence import _config_to_dict

    return _config_to_dict(config)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
async def _with_service(
    body: "Callable[[SweepService], Awaitable[SweepResult]]",
    *,
    workers: int,
    cache_path: "str | None",
    checkpoint_dir: "str | None",
    trace_dir: "str | None",
    fault_plan: FaultPlan | None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> SweepResult:
    service = SweepService(
        host,
        port,
        cache_path=cache_path,
        checkpoint_dir=checkpoint_dir,
        trace_dir=trace_dir,
        fault_plan=fault_plan,
        worker_spawner=spawn_worker,
    )
    await service.start()
    processes = [
        spawn_worker(service.host, service.port) for _ in range(workers)
    ]
    try:
        return await body(service)
    finally:
        await service.stop()
        for process in processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)


def run_service_sweep(
    config: ExperimentConfig,
    *,
    workers: int = 2,
    options: AnalysisOptions | None = None,
    failure_policy: "FailurePolicy | str" = FailurePolicy.COUNT_UNSCHEDULABLE,
    cache_path: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    trace_path: "str | None" = None,
    fault_plan: FaultPlan | None = None,
    progress: "Callable[[PointResult], None] | None" = None,
) -> SweepResult:
    """One sweep through an ephemeral local service (workers included).

    The in-process backbone behind tests, benchmarks, and one-shot use:
    starts a coordinator on a free port, spawns ``workers`` local
    worker processes over the real socket transport, processes exactly
    this sweep, and tears everything down. Equivalent to ``repro
    serve`` + one ``repro submit``, minus the client socket hop.
    """

    async def body(service: SweepService) -> SweepResult:
        return await service.process_sweep(
            config,
            options=options,
            failure_policy=failure_policy,
            progress=progress,
            trace_path=trace_path,
        )

    return asyncio.run(_with_service(
        body,
        workers=workers,
        cache_path=cache_path,
        checkpoint_dir=checkpoint_dir,
        trace_dir=None,
        fault_plan=fault_plan,
    ))


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 2,
    cache_path: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    trace_dir: "str | None" = None,
    fault_plan: FaultPlan | None = None,
    max_sweeps: "int | None" = None,
    ready: "Callable[[int], None] | None" = None,
) -> None:
    """Run a sweep service until stopped (or ``max_sweeps`` processed).

    Binds the coordinator, spawns ``workers`` local worker processes,
    reports the bound port through ``ready`` (port 0 binds a free one),
    and serves ``repro submit`` clients. ``max_sweeps`` gives CI and
    tests a deterministic exit.
    """

    async def main() -> None:
        service = SweepService(
            host,
            port,
            cache_path=cache_path,
            checkpoint_dir=checkpoint_dir,
            trace_dir=trace_dir,
            fault_plan=fault_plan,
            worker_spawner=spawn_worker,
        )
        await service.start()
        processes = [
            spawn_worker(service.host, service.port) for _ in range(workers)
        ]
        if ready is not None:
            ready(service.port)
        try:
            if max_sweeps is not None:
                await service.wait_for_sweeps(max_sweeps)
            else:
                assert service._server is not None
                await service._server.serve_forever()
        finally:
            await service.stop()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
