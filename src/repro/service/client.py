"""Synchronous submit client for the sweep service.

:func:`submit_sweep` is the programmatic form of ``repro submit``: it
connects to a running coordinator, ships one sweep config, relays
streamed progress (per completed point and per finished unit), and
returns the reconstructed :class:`~repro.experiments.units.SweepResult`.
The coordinator answers a fully-warm repeat submit directly from the
persistent store, so the second identical call returns in milliseconds
with ``unit_store.hits == units`` and zero solves in its
``analysis_stats``.
"""

from __future__ import annotations

import socket
from typing import Callable

from repro.analysis.interface import AnalysisOptions
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import sweep_from_dict
from repro.experiments.units import FailurePolicy, SweepResult
from repro.service.coordinator import message_config
from repro.service.wire import recv_message, send_message
from repro.service.worker import options_to_dict


def submit_sweep(
    host: str,
    port: int,
    config: ExperimentConfig,
    *,
    options: AnalysisOptions | None = None,
    failure_policy: "FailurePolicy | str" = FailurePolicy.COUNT_UNSCHEDULABLE,
    progress: "Callable[[dict], None] | None" = None,
    unit_progress: "Callable[[int, int, int], None] | None" = None,
    timeout: "float | None" = None,
) -> SweepResult:
    """Submit one sweep to a running coordinator and await the result.

    ``progress`` receives each completed point's ``{"x", "ratios",
    "failures"}`` payload; ``unit_progress`` receives ``(done, total,
    served)`` counts as units finish (including store-served ones).
    Raises :class:`ExperimentError` when the coordinator reports a
    failed sweep or the connection drops mid-protocol.
    """
    policy = FailurePolicy(failure_policy)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as error:
        raise ExperimentError(
            f"cannot reach the sweep service at {host}:{port}: {error}"
        ) from error
    try:
        send_message(sock, {"type": "hello", "role": "client"})
        send_message(sock, {
            "type": "submit",
            "config": message_config(config),
            "options": options_to_dict(options),
            "policy": policy.value,
        })
        while True:
            message = recv_message(sock)
            if message is None:
                raise ExperimentError(
                    "sweep service closed the connection before "
                    "returning a result"
                )
            kind = message.get("type")
            if kind == "progress":
                if progress is not None:
                    progress(message)
            elif kind == "unit_done":
                if unit_progress is not None:
                    unit_progress(
                        int(message["done"]),
                        int(message["total"]),
                        int(message["served"]),
                    )
            elif kind == "sweep_done":
                return sweep_from_dict(message["sweep"])
            elif kind == "error":
                raise ExperimentError(
                    f"sweep service failed: {message.get('error_type')}: "
                    f"{message.get('message')}"
                )
            else:
                raise ExperimentError(
                    f"unexpected message from the sweep service: {kind!r}"
                )
    except OSError as error:
        raise ExperimentError(
            f"connection to the sweep service at {host}:{port} dropped "
            f"mid-protocol: {error}"
        ) from error
    finally:
        sock.close()
