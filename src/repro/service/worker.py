"""Sweep-service worker: a synchronous unit-evaluation loop.

A worker is one OS process holding one socket to the coordinator. It
announces itself (``hello``), receives the run context (``welcome``:
persistent-cache path, fault plan), then loops: receive a ``unit``
message, evaluate it through the exact same
:func:`repro.experiments.runner._worker_evaluate` entry point the
``--jobs N`` process pool uses (fresh per-unit analysis-cache scope,
per-unit fault-injection scope, buffered trace events), and send the
``result`` frame back. Sweep configs travel once per (worker, sweep)
in a ``sweep`` frame and are cached by id, so steady-state unit frames
are a few dozen bytes.

Crash semantics are inherited wholesale: an injected ``worker.death``
(``exit`` mode) calls ``os._exit`` mid-unit, the socket dies with the
process, and the coordinator's connection-loss path plays the role the
broken-pool marker protocol plays for the local pool — requeue with an
incremented attempt, probe, quarantine. The service-specific
``service.disconnect`` fault site additionally models a *network*
failure: the worker drops its connection on the way into a unit and
exits without evaluating anything.

Workers never write trace files, checkpoints, or the unit-result store
— they ship buffered events and counters on the result frame and the
coordinator (the single writer) persists everything.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import socket
from contextlib import nullcontext
from typing import Any

from repro.analysis.interface import AnalysisOptions, RegulationConfig
from repro.errors import ReproError
from repro.experiments.persistence import _config_from_dict
from repro.experiments.runner import _worker_evaluate
from repro.experiments.units import unit_to_wire
from repro.faults import injection as faults
from repro.faults.plan import FaultPlan
from repro.milp.resilient import ResilienceConfig
from repro.milp.solution import DegradationLevel
from repro.service.wire import recv_message, send_message


def options_to_dict(options: "AnalysisOptions | None") -> "dict | None":
    """JSON-safe form of :class:`AnalysisOptions` for the wire."""
    if options is None:
        return None
    raw: dict[str, Any] = dataclasses.asdict(options)
    if raw.get("resilience") is not None:
        resilience = dict(raw["resilience"])
        resilience["max_degradation"] = int(resilience["max_degradation"])
        raw["resilience"] = resilience
    return raw


def options_from_dict(raw: "dict | None") -> "AnalysisOptions | None":
    """Rebuild :class:`AnalysisOptions` from :func:`options_to_dict`.

    The structured protocol knobs are re-normalised to their canonical
    in-memory shapes (tuples, :class:`RegulationConfig`): the JSON wire
    collapses tuples to lists, and a reconstructed options object must
    ``repr`` identically to a locally-built one — unit digests (and so
    the store's served-unit tier) hash that ``repr``.
    """
    if raw is None:
        return None
    fields = dict(raw)
    resilience = fields.pop("resilience", None)
    if resilience is not None:
        resilience = dict(resilience)
        resilience["max_degradation"] = DegradationLevel(
            resilience["max_degradation"]
        )
        resilience = ResilienceConfig(**resilience)
    thresholds = fields.pop("preemption_thresholds", None)
    if thresholds is not None:
        thresholds = tuple(
            (str(name), int(theta)) for name, theta in thresholds
        )
    regulation = fields.pop("regulation", None)
    if regulation is not None:
        regulation = RegulationConfig(**regulation)
    return AnalysisOptions(
        **fields,
        resilience=resilience,
        preemption_thresholds=thresholds,
        regulation=regulation,
    )


def _check_disconnect(
    plan: "FaultPlan | None", point: int, unit: int, attempt: int
) -> bool:
    """Whether an injected ``service.disconnect`` fires for this unit."""
    if plan is None:
        return False
    with faults.injecting(plan, point=point, unit=unit, attempt=attempt):
        return faults.fire("service.disconnect") is not None


def worker_main(host: str, port: int) -> None:
    """Connect to the coordinator and evaluate units until told to stop.

    Process entry point (see :func:`spawn_worker`); exits when the
    coordinator sends ``shutdown``, closes the connection, or an
    injected fault drops/kills this worker.
    """
    sock = socket.create_connection((host, port))
    try:
        send_message(sock, {"type": "hello", "role": "worker",
                            "pid": os.getpid()})
        welcome = recv_message(sock)
        if welcome is None or welcome.get("type") != "welcome":
            return
        cache_path = welcome.get("cache_path")
        plan_raw = welcome.get("fault_plan")
        fault_plan = (
            FaultPlan.from_dict(plan_raw) if plan_raw is not None else None
        )
        run_scope = (
            faults.injecting(fault_plan)
            if fault_plan is not None
            else nullcontext()
        )
        sweeps: dict[str, dict] = {}
        with run_scope:
            while True:
                message = recv_message(sock)
                if message is None or message.get("type") == "shutdown":
                    return
                if message["type"] == "sweep":
                    sweeps[message["sweep"]] = {
                        "config": _config_from_dict(message["config"]),
                        "options": options_from_dict(message.get("options")),
                        "policy": message["policy"],
                        "trace": bool(message.get("trace", False)),
                    }
                    continue
                if message["type"] != "unit":
                    continue
                context = sweeps[message["sweep"]]
                point = int(message["point"])
                unit = int(message["unit"])
                attempt = int(message["attempt"])
                if _check_disconnect(fault_plan, point, unit, attempt):
                    # Simulated network partition: drop the connection
                    # without a result and die. The coordinator's
                    # connection-loss path must requeue the unit.
                    sock.close()
                    os._exit(70)
                try:
                    _, result = _worker_evaluate(
                        context["config"],
                        point,
                        unit,
                        context["options"],
                        context["policy"],
                        context["trace"],
                        fault_plan,
                        attempt,
                        None,  # no marker files: the socket is the marker
                        cache_path,
                    )
                except ReproError as exc:
                    send_message(sock, {
                        "type": "result", "point": point, "unit": unit,
                        "attempt": attempt,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc), "repro": True},
                    })
                except Exception as exc:  # noqa: BLE001 - ledgered upstream
                    send_message(sock, {
                        "type": "result", "point": point, "unit": unit,
                        "attempt": attempt,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc), "repro": False},
                    })
                else:
                    send_message(sock, {
                        "type": "result", "point": point, "unit": unit,
                        "attempt": attempt,
                        "payload": unit_to_wire(result),
                    })
    finally:
        try:
            sock.close()
        except OSError:
            pass


def spawn_worker(host: str, port: int) -> multiprocessing.Process:
    """Start one local worker process connected to ``host:port``."""
    process = multiprocessing.Process(
        target=worker_main, args=(host, port), daemon=True
    )
    process.start()
    return process
