"""Fault plans: scripted fault sites × deterministic trigger predicates.

A :class:`FaultPlan` is a declarative script of faults to inject into a
run — "crash the solver once on point 2", "kill the worker evaluating
unit 1 every time it starts", "tear the third checkpoint write between
temp file and rename". Plans are plain frozen dataclasses, picklable
(they cross process boundaries to sweep workers) and serialisable to
JSON (``repro figure --inject plan.json``).

Determinism is the whole point: a spec's trigger is a pure predicate
over the injection context (sweep point, work unit, protocol, retry
attempt, per-scope hit counter), so the same plan against the same
configuration injects the same faults at the same places — in every
process, every run. The only stochastic knob, ``probability``, draws
from a generator seeded by ``(plan.seed, point, unit)``, which keeps
even probabilistic plans reproducible and bit-identical between
``--jobs 1`` and ``--jobs N``.

The plan layer only *decides* whether a site fires; the behaviour of a
fired fault (raise, return garbage, ``os._exit``, skip a rename) lives
at the instrumented call site — see :mod:`repro.faults.injection` for
the activation API and the site catalogue below for what each site
simulates.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.errors import FaultPlanError

#: Catalogue of fault sites and their modes; a spec's ``mode`` defaults
#: to the first entry. See the module docstrings of the instrumented
#: layers for exact semantics.
SITES: dict[str, tuple[str, ...]] = {
    # One solve attempt inside ResilientBackend misbehaves:
    #   crash   -> BackendUnavailableError from the attempt
    #   timeout -> SolverTimeoutError from the attempt
    #   garbage -> an OPTIMAL solution with a non-finite objective
    "solver.fault": ("crash", "timeout", "garbage"),
    # The worker process evaluating a (point, unit) pair dies:
    #   exit  -> os._exit mid-unit (the pool breaks; no cleanup runs)
    #   raise -> an unexpected non-Repro exception escapes the unit
    "worker.death": ("exit", "raise"),
    # A checkpoint write is torn between temp-write and rename:
    #   lost          -> temp file written, rename never happens, crash
    #   truncate      -> target replaced by a truncated payload, crash
    #   corrupt_point -> one point's payload is silently garbled, crash
    "checkpoint.torn": ("lost", "truncate", "corrupt_point"),
    # One JSONL trace line is corrupted as it is written:
    #   truncate -> only a prefix of the line reaches the file
    #   garbage  -> a non-JSON line is written instead
    "trace.corrupt": ("truncate", "garbage"),
    # A filesystem call raises a transient OSError.
    "fs.error": ("oserror",),
    # A persistent-cache row is garbled as it is written; the digest
    # check on read must detect it, drop the row, and re-solve:
    #   garbage -> the payload is replaced by non-JSON bytes
    #   torn    -> only a prefix of the payload reaches the row
    "cache.corrupt": ("garbage", "torn"),
    # A sweep-service worker's connection to the coordinator is cut
    # mid-unit (network partition, worker host reboot):
    #   drop -> the worker closes its socket and exits without sending
    #           the unit result; the coordinator must requeue the unit
    "service.disconnect": ("drop",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: a site plus a deterministic trigger.

    Attributes:
        site: Fault site name (a key of :data:`SITES`).
        mode: Site-specific variant; defaults to the site's first mode.
        point: Only fire at this sweep-point index (``None`` = any).
        unit: Only fire for this task-set index (``None`` = any).
        protocol: Only fire while evaluating this protocol.
        attempt: Only fire on this retry attempt of the unit (workers
            that died are requeued with an incremented attempt).
        after: Skip the first ``after`` otherwise-eligible hits of the
            current injection scope before firing.
        times: Fire at most this many times per injection scope
            (``None`` = unlimited). Work-unit sites get a fresh scope
            per unit — in every process — so the budget is per unit,
            which is what keeps ``--jobs 1`` and ``--jobs N`` behaviour
            identical; run-level sites (checkpoint, trace, fs) count
            across the whole run.
        probability: When set, an eligible hit fires with this
            probability, drawn from a generator seeded by
            ``(plan.seed, point, unit)`` — deterministic per scope.
    """

    site: str
    mode: str = ""
    point: int | None = None
    unit: int | None = None
    protocol: str | None = None
    attempt: int | None = None
    after: int = 0
    times: int | None = 1
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(SITES)}"
            )
        modes = SITES[self.site]
        if not self.mode:
            object.__setattr__(self, "mode", modes[0])
        elif self.mode not in modes:
            raise FaultPlanError(
                f"unknown mode {self.mode!r} for site {self.site!r}; "
                f"expected one of {list(modes)}"
            )
        if self.after < 0:
            raise FaultPlanError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise FaultPlanError(
                f"times must be >= 1 or null, got {self.times}"
            )
        if self.probability is not None and not (
            0.0 < self.probability <= 1.0
        ):
            raise FaultPlanError(
                f"probability must be in (0, 1], got {self.probability}"
            )

    def matches(
        self,
        site: str,
        *,
        point: int | None = None,
        unit: int | None = None,
        protocol: str | None = None,
        attempt: int | None = None,
    ) -> bool:
        """Static predicate check, ignoring the ``after``/``times``
        counters (those are per-scope state, see
        :class:`repro.faults.injection.Injection`)."""
        if self.site != site:
            return False
        for want, have in (
            (self.point, point),
            (self.unit, unit),
            (self.protocol, protocol),
            (self.attempt, attempt),
        ):
            if want is not None and want != have:
                return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An ordered script of :class:`FaultSpec` entries.

    Attributes:
        specs: The scripted faults, checked in order at every site hit;
            the first matching spec fires.
        seed: Seed mixed into the per-scope generator that decides
            probabilistic triggers.
        name: Free-form label, stamped into ``fault.*`` trace events.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = ""

    def matching(
        self,
        site: str,
        *,
        point: int | None = None,
        unit: int | None = None,
        protocol: str | None = None,
        attempt: int | None = None,
    ) -> FaultSpec | None:
        """First spec whose static predicate matches this context.

        Counter-free: used by the parent process to attribute a
        detected worker death to the plan (the worker's own buffered
        ``fault.*`` event dies with it)."""
        for spec in self.specs:
            if spec.matches(
                site, point=point, unit=unit, protocol=protocol,
                attempt=attempt,
            ):
                return spec
        return None

    def to_dict(self) -> dict:
        # All fields are serialised explicitly: ``None`` is meaningful
        # (``times: null`` = unlimited, which is not the default), so
        # dropping nulls would not round-trip.
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [dataclasses.asdict(spec) for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "FaultPlan":
        if not isinstance(raw, Mapping):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(raw).__name__}"
            )
        specs_raw = raw.get("specs", [])
        if not isinstance(specs_raw, list):
            raise FaultPlanError("fault plan 'specs' must be a list")
        known = {f.name for f in dataclasses.fields(FaultSpec)}
        specs = []
        for index, entry in enumerate(specs_raw):
            if not isinstance(entry, Mapping):
                raise FaultPlanError(f"spec #{index} must be an object")
            extras = set(entry) - known
            if extras:
                raise FaultPlanError(
                    f"spec #{index} has unknown fields {sorted(extras)}"
                )
            try:
                specs.append(FaultSpec(**entry))
            except TypeError as exc:
                raise FaultPlanError(f"spec #{index}: {exc}") from exc
        seed = raw.get("seed", 0)
        name = raw.get("name", "")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultPlanError(f"fault plan seed must be an int, got {seed!r}")
        if not isinstance(name, str):
            raise FaultPlanError("fault plan name must be a string")
        return cls(specs=tuple(specs), seed=seed, name=name)


def save_plan(plan: FaultPlan, path: str | Path) -> None:
    """Write a fault plan to a JSON file."""
    Path(path).write_text(json.dumps(plan.to_dict(), indent=2))


def load_plan(path: str | Path) -> FaultPlan:
    """Read a fault plan from a JSON file (``--inject plan.json``)."""
    path = Path(path)
    if not path.exists():
        raise FaultPlanError(f"fault plan not found: {path}")
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"invalid fault plan JSON in {path}: {exc}") from exc
    return FaultPlan.from_dict(raw)
