"""Activation of fault plans: scopes, trigger counters, ``fire()``.

Instrumented call sites ask :func:`fire` whether a scripted fault
should trigger *here*; the answer is the matching
:class:`~repro.faults.plan.FaultSpec` (the site then performs the
fault: raise, return garbage, ``os._exit``, skip a rename) or ``None``
— which is also the unconditional answer whenever no plan is active,
so production code pays one list lookup, exactly like :mod:`repro.obs`.

Scopes
------
A plan is activated with :func:`injecting`, which pushes an
:class:`Injection` scope carrying

* the ambient context (sweep point, work unit, retry attempt) merged
  into every ``fire()`` call, and
* the ``after``/``times`` counters and the probability generator.

The experiment runner opens one scope per **work unit** (in the worker
process under ``--jobs N``, inline under ``--jobs 1``), so unit-level
trigger budgets reset per unit in both execution modes — the property
that keeps injected parallel runs equivalent to injected sequential
runs. A second, run-level scope in the parent covers the sites outside
any unit (checkpoint writes, trace lines, filesystem errors); its
counters span the whole run. The innermost scope wins, mirroring the
recorder stack in :mod:`repro.obs.events`.

Every fired injection is recorded twice: as a schema-valid
``fault.<site>`` event through :func:`repro.obs.events.emit` (so traces
prove what was injected where) and on the scope's :attr:`Injection.fired`
log (so tests can assert without tracing).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import events as obs


@dataclass(frozen=True)
class FiredFault:
    """One injection that actually triggered, for assertions/logs."""

    site: str
    mode: str
    spec_index: int
    point: int | None
    unit: int | None
    protocol: str | None
    attempt: int | None


class Injection:
    """One active plan scope: context + per-scope trigger state."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        point: int | None = None,
        unit: int | None = None,
        attempt: int | None = None,
    ) -> None:
        self.plan = plan
        self.point = point
        self.unit = unit
        self.attempt = attempt
        self._hits = [0] * len(plan.specs)
        self._fires = [0] * len(plan.specs)
        self._rng: np.random.Generator | None = None
        #: Chronological log of the scope's fired injections.
        self.fired: list[FiredFault] = []

    def _random(self) -> float:
        if self._rng is None:
            # Seeded per scope from the plan seed and the ambient
            # context, so probabilistic plans stay deterministic and
            # identical across process placements.
            self._rng = np.random.default_rng(
                [self.plan.seed, self.point or 0, self.unit or 0]
            )
        return float(self._rng.random())

    def fire(
        self,
        site: str,
        *,
        point: int | None = None,
        unit: int | None = None,
        protocol: str | None = None,
        attempt: int | None = None,
        **fields: object,
    ) -> FaultSpec | None:
        """First spec that triggers at this site hit, counting state.

        Call-site context overrides the scope's ambient context field
        by field; extra keyword ``fields`` are forwarded onto the
        emitted ``fault.*`` event.
        """
        point = point if point is not None else self.point
        unit = unit if unit is not None else self.unit
        attempt = attempt if attempt is not None else self.attempt
        for index, spec in enumerate(self.plan.specs):
            if not spec.matches(
                site, point=point, unit=unit, protocol=protocol,
                attempt=attempt,
            ):
                continue
            if spec.times is not None and self._fires[index] >= spec.times:
                continue
            self._hits[index] += 1
            if self._hits[index] <= spec.after:
                continue
            if spec.probability is not None and (
                self._random() >= spec.probability
            ):
                continue
            self._fires[index] += 1
            record = FiredFault(
                site=site,
                mode=spec.mode,
                spec_index=index,
                point=point,
                unit=unit,
                protocol=protocol,
                attempt=attempt,
            )
            self.fired.append(record)
            obs.emit(
                f"fault.{site}",
                point=point,
                unit=unit,
                mode=spec.mode,
                spec=index,
                plan=self.plan.name,
                **fields,
            )
            return spec
        return None


# Module-level scope stack, same discipline as obs._RECORDERS:
# deliberately not thread-local (the resilient backend's watchdog
# thread must see the scope of the solve it guards), and scopes never
# interleave because each process evaluates one work unit at a time.
_SCOPES: list[Injection] = []


def active() -> Injection | None:
    """The innermost active injection scope, or ``None``."""
    return _SCOPES[-1] if _SCOPES else None


@contextmanager
def injecting(
    plan: FaultPlan,
    *,
    point: int | None = None,
    unit: int | None = None,
    attempt: int | None = None,
) -> Iterator[Injection]:
    """Activate ``plan`` for the dynamic extent of the block."""
    scope = Injection(plan, point=point, unit=unit, attempt=attempt)
    _SCOPES.append(scope)
    try:
        yield scope
    finally:
        _SCOPES.pop()


def fire(
    site: str,
    *,
    point: int | None = None,
    unit: int | None = None,
    protocol: str | None = None,
    attempt: int | None = None,
    **fields: object,
) -> FaultSpec | None:
    """Module-level :meth:`Injection.fire`; ``None`` when no plan is active."""
    scope = active()
    if scope is None:
        return None
    return scope.fire(
        site,
        point=point,
        unit=unit,
        protocol=protocol,
        attempt=attempt,
        **fields,
    )
