"""Deterministic, seedable fault injection (``repro.faults``).

The chaos layer of the experiment engine: :class:`FaultPlan` scripts
*what* to break (see :data:`SITES`), :func:`injecting`/:func:`fire`
decide *when* (deterministic predicates over point/unit/protocol/
attempt plus seeded probabilities), and the instrumented layers —
:mod:`repro.milp.resilient`, :mod:`repro.experiments.runner`,
:mod:`repro.experiments.persistence`, :mod:`repro.obs.events` — perform
the fault. Every injection lands in the trace as a ``fault.*`` event.

The contract the chaos test suite enforces: for every recoverable plan,
``run_experiment`` under injection terminates with ratios, failure
ledgers, and analysis stats bit-identical to the fault-free sequential
run.
"""

from repro.faults.injection import (
    FiredFault,
    Injection,
    active,
    fire,
    injecting,
)
from repro.faults.plan import (
    SITES,
    FaultPlan,
    FaultSpec,
    load_plan,
    save_plan,
)

__all__ = [
    "SITES",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "Injection",
    "active",
    "fire",
    "injecting",
    "load_plan",
    "save_plan",
]
