"""Algebraic combinators over arrival curves.

These operations build derived curves out of existing ones without
sampling/re-fitting: the result wraps the operands and evaluates them
lazily, so exactness is preserved for any window length.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.curves.arrival import ArrivalCurve
from repro.errors import CurveError
from repro.types import Time


class _DerivedCurve(ArrivalCurve):
    """Arrival curve computed pointwise from operand curves."""

    __slots__ = ("_operands", "_combine", "_label")

    def __init__(
        self,
        operands: Sequence[ArrivalCurve],
        combine: Callable[[Sequence[int]], int],
        label: str,
    ) -> None:
        if not operands:
            raise CurveError(f"{label} of zero curves is undefined")
        self._operands = tuple(operands)
        self._combine = combine
        self._label = label

    def eta(self, delta: Time) -> int:
        if delta <= 0:
            return 0
        return self._combine([c.eta(delta) for c in self._operands])

    def eta_closed(self, delta: Time) -> int:
        # Combine the operands' own closed-window counts so that
        # boundary handling (and snapping) stays with each operand.
        if delta < 0:
            return 0
        return self._combine([c.eta_closed(delta) for c in self._operands])

    def __repr__(self) -> str:
        return f"{self._label}({', '.join(repr(c) for c in self._operands)})"


def curve_sum(*curves: ArrivalCurve) -> ArrivalCurve:
    """Sum of arrival curves: total releases of independent sources."""
    return _DerivedCurve(curves, sum, "curve_sum")


def curve_max(*curves: ArrivalCurve) -> ArrivalCurve:
    """Pointwise maximum: a bound valid for whichever source is active."""
    return _DerivedCurve(curves, max, "curve_max")


def curve_min(*curves: ArrivalCurve) -> ArrivalCurve:
    """Pointwise minimum: intersect independent upper bounds."""
    return _DerivedCurve(curves, min, "curve_min")


def scale(curve: ArrivalCurve, factor: int) -> ArrivalCurve:
    """Multiply a curve by a positive integer factor.

    Models ``factor`` identical sources sharing one event model.
    """
    if factor <= 0:
        raise CurveError(f"scale factor must be positive, got {factor}")
    return _DerivedCurve([curve], lambda vals: factor * vals[0], f"scale[{factor}]")


def pseudo_inverse(curve: ArrivalCurve, n: int) -> Time:
    """Smallest window length whose curve value reaches ``n`` events.

    Convenience wrapper over :meth:`ArrivalCurve.delta_min`, exposed as
    a free function for symmetry with the other combinators.
    """
    return curve.delta_min(n)
