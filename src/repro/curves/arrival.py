"""Arrival-curve event models.

An arrival curve ``eta`` maps a window length ``delta`` to the maximum
number of release events that can fall into *any* half-open time window
of that length. The convention follows the paper (Sec. II):

* ``eta(0) == 0`` — a zero-length window contains no release;
* curves are non-decreasing and integer-valued;
* a sporadic task with minimum inter-arrival ``T`` has
  ``eta(delta) = ceil(delta / T)``.

Busy-window style analyses often need the number of releases in a
*closed* window ``[0, delta]`` assuming a release at time 0; that is
``eta_closed(delta) = eta(delta + eps)`` and is provided as a method so
call sites do not sprinkle epsilons around.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import CurveError
from repro.types import TIME_EPS, Time


class ArrivalCurve(ABC):
    """Upper bound on the number of releases in any window of length delta."""

    @abstractmethod
    def eta(self, delta: Time) -> int:
        """Maximum number of releases in any half-open window of ``delta``."""

    def eta_closed(self, delta: Time) -> int:
        """Maximum releases in a closed window ``[0, delta]``.

        Equals ``eta(delta + eps)``: the closed window additionally
        captures a release sitting exactly on the window boundary.
        """
        return self.eta(delta + TIME_EPS)

    def __call__(self, delta: Time) -> int:
        return self.eta(delta)

    def delta_min(self, n: int) -> Time:
        """Pseudo-inverse: the smallest window length with ``eta >= n``.

        Generic implementation by doubling + bisection on top of
        :meth:`eta`; subclasses override with closed forms.
        """
        if n <= 0:
            return 0.0
        lo, hi = 0.0, 1.0
        while self.eta(hi) < n:
            hi *= 2.0
            if hi > 1e15:
                raise CurveError(f"delta_min({n}) diverges for {self!r}")
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.eta(mid) >= n:
                hi = mid
            else:
                lo = mid
        return hi

    def earliest_release(self, q: int) -> Time:
        """Earliest possible release time of job ``q`` (0-based).

        Assuming job 0 is released at time 0, returns the smallest
        ``r`` such that ``eta_closed(r) >= q + 1``: the event model
        cannot release the ``(q+1)``-th event any earlier. Used by
        busy-window analyses to convert finish times into response
        times. Generic implementation by bisection; subclasses with a
        closed form override it.
        """
        if q <= 0:
            return 0.0
        lo, hi = 0.0, 1.0
        while self.eta_closed(hi) < q + 1:
            hi *= 2.0
            if hi > 1e15:
                raise CurveError(f"earliest_release({q}) diverges for {self!r}")
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.eta_closed(mid) >= q + 1:
                hi = mid
            else:
                lo = mid
        return hi

    def validate(self, probe_points: Sequence[Time] = (0.0, 1.0, 10.0, 100.0)) -> None:
        """Check basic sanity (eta(0)=0, monotone over the probe points)."""
        if self.eta(0.0) != 0:
            raise CurveError(f"{self!r}: eta(0) must be 0")
        values = [self.eta(p) for p in probe_points]
        if any(b < a for a, b in zip(values, values[1:])):
            raise CurveError(f"{self!r}: eta is not monotone on {probe_points}")


def _floor_div_closed(delta: Time, period: Time) -> int:
    """``floor(delta / period)`` where exact multiples stay exact.

    Used by closed-window counts: a release sitting exactly on the
    window boundary is included, and floating-point noise within
    ``TIME_EPS`` of a multiple is treated as exactly the multiple.
    """
    raw = delta / period
    nearest = round(raw)
    if abs(raw - nearest) <= TIME_EPS * max(1.0, abs(nearest)):
        return int(nearest)
    return int(math.floor(raw))


def _ceil_div(delta: Time, period: Time) -> int:
    """``ceil(delta / period)`` robust to floating-point noise.

    ``delta`` values arrive from response-time iterations and may sit a
    hair above an exact multiple of ``period``; snapping within
    ``TIME_EPS`` avoids spuriously counting one extra release.
    """
    raw = delta / period
    nearest = round(raw)
    if abs(raw - nearest) <= TIME_EPS * max(1.0, abs(nearest)):
        return int(nearest)
    return int(math.ceil(raw))


class SporadicArrival(ArrivalCurve):
    """Sporadic event model: releases separated by at least ``period``.

    ``eta(delta) = ceil(delta / period)`` — the model used for every
    task in the paper's evaluation (Sec. VII).
    """

    __slots__ = ("period",)

    def __init__(self, period: Time) -> None:
        if period <= 0:
            raise CurveError(f"period must be positive, got {period}")
        self.period = float(period)

    def eta(self, delta: Time) -> int:
        if delta <= 0:
            return 0
        return _ceil_div(delta, self.period)

    def eta_closed(self, delta: Time) -> int:
        if delta < 0:
            return 0
        return _floor_div_closed(delta, self.period) + 1

    def delta_min(self, n: int) -> Time:
        if n <= 0:
            return 0.0
        # The margin must exceed the snapping tolerance of _ceil_div so
        # that eta(delta_min(n)) really evaluates to n.
        margin = 4 * TIME_EPS * max(1.0, float(n)) * max(1.0, self.period)
        return (n - 1) * self.period + margin

    def earliest_release(self, q: int) -> Time:
        if q <= 0:
            return 0.0
        return q * self.period

    def __repr__(self) -> str:
        return f"SporadicArrival(period={self.period})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SporadicArrival) and other.period == self.period

    def __hash__(self) -> int:
        return hash(("sporadic", self.period))


class PeriodicJitterArrival(ArrivalCurve):
    """Periodic-with-jitter event model.

    ``eta(delta) = ceil((delta + jitter) / period)`` for ``delta > 0``.
    With ``jitter == 0`` this coincides with :class:`SporadicArrival`
    numerically but models a strictly periodic source.
    """

    __slots__ = ("period", "jitter")

    def __init__(self, period: Time, jitter: Time = 0.0) -> None:
        if period <= 0:
            raise CurveError(f"period must be positive, got {period}")
        if jitter < 0:
            raise CurveError(f"jitter must be non-negative, got {jitter}")
        self.period = float(period)
        self.jitter = float(jitter)

    def eta(self, delta: Time) -> int:
        if delta <= 0:
            return 0
        return _ceil_div(delta + self.jitter, self.period)

    def eta_closed(self, delta: Time) -> int:
        if delta < 0:
            return 0
        return _floor_div_closed(delta + self.jitter, self.period) + 1

    def __repr__(self) -> str:
        return f"PeriodicJitterArrival(period={self.period}, jitter={self.jitter})"


class BurstyArrival(ArrivalCurve):
    """Periodic/jitter/minimum-distance ("PJd") bursty event model.

    Releases follow a period ``period`` with release jitter ``jitter``
    but consecutive events are always separated by at least ``d_min``:

    ``eta(delta) = min(ceil((delta + jitter) / period), ceil(delta / d_min))``
    """

    __slots__ = ("period", "jitter", "d_min")

    def __init__(self, period: Time, jitter: Time, d_min: Time) -> None:
        if period <= 0 or d_min <= 0:
            raise CurveError("period and d_min must be positive")
        if jitter < 0:
            raise CurveError("jitter must be non-negative")
        if d_min > period:
            raise CurveError("d_min larger than period would under-count bursts")
        self.period = float(period)
        self.jitter = float(jitter)
        self.d_min = float(d_min)

    def eta(self, delta: Time) -> int:
        if delta <= 0:
            return 0
        periodic = _ceil_div(delta + self.jitter, self.period)
        burst_limited = _ceil_div(delta, self.d_min)
        return min(periodic, burst_limited)

    def __repr__(self) -> str:
        return (
            f"BurstyArrival(period={self.period}, jitter={self.jitter}, "
            f"d_min={self.d_min})"
        )


class StaircaseCurve(ArrivalCurve):
    """Arbitrary staircase arrival curve given as ``(delta, count)`` steps.

    ``steps`` lists the window lengths at which the curve jumps *to*
    the associated count; between steps the curve is flat. Beyond the
    last step the curve grows with slope ``tail_rate`` events per
    ``tail_period`` (defaults to repeating the last inter-step gap), so
    the curve stays a valid long-run bound.
    """

    __slots__ = ("_steps", "_tail_period", "_tail_count")

    def __init__(
        self,
        steps: Sequence[tuple[Time, int]],
        tail_period: Time | None = None,
        tail_count: int = 1,
    ) -> None:
        if not steps:
            raise CurveError("StaircaseCurve needs at least one step")
        ordered = sorted((float(d), int(c)) for d, c in steps)
        prev_d, prev_c = -1.0, 0
        for d, c in ordered:
            if d < 0:
                raise CurveError("step positions must be non-negative")
            if d == prev_d:
                raise CurveError(f"duplicate step position {d}")
            if c < prev_c:
                raise CurveError("step counts must be non-decreasing")
            prev_d, prev_c = d, c
        self._steps = ordered
        if tail_period is None:
            if len(ordered) >= 2:
                tail_period = ordered[-1][0] - ordered[-2][0]
            else:
                tail_period = max(ordered[-1][0], 1.0)
        if tail_period <= TIME_EPS:
            raise CurveError(
                f"tail_period must exceed {TIME_EPS} (got {tail_period}); "
                "degenerate tails would make the curve numerically unusable"
            )
        if tail_count <= 0:
            raise CurveError("tail_count must be positive")
        self._tail_period = float(tail_period)
        self._tail_count = int(tail_count)

    def eta(self, delta: Time) -> int:
        if delta <= 0:
            return 0
        last_d, last_c = self._steps[-1]
        if delta > last_d:
            extra_periods = _ceil_div(delta - last_d, self._tail_period)
            return last_c + extra_periods * self._tail_count
        # Curve value at delta: the count of the last step at or before
        # delta, where a step at exactly `delta` is included (a window
        # of length delta can capture an event at its open end minus
        # epsilon... the staircase is defined left-continuous here).
        count = 0
        for d, c in self._steps:
            if d <= delta:
                count = c
            else:
                break
        return count

    def __repr__(self) -> str:
        return f"StaircaseCurve(steps={self._steps!r})"
