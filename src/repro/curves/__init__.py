"""Arrival-curve algebra.

Arrival curves (:class:`ArrivalCurve`) upper-bound the number of job
releases of a task in any time window of a given length, following the
event-model formalism used by the paper (Sec. II). The module provides
the standard event models (sporadic, periodic with jitter, bursty) plus
a generic staircase curve and the algebraic operations needed by the
analyses (sums, maxima, pseudo-inverse).
"""

from repro.curves.arrival import (
    ArrivalCurve,
    BurstyArrival,
    PeriodicJitterArrival,
    SporadicArrival,
    StaircaseCurve,
)
from repro.curves.algebra import (
    curve_max,
    curve_min,
    curve_sum,
    pseudo_inverse,
    scale,
)

__all__ = [
    "ArrivalCurve",
    "SporadicArrival",
    "PeriodicJitterArrival",
    "BurstyArrival",
    "StaircaseCurve",
    "curve_sum",
    "curve_max",
    "curve_min",
    "scale",
    "pseudo_inverse",
]
