"""Exception hierarchy for :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError`,
so callers can catch library failures with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """Raised when a task, task set, or platform description is invalid."""


class CurveError(ReproError):
    """Raised when an arrival curve is constructed or queried incorrectly."""


class SolverError(ReproError):
    """Raised when a MILP backend fails (infeasible model, bad status...)."""


class SolverTimeoutError(SolverError):
    """Raised when a solve exceeds its wall-clock budget without a result.

    Raised both by backends that hit their internal limit with no
    incumbent (HiGHS) and by the :class:`repro.milp.ResilientBackend`
    watchdog when a solve hangs past its deadline.
    """


class BackendUnavailableError(SolverError):
    """Raised when a backend cannot produce any usable result.

    Covers hard solver failures (HiGHS status 4 even after the
    presolve retry) and a resilient solve whose whole fallback chain
    was exhausted. The ``degradation`` attribute, when set, records the
    deepest :class:`repro.milp.DegradationLevel` that was attempted.
    """

    degradation: object | None = None


class InfeasibleModelError(SolverError):
    """Raised when a MILP that is expected to be feasible is not.

    The schedulability MILPs built by :mod:`repro.analysis` are feasible
    by construction; infeasibility indicates a formulation bug and is
    therefore surfaced loudly instead of being treated as a result.
    """


class UnboundedModelError(SolverError):
    """Raised when the MILP objective is unbounded.

    An unbounded delay-maximisation MILP means a constraint is missing:
    the analysis would otherwise silently report an infinite (useless
    but "safe") delay bound.
    """


class AnalysisError(ReproError):
    """Raised when a schedulability analysis is misused.

    Examples: analysing a task that is not part of the supplied task
    set, or requesting the LS analysis for a task not marked LS.
    """


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""


class PartitioningError(ReproError):
    """Raised when tasks cannot be partitioned onto the platform cores."""


class ExperimentError(ReproError):
    """Raised for invalid experiment configurations."""


class WorkerCrashError(ExperimentError):
    """Raised when a sweep work unit repeatedly kills its worker process.

    The parallel engine survives worker deaths (pool respawn + unit
    requeue); a unit that keeps crashing workers past its retry budget
    is quarantined into the failure ledger with this error type — or,
    under the ``RAISE`` failure policy, aborts the sweep with this
    exception.
    """


class FaultPlanError(ReproError):
    """Raised for invalid fault-injection plans (:mod:`repro.faults`).

    Covers unknown fault sites or modes, malformed trigger predicates,
    and unreadable ``--inject`` plan files.
    """


class InjectedCrashError(ReproError):
    """A simulated process crash raised by a fired parent-side fault.

    Stands in for "the process was killed here" at sites where really
    dying would take the test harness with it (torn checkpoint writes).
    It derives from :class:`ReproError` so the CLI reports it as a
    one-line error instead of a traceback, but the experiment engine
    never catches it: like a real crash, it aborts the run — recovery
    happens on the next ``--resume``.
    """


class ObservabilityError(ReproError):
    """Raised for invalid trace events, files, or profile operations.

    Covers malformed event records (schema violations), unreadable or
    truncated JSONL trace files, and profile aggregations asked to
    reconcile against mismatching run artifacts.
    """
