"""Reusable scenario builders shared by examples, CLI, and benchmarks."""

from repro.examples_support.figure1 import (
    figure1_plan,
    figure1_taskset,
    run_figure1_demo,
)

__all__ = ["figure1_taskset", "figure1_plan", "run_figure1_demo"]
