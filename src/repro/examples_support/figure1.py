"""The motivating example of the paper's Fig. 1, reconstructed.

A task ``ti`` under analysis is released while two lower-priority tasks
are pending. Under protocol [3] the double-buffering pipeline commits
to *both* lower-priority tasks before ``ti`` can be loaded — two
blocking intervals — and ``ti`` misses its deadline. Under plain
non-preemptive scheduling only the in-flight job blocks it, and it
meets the deadline comfortably. The proposed protocol cancels the
second lower-priority copy-in on ``ti``'s release (R3), promotes ``ti``
to urgent (R4), and meets the deadline while still using the DMA for
everything else.

The exact numbers of Fig. 1 are not printed in the paper; this
reconstruction preserves the structure (who blocks whom, and the
miss/meet outcomes of the three approaches).
"""

from __future__ import annotations

from repro.model.task import Task
from repro.model.taskset import TaskSet
from repro.sim.gantt import render_gantt, summarize_responses
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import ReleasePlan

#: Release time of the task under analysis (mid-interval, while the
#: copy-in of the second lower-priority task is pending).
TI_RELEASE = 2.5


def figure1_taskset(mark_ls: bool = False) -> TaskSet:
    """The four tasks of the scenario.

    ``tp`` is the "previously-executed task" of the figure (it warms up
    the pipeline so a lower-priority task is already loaded when ``ti``
    arrives); ``lp1``/``lp2`` are the two blockers.
    """
    tasks = [
        Task.sporadic("tp", exec_time=1.0, period=100.0, deadline=100.0,
                      copy_in=1.0, copy_out=1.0, priority=0),
        Task.sporadic("ti", exec_time=2.0, period=50.0, deadline=8.0,
                      copy_in=1.0, copy_out=1.0, priority=1,
                      latency_sensitive=mark_ls),
        Task.sporadic("lp1", exec_time=4.0, period=100.0, deadline=100.0,
                      copy_in=1.0, copy_out=1.0, priority=2),
        Task.sporadic("lp2", exec_time=3.0, period=100.0, deadline=100.0,
                      copy_in=1.0, copy_out=1.0, priority=3),
    ]
    return TaskSet(tasks)


def figure1_plan() -> ReleasePlan:
    """Releases: the pipeline warm-up at 0, ``ti`` mid-interval."""
    return ReleasePlan(
        releases={
            "tp": (0.0,),
            "lp1": (0.0,),
            "lp2": (0.0,),
            "ti": (TI_RELEASE,),
        },
        horizon=30.0,
    )


def run_figure1_demo(width: int = 90) -> str:
    """Simulate the scenario under all three approaches and report."""
    plan = figure1_plan()
    sections = []
    scenarios = [
        ("Fig. 1(a) — protocol [3]", WaslySimulator(figure1_taskset())),
        ("Fig. 1(b) — non-preemptive scheduling", NpsSimulator(figure1_taskset())),
        ("proposed protocol (ti marked LS)",
         ProposedSimulator(figure1_taskset(mark_ls=True))),
    ]
    for title, simulator in scenarios:
        trace = simulator.run(plan)
        response = trace.max_response_time("ti")
        deadline = figure1_taskset().by_name("ti").deadline
        verdict = "MEETS" if response <= deadline + 1e-9 else "MISSES"
        sections.append(
            "\n".join(
                [
                    f"=== {title} ===",
                    render_gantt(trace, width=width, until=14.0),
                    summarize_responses(trace),
                    f"ti response {response:.2f} vs deadline {deadline:g} "
                    f"-> {verdict}",
                ]
            )
        )
    return "\n\n".join(sections)
