"""Experiment harness regenerating the paper's evaluation (Fig. 2)."""

from repro.experiments.config import (
    ExperimentConfig,
    SweepPoint,
    figure2_config,
    FIGURE2_INSETS,
)
from repro.experiments.runner import (
    FailurePolicy,
    FailureRecord,
    PointResult,
    SweepResult,
    run_experiment,
    run_point,
)
from repro.experiments.report import (
    ascii_plot,
    render_failure_ledger,
    render_sweep_table,
    sweep_to_csv,
)
from repro.experiments.multicore import (
    MulticoreConfig,
    MulticoreResult,
    run_multicore_point,
)

__all__ = [
    "MulticoreConfig",
    "MulticoreResult",
    "run_multicore_point",
    "ExperimentConfig",
    "SweepPoint",
    "figure2_config",
    "FIGURE2_INSETS",
    "FailurePolicy",
    "FailureRecord",
    "PointResult",
    "SweepResult",
    "run_experiment",
    "run_point",
    "ascii_plot",
    "render_failure_ledger",
    "render_sweep_table",
    "sweep_to_csv",
]
