"""Sweep runner: schedulability ratios per protocol per point.

Long sweeps are thousands of MILP solves; this runner isolates faults
per taskset/protocol pair instead of letting one bad solve abort the
sweep. Each failure is captured as a structured :class:`FailureRecord`
in a ledger on the point result, and a :class:`FailurePolicy` decides
how the failed pair enters the ratios. With ``checkpoint_path`` set,
every completed point is persisted atomically so an interrupted sweep
resumes from where it stopped (see
:mod:`repro.experiments.persistence`).

Parallel execution
------------------
``run_experiment(..., jobs=N)`` fans the sweep out over a
``ProcessPoolExecutor``. The unit of work is one **(point, task set)**
pair — each worker regenerates the point's task-set sample from the
deterministic seed ``config.seed + point_index`` (memoised per
process) and evaluates every protocol on its one set, so no task set
crosses a process boundary and the sample is bit-identical to the
sequential run's. Workers return per-unit integer verdict counts and
failure ledgers; the parent merges them in task-set order, computes
the ratios from the summed integers (the same division the sequential
path performs), and is the *only* process that touches the checkpoint
file — one atomic write per completed point, regardless of worker
count. Both paths open one fresh analysis cache per unit, so the
surfaced hit/miss counters are deterministic and identical as well.

Worker-crash recovery
---------------------
A worker process dying mid-unit (OOM kill, segfaulting native solver,
injected ``worker.death``) breaks the whole ``ProcessPoolExecutor``:
every outstanding future raises ``BrokenProcessPool`` and the
remaining workers are terminated. The engine recovers instead of
aborting the sweep:

* Workers journal an **in-flight marker file** per unit (created on
  entry, removed on exit — ``os._exit`` removes nothing, which is the
  tell). After a breakage the parent reads the markers to find the
  units that were running when the pool died.
* Each implicated unit is **requeued with an incremented attempt**, and
  any unit already carrying a crash is re-run alone in a fresh
  single-worker pool — a *probe*. A pool shared by many units cannot
  name its killer (the breakage takes innocent in-flight units down
  with it); a probe crash is unambiguous.
* A unit that kills a worker **twice** is quarantined: its task set is
  regenerated in the parent and a ``WorkerCrashError`` failure is
  recorded per protocol in the point's ledger (entering the ratios per
  the :class:`FailurePolicy`; under ``RAISE`` it propagates). Innocent
  collateral units pass their probe and merge normally, so a single
  poisoned task set costs exactly its own unit, never the sweep.
* Pool respawns are bounded (a function of the unit count); an
  environment that keeps killing workers everywhere fails loudly with
  an :class:`ExperimentError` rather than looping.

Because workers are deterministic, a re-run of an innocent unit
returns bit-identical counts, so crash recovery preserves the
``jobs=1 == jobs=N`` contract — the chaos tests pin exactly that.
Deterministic fault injection for all of the above lives in
:mod:`repro.faults` (``run_experiment(..., fault_plan=...)`` /
``repro figure --inject``).
"""

from __future__ import annotations

import enum
import os
import shutil
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Mapping

from repro.analysis.cache import AnalysisCache, cache_scope
from repro.analysis.interface import AnalysisOptions
from repro.analysis.store import PersistentStore
from repro.analysis.schedulability import is_schedulable
from repro.errors import ExperimentError, ReproError, WorkerCrashError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.faults import injection as faults
from repro.faults.plan import FaultPlan
from repro.generator.taskset_gen import GenerationConfig, generate_tasksets
from repro.model.taskset import TaskSet
from repro.obs import events as obs
from repro.obs.events import EventRecorder, TraceWriter


class FailurePolicy(str, enum.Enum):
    """What a failed taskset/protocol evaluation means for the ratios.

    * ``RAISE`` — propagate the failure (the historical behaviour).
    * ``SKIP`` — drop the pair from that protocol's denominator.
    * ``COUNT_UNSCHEDULABLE`` — count the pair as unschedulable. This
      is the conservative default: a ratio can only be under-reported
      by a fault, never inflated.
    """

    RAISE = "raise"
    SKIP = "skip"
    COUNT_UNSCHEDULABLE = "count_unschedulable"


def _coerce_policy(policy: "FailurePolicy | str") -> FailurePolicy:
    try:
        return FailurePolicy(policy)
    except ValueError:
        raise ExperimentError(
            f"unknown failure policy {policy!r}; expected one of "
            f"{[p.value for p in FailurePolicy]}"
        ) from None


@dataclass(frozen=True)
class FailureRecord:
    """One captured taskset/protocol failure in a sweep's ledger.

    Attributes:
        x: Sweep-point x value the failure occurred at.
        protocol: Protocol whose evaluation failed.
        seed: The point's generation seed.
        taskset_index: Index of the task set within the point's sample.
        taskset_digest: Stable digest (:meth:`TaskSet.digest`) of the
            failing task set, for offline reproduction.
        error_type: Exception class name.
        message: Exception message.
        degradation: Deepest degradation level reached before the
            failure, when the solver reported one (``None`` otherwise).
    """

    x: float
    protocol: str
    seed: int
    taskset_index: int
    taskset_digest: str
    error_type: str
    message: str
    degradation: int | None = None


@dataclass(frozen=True)
class PointResult:
    """Schedulability ratios of all protocols at one sweep point.

    ``analysis_stats`` aggregates the per-unit analysis-cache counters
    (hits, misses, MILP/LP solves, screen hits) over the point's task
    sets; empty when the evaluation bypassed the real analysis (e.g.
    stubbed in tests or loaded from an old artifact).
    """

    x: float
    ratios: Mapping[str, float]
    sets_evaluated: int
    elapsed_seconds: float
    failures: tuple[FailureRecord, ...] = ()
    analysis_stats: Mapping[str, int] = field(default_factory=dict)

    def ratio(self, protocol: str) -> float:
        return self.ratios[protocol]


@dataclass(frozen=True)
class SweepResult:
    """A full experiment's series, one :class:`PointResult` per point.

    Points are normalised to ascending x on construction, so a result
    assembled from out-of-order completions (parallel execution,
    merged checkpoints) yields the same ``series()``/``x_values`` as a
    strictly sequential run.
    """

    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def __post_init__(self) -> None:
        pts = self.points
        if any(pts[i].x > pts[i + 1].x for i in range(len(pts) - 1)):
            object.__setattr__(
                self,
                "points",
                tuple(sorted(pts, key=lambda p: p.x)),
            )

    def series(self, protocol: str) -> list[tuple[float, float]]:
        """``(x, ratio)`` pairs of one protocol across the sweep."""
        return [(p.x, p.ratios[protocol]) for p in self.points]

    @property
    def x_values(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def failures(self) -> tuple[FailureRecord, ...]:
        """The whole sweep's failure ledger, in point order."""
        return tuple(f for p in self.points for f in p.failures)

    def advantage(self, protocol: str, over: str) -> float:
        """Largest ratio gap of ``protocol`` over ``over`` (paper-style
        "improvements up to X%" statements)."""
        if not self.points:
            raise ExperimentError(
                "advantage() on an empty sweep: no points were evaluated"
            )
        known = set(self.config.protocols)
        for name in (protocol, over):
            if name not in known:
                raise ExperimentError(
                    f"unknown protocol {name!r}; expected one of "
                    f"{sorted(known)}"
                )
        return max(
            p.ratios[protocol] - p.ratios[over] for p in self.points
        )


@dataclass(frozen=True)
class _UnitResult:
    """Verdict counts of one (point, task set) work unit.

    Pure integer deltas plus the unit's failure ledger and cache
    counters — everything the parent needs to merge units in task-set
    order into a :class:`PointResult` that is bit-identical to the
    sequential evaluation.
    """

    taskset_index: int
    counts: Mapping[str, int]
    attempted: Mapping[str, int]
    failures: tuple[FailureRecord, ...]
    cache_stats: Mapping[str, int]
    elapsed_seconds: float
    #: Buffered trace events of the unit (empty when tracing is off).
    #: Workers never write trace files — they ship their events here
    #: and the parent's TraceWriter persists them (single-writer rule).
    events: tuple[Mapping[str, object], ...] = ()


def _evaluate_unit(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    taskset_index: int,
    taskset: TaskSet,
    policy: FailurePolicy,
    options: AnalysisOptions | None,
    recorder: EventRecorder | None = None,
    death_check: "Callable[[str | None], None] | None" = None,
    store: PersistentStore | None = None,
) -> _UnitResult:
    """Evaluate every protocol on one task set, inside a fresh cache scope.

    Shared by the sequential and the parallel path, so both produce
    the same verdicts, the same failure records in the same order, and
    the same cache counters (the scope is per unit in both). With a
    ``store`` the unit's fresh memory cache is backed by the shared
    on-disk tier — the scoping stays per unit either way, which is what
    keeps the counters deterministic across engines. With a
    ``recorder`` the unit's analysis events (solves, cache traffic,
    fixpoint iterations, per-protocol verdicts) are buffered and
    returned on the unit result. ``death_check`` is the process-pool
    path's ``worker.death`` injection hook (called at unit start and
    before each protocol with the protocol name); it simulates the
    worker dying at that instant, so it exists only where a real crash
    could — sequential runs never pass one.
    """
    start = time.perf_counter()
    counts = {protocol: 0 for protocol in config.protocols}
    attempted = {protocol: 0 for protocol in config.protocols}
    failures: list[FailureRecord] = []
    scope = obs.recording(recorder) if recorder is not None else nullcontext()
    with scope, cache_scope(AnalysisCache(persistent=store)) as cache:
        if death_check is not None:
            death_check(None)
        for protocol in config.protocols:
            if death_check is not None:
                death_check(protocol)
            protocol_start = time.perf_counter()
            try:
                verdict = is_schedulable(
                    taskset,
                    protocol,
                    options=options,
                    method=config.method,
                    ls_policy=config.ls_policy,
                )
            except ReproError as exc:
                if policy is FailurePolicy.RAISE:
                    raise
                degradation = getattr(exc, "degradation", None)
                failures.append(
                    FailureRecord(
                        x=point.x,
                        protocol=protocol,
                        seed=seed,
                        taskset_index=taskset_index,
                        taskset_digest=taskset.digest(),
                        error_type=type(exc).__name__,
                        message=str(exc),
                        degradation=(
                            int(degradation) if degradation is not None else None
                        ),
                    )
                )
                obs.emit(
                    "protocol.failure",
                    dur=time.perf_counter() - protocol_start,
                    protocol=protocol,
                    error=type(exc).__name__,
                )
                if policy is FailurePolicy.COUNT_UNSCHEDULABLE:
                    attempted[protocol] += 1
                continue
            attempted[protocol] += 1
            if verdict:
                counts[protocol] += 1
            obs.emit(
                "protocol.verdict",
                dur=time.perf_counter() - protocol_start,
                protocol=protocol,
                schedulable=verdict,
            )
    return _UnitResult(
        taskset_index=taskset_index,
        counts=counts,
        attempted=attempted,
        failures=tuple(failures),
        cache_stats=cache.stats(),
        elapsed_seconds=time.perf_counter() - start,
        events=recorder.drain() if recorder is not None else (),
    )


def _merge_units(
    point: SweepPoint,
    config: ExperimentConfig,
    units: "list[_UnitResult]",
    elapsed_seconds: float,
) -> PointResult:
    """Fold unit results (any completion order) into one point result.

    Units are sorted by task-set index first, so failure ledgers and
    summed counters are independent of completion order; the ratios
    come from the summed integer counts — the exact division the
    sequential path performs.
    """
    units = sorted(units, key=lambda u: u.taskset_index)
    counts = {protocol: 0 for protocol in config.protocols}
    attempted = {protocol: 0 for protocol in config.protocols}
    stats: dict[str, int] = {}
    failures: list[FailureRecord] = []
    for unit in units:
        for protocol in config.protocols:
            counts[protocol] += unit.counts[protocol]
            attempted[protocol] += unit.attempted[protocol]
        for name, value in unit.cache_stats.items():
            stats[name] = stats.get(name, 0) + value
        failures.extend(unit.failures)
    return PointResult(
        x=point.x,
        ratios={
            p: (counts[p] / attempted[p]) if attempted[p] else 0.0
            for p in config.protocols
        },
        sets_evaluated=len(units),
        elapsed_seconds=elapsed_seconds,
        failures=tuple(failures),
        analysis_stats=stats,
    )


def run_point(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    options: AnalysisOptions | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
    writer: TraceWriter | None = None,
    point_index: int = 0,
    fault_plan: FaultPlan | None = None,
    store: PersistentStore | None = None,
) -> PointResult:
    """Evaluate every protocol on the same task sets at one point.

    A failing taskset/protocol pair never aborts the point (unless the
    policy is ``RAISE``): it is recorded in the point's failure ledger
    and enters the ratio per ``failure_policy``. With a ``writer``,
    each unit's buffered events are appended to the trace as the unit
    completes, stamped with ``point_index`` and the unit index. With a
    ``fault_plan``, each unit is evaluated under its own injection
    scope (point/unit context, fresh trigger counters) — the same
    scoping the parallel workers use, so unit-level fault budgets
    behave identically in both modes.
    """
    policy = _coerce_policy(failure_policy)
    start = time.perf_counter()
    tasksets = list(
        generate_tasksets(point.generation, config.sets_per_point, seed)
    )
    if writer is not None:
        writer.emit(
            "gen.tasksets",
            dur=time.perf_counter() - start,
            point=point_index,
            sets=len(tasksets),
        )
    units = []
    for index, taskset in enumerate(tasksets):
        unit_scope = (
            faults.injecting(
                fault_plan, point=point_index, unit=index, attempt=0
            )
            if fault_plan is not None
            else nullcontext()
        )
        with unit_scope:
            unit = _evaluate_unit(
                point,
                config,
                seed,
                index,
                taskset,
                policy,
                options,
                recorder=EventRecorder() if writer is not None else None,
                store=store,
            )
        if writer is not None:
            writer.write_events(unit.events, point=point_index, unit=index)
        units.append(unit)
    return _merge_units(
        point, config, units, time.perf_counter() - start
    )


# ----------------------------------------------------------------------
# parallel engine
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _tasksets_for(
    generation: GenerationConfig, count: int, seed: int
) -> tuple[TaskSet, ...]:
    """Per-process memo of one point's generated sample.

    Workers receive only (point index, task set index) and regenerate
    the sample from the deterministic seed — identical to the
    sequential path's — so task sets never cross process boundaries;
    the memo amortises the generation over a point's many units.
    """
    return tuple(generate_tasksets(generation, count, seed))


@lru_cache(maxsize=8)
def _store_for(path: str) -> PersistentStore:
    """Per-process memo of the shared on-disk cache tier.

    Workers receive the database *path*, never a live store (sqlite
    handles must not cross ``fork``); each process opens its own
    connection once and reuses it across all its units.
    """
    return PersistentStore(path)


def _marker_name(point_index: int, taskset_index: int, attempt: int) -> str:
    return f"{point_index}.{taskset_index}.{attempt}.inflight"


def _death_check_for(
    point_index: int, taskset_index: int
) -> "Callable[[str | None], None]":
    """Worker-side ``worker.death`` hook: simulate this process dying."""

    def death_check(protocol: "str | None") -> None:
        spec = faults.fire("worker.death", protocol=protocol)
        if spec is None:
            return
        if spec.mode == "exit":
            # A real crash: no exception, no cleanup, no marker unlink —
            # the pool breaks and the parent must piece it together.
            os._exit(78)
        raise RuntimeError(
            f"injected unexpected worker error "
            f"(point {point_index}, set {taskset_index})"
        )

    return death_check


def _worker_evaluate(
    config: ExperimentConfig,
    point_index: int,
    taskset_index: int,
    options: AnalysisOptions | None,
    policy_value: str,
    trace: bool = False,
    fault_plan: FaultPlan | None = None,
    attempt: int = 0,
    markers_dir: "str | None" = None,
    cache_path: "str | None" = None,
) -> "tuple[int, _UnitResult]":
    """Process-pool entry point: evaluate one (point, task set) unit.

    With ``markers_dir`` set the worker journals an in-flight marker
    file for the unit — created before any work, removed on the way
    out (normal return *and* exception; only a process death skips the
    ``finally``) — which is how the parent attributes a broken pool to
    the units that were actually running. With a ``fault_plan`` the
    evaluation runs under a fresh per-unit injection scope carrying
    the (point, unit, attempt) context.
    """
    marker: Path | None = None
    if markers_dir is not None:
        marker = Path(markers_dir) / _marker_name(
            point_index, taskset_index, attempt
        )
        marker.write_text(str(os.getpid()))
    try:
        point = config.points[point_index]
        seed = config.seed + point_index
        recorder = EventRecorder() if trace else None
        unit_scope = (
            faults.injecting(
                fault_plan,
                point=point_index,
                unit=taskset_index,
                attempt=attempt,
            )
            if fault_plan is not None
            else nullcontext()
        )
        with unit_scope:
            if recorder is not None:
                recorder.emit("worker.unit", pid=os.getpid())
                with recorder.span("gen.tasksets", sets=config.sets_per_point):
                    taskset = _tasksets_for(
                        point.generation, config.sets_per_point, seed
                    )[taskset_index]
            else:
                taskset = _tasksets_for(
                    point.generation, config.sets_per_point, seed
                )[taskset_index]
            unit = _evaluate_unit(
                point,
                config,
                seed,
                taskset_index,
                taskset,
                FailurePolicy(policy_value),
                options,
                recorder=recorder,
                death_check=(
                    _death_check_for(point_index, taskset_index)
                    if fault_plan is not None
                    else None
                ),
                store=(
                    _store_for(cache_path) if cache_path is not None else None
                ),
            )
        return point_index, unit
    finally:
        if marker is not None:
            try:
                marker.unlink()
            except OSError:
                pass


#: Crashes a single unit may cause before it is quarantined.
_CRASH_QUARANTINE_AT = 2


def _save_checkpoint_traced(
    checkpoint_path: str,
    config: ExperimentConfig,
    completed: "dict[int, PointResult]",
    point_index: int,
    writer: TraceWriter | None,
) -> None:
    """One atomic checkpoint save, with its obs events on the trace.

    The persistence layer emits through the module-level recorder
    (retry attempts, injected torn writes); the parent normally has no
    recorder installed, so one is scoped around the save and flushed
    to the trace writer in a ``finally`` — fault events must reach the
    trace even when the injected fault escalates to a simulated crash.
    """
    from repro.experiments.persistence import save_checkpoint

    if writer is None:
        save_checkpoint(checkpoint_path, config, completed, point=point_index)
        return
    recorder = EventRecorder()
    try:
        with obs.recording(recorder):
            save_checkpoint(
                checkpoint_path, config, completed, point=point_index
            )
    finally:
        writer.write_events(recorder.drain(), point=point_index)
    writer.emit("checkpoint.saved", point=point_index)


def _failed_unit(
    config: ExperimentConfig,
    point_index: int,
    taskset_index: int,
    policy: FailurePolicy,
    error_type: str,
    message: str,
) -> _UnitResult:
    """Synthetic unit result for work no worker could complete.

    Used for quarantined pool-killer units and for units whose worker
    kept raising unexpected (non-Repro) exceptions: the parent
    regenerates the task set — generation is deterministic and cheap
    next to analysis — so the ledger still carries the digest needed
    to reproduce the failure offline, and every protocol records one
    :class:`FailureRecord` entering the ratios per the policy.
    """
    point = config.points[point_index]
    seed = config.seed + point_index
    taskset = _tasksets_for(point.generation, config.sets_per_point, seed)[
        taskset_index
    ]
    count_it = policy is FailurePolicy.COUNT_UNSCHEDULABLE
    return _UnitResult(
        taskset_index=taskset_index,
        counts={protocol: 0 for protocol in config.protocols},
        attempted={
            protocol: 1 if count_it else 0 for protocol in config.protocols
        },
        failures=tuple(
            FailureRecord(
                x=point.x,
                protocol=protocol,
                seed=seed,
                taskset_index=taskset_index,
                taskset_digest=taskset.digest(),
                error_type=error_type,
                message=message,
            )
            for protocol in config.protocols
        ),
        cache_stats={},
        elapsed_seconds=0.0,
    )


def _run_experiment_parallel(
    config: ExperimentConfig,
    options: AnalysisOptions | None,
    progress: Callable[[PointResult], None] | None,
    policy: FailurePolicy,
    checkpoint_path: "str | None",
    completed: "dict[int, PointResult]",
    jobs: int,
    writer: TraceWriter | None = None,
    fault_plan: FaultPlan | None = None,
    cache_path: "str | None" = None,
) -> SweepResult:
    """Fan (point, task set) units over a process pool and merge.

    The parent is the only writer of the checkpoint file: it collects
    unit results as they complete and performs exactly one atomic
    ``save_checkpoint`` when a point's last unit arrives, so a crash
    can lose at most the in-flight points — never corrupt the file.
    The same discipline covers the trace: workers ship buffered events
    on their unit results and the parent appends them when a point
    completes, in task-set order, so the aggregate trace content
    matches the sequential run's.

    Worker crashes do not abort the sweep: broken pools are respawned
    and the implicated units are requeued, probed in isolation, and
    quarantined into the failure ledger when they keep killing workers
    (see the module docstring for the full protocol).
    """
    point_started = {
        index: time.perf_counter()
        for index in range(len(config.points))
        if index not in completed
    }
    unit_results: dict[int, dict[int, _UnitResult]] = {
        index: {} for index in point_started
    }
    # Unit key -> next attempt number; removed on success/quarantine.
    pending: dict[tuple[int, int], int] = {
        (point_index, taskset_index): 0
        for point_index in sorted(point_started)
        for taskset_index in range(config.sets_per_point)
    }
    crash_counts: dict[tuple[int, int], int] = {}
    respawn_budget = 4 + 2 * len(pending)
    respawns = 0

    def emit(name: str, **kwargs: object) -> None:
        if writer is not None:
            writer.emit(name, **kwargs)  # type: ignore[arg-type]

    def emit_synthesized_death(key: "tuple[int, int]", attempt: int) -> None:
        # The worker's own buffered fault.worker.death event died with
        # the process; re-derive it from the plan's static predicates
        # so the trace still proves the injection. (A real, un-injected
        # crash has no matching spec and emits nothing here.)
        if writer is None or fault_plan is None:
            return
        spec = fault_plan.matching(
            "worker.death", point=key[0], unit=key[1], attempt=attempt
        )
        if spec is not None:
            writer.emit(
                "fault.worker.death",
                point=key[0],
                unit=key[1],
                mode=spec.mode,
                plan=fault_plan.name,
                synthesized=True,
            )

    def record_unit(point_index: int, unit: _UnitResult) -> None:
        key = (point_index, unit.taskset_index)
        if key not in pending:
            return  # duplicate of a unit already satisfied
        del pending[key]
        bucket = unit_results[point_index]
        bucket[unit.taskset_index] = unit
        if len(bucket) < config.sets_per_point:
            return
        result = _merge_units(
            config.points[point_index],
            config,
            list(bucket.values()),
            time.perf_counter() - point_started[point_index],
        )
        completed[point_index] = result
        if writer is not None:
            for index in sorted(bucket):
                writer.write_events(
                    bucket[index].events, point=point_index, unit=index
                )
            writer.emit(
                "point.end",
                dur=result.elapsed_seconds,
                point=point_index,
                x=result.x,
                failures=len(result.failures),
            )
        if checkpoint_path is not None:
            _save_checkpoint_traced(
                checkpoint_path, config, completed, point_index, writer
            )
        if progress is not None:
            progress(result)

    def record_crash(
        key: "tuple[int, int]", attempt: int, error_type: str, message: str
    ) -> None:
        """Count one crash/unexpected failure of a pending unit and
        either requeue it (attempt + 1) or give up on it."""
        crash_counts[key] = crash_counts.get(key, 0) + 1
        emit_synthesized_death(key, attempt)
        if crash_counts[key] < _CRASH_QUARANTINE_AT:
            pending[key] = attempt + 1
            emit(
                "worker.requeued",
                point=key[0],
                unit=key[1],
                attempt=attempt + 1,
                error=error_type,
            )
            return
        if policy is FailurePolicy.RAISE:
            raise WorkerCrashError(
                f"work unit (point {key[0]}, set {key[1]}) failed "
                f"{crash_counts[key]} worker processes "
                f"({error_type}: {message}); quarantined"
            )
        emit(
            "worker.quarantined",
            point=key[0],
            unit=key[1],
            crashes=crash_counts[key],
            error=error_type,
        )
        record_unit(
            key[0],
            _failed_unit(config, key[0], key[1], policy, error_type, message),
        )

    def handle_breakage(markers_root: str) -> None:
        """Attribute a broken pool to its in-flight units via markers."""
        suspects: list[tuple[tuple[int, int], int]] = []
        for name in os.listdir(markers_root):
            if not name.endswith(".inflight"):
                continue
            os.unlink(os.path.join(markers_root, name))
            point_str, unit_str, attempt_str = name[: -len(".inflight")].split(
                "."
            )
            suspects.append(
                ((int(point_str), int(unit_str)), int(attempt_str))
            )
        emit("worker.pool_broken", suspects=len(suspects))
        for key, attempt in sorted(suspects):
            if key not in pending:
                continue  # its result landed before the pool died
            emit(
                "worker.crash",
                point=key[0],
                unit=key[1],
                attempt=attempt,
                crashes=crash_counts.get(key, 0) + 1,
            )
            record_crash(
                key,
                attempt,
                "WorkerCrashError",
                "worker process died while evaluating this task set",
            )
        # No markers (a worker died between units, or the filesystem
        # ate them): nothing to attribute — the respawn budget alone
        # bounds how often this may repeat.

    markers_root = tempfile.mkdtemp(prefix="repro-inflight-")
    try:
        while pending:
            # Any unit already implicated in a crash is probed alone in
            # a single-worker pool: if that pool breaks too, the culprit
            # is unambiguous; innocent collateral units pass the probe.
            suspect_keys = sorted(
                key for key in pending if crash_counts.get(key, 0) > 0
            )
            if suspect_keys:
                batch = [suspect_keys[0]]
                workers = 1
            else:
                batch = sorted(pending)
                workers = min(jobs, len(batch))
            batch_attempts = {key: pending[key] for key in batch}
            broke = False
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                futures = {
                    pool.submit(
                        _worker_evaluate,
                        config,
                        key[0],
                        key[1],
                        options,
                        policy.value,
                        writer is not None,
                        fault_plan,
                        attempt,
                        markers_root,
                        cache_path,
                    ): (key, attempt)
                    for key, attempt in batch_attempts.items()
                }
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        key, attempt = futures.pop(future)
                        try:
                            point_index, unit = future.result()
                        except (KeyboardInterrupt, SystemExit):
                            # Never swallowed: the user asked to stop.
                            raise
                        except BrokenExecutor:
                            # The pool is dead; every remaining future
                            # fails the same way. Drain them (their
                            # units stay pending) and let the marker
                            # protocol attribute the crash.
                            broke = True
                        except ReproError:
                            # A worker propagated a structured failure
                            # (RAISE policy, config errors): the sweep
                            # is meant to abort.
                            raise
                        except Exception as exc:
                            # An unexpected exception escaped a worker.
                            # Under RAISE it propagates; otherwise it is
                            # ledgered — never silently dropped.
                            if policy is FailurePolicy.RAISE:
                                raise
                            record_crash(
                                key, attempt, type(exc).__name__, str(exc)
                            )
                        else:
                            record_unit(point_index, unit)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            if broke:
                respawns += 1
                if respawns > respawn_budget:
                    raise ExperimentError(
                        f"parallel sweep aborted: worker pools kept "
                        f"breaking ({respawns} respawns for "
                        f"{len(crash_counts)} implicated units) — the "
                        f"environment is killing workers faster than "
                        f"quarantine can isolate them"
                    )
                handle_breakage(markers_root)
    finally:
        shutil.rmtree(markers_root, ignore_errors=True)
    return SweepResult(
        config=config,
        points=tuple(
            completed[index] for index in range(len(config.points))
        ),
    )


def run_experiment(
    config: ExperimentConfig,
    options: AnalysisOptions | None = None,
    progress: Callable[[PointResult], None] | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
    checkpoint_path: "str | None" = None,
    resume: bool = False,
    jobs: int = 1,
    trace_path: "str | None" = None,
    fault_plan: FaultPlan | None = None,
    cache_path: "str | None" = None,
) -> SweepResult:
    """Run a full sweep (all points, all protocols, shared task sets).

    Args:
        config: The experiment definition.
        options: Analysis options (e.g. per-MILP time limits).
        progress: Optional callback invoked after each point, for
            long-running CLI feedback. Under ``jobs > 1`` points are
            reported in completion order (the returned sweep is always
            in point order).
        failure_policy: How failed taskset/protocol pairs enter the
            ratios (see :class:`FailurePolicy`).
        checkpoint_path: When set, each completed point is persisted
            there atomically and durably (JSON keyed by a config
            digest, per-point content digests, fsync'd temp-and-rename
            writes); only the parent process ever writes it. Stale
            ``*.tmp`` leftovers of a crashed prior run are cleaned up
            on startup.
        resume: Reload ``checkpoint_path`` and skip the points it
            already holds; point ``i`` always uses ``config.seed + i``,
            so a resumed sweep is bit-identical to an uninterrupted
            one. The load is tolerant: points that fail their content
            digest (torn by a crash, bit rot) are dropped — and hence
            re-solved — instead of aborting the resume; each recovery
            is surfaced as a ``checkpoint.recovered`` trace event.
        jobs: Worker processes. ``1`` (the default) runs in-process;
            ``N > 1`` fans (point, task set) units over a process pool
            with bit-identical results (see the module docstring),
            including across worker crashes.
        trace_path: When set, a structured JSONL event trace of the
            run is written there (see :mod:`repro.obs`). The run id
            stamped on every event is the config digest, so a trace is
            attributable to its checkpoint. Points skipped via
            ``resume`` emit nothing.
        fault_plan: When set, the run executes under deterministic
            fault injection (see :mod:`repro.faults`): a run-level
            scope in the parent covers checkpoint/trace/filesystem
            sites, and every work unit — worker-side or sequential —
            gets its own (point, unit, attempt)-scoped activation.
        cache_path: When set, every unit's analysis cache is backed by
            the persistent sqlite store at this path (see
            :mod:`repro.analysis.store`), shared across runs, points,
            and worker processes. Verdicts and ratios are bit-identical
            with the store enabled, disabled, or pre-populated — the
            store only changes which tier answers a lookup — and the
            ``persistent.*`` counters in ``analysis_stats`` surface how
            much work it saved.
    """
    policy = _coerce_policy(failure_policy)
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    plan_scope = (
        faults.injecting(fault_plan) if fault_plan is not None else nullcontext()
    )
    with plan_scope:
        completed: dict[int, PointResult] = {}
        recovered: list[str] = []
        if checkpoint_path is not None:
            from repro.experiments.persistence import cleanup_stale_tmp

            cleanup_stale_tmp(checkpoint_path)
        if checkpoint_path is not None and resume:
            from repro.experiments.persistence import (
                load_checkpoint_recovering,
            )

            completed, recovered = load_checkpoint_recovering(
                checkpoint_path, config
            )
        writer: TraceWriter | None = None
        if trace_path is not None:
            from repro.experiments.persistence import config_digest

            writer = TraceWriter(trace_path, run_id=config_digest(config)[:12])
        try:
            if writer is not None:
                writer.emit(
                    "run.start",
                    points=len(config.points),
                    sets=config.sets_per_point,
                    jobs=jobs,
                    resumed=len(completed),
                )
                for problem in recovered:
                    writer.emit("checkpoint.recovered", detail=problem)
            run_start = time.perf_counter()
            if jobs > 1:
                result = _run_experiment_parallel(
                    config,
                    options,
                    progress,
                    policy,
                    checkpoint_path,
                    completed,
                    jobs,
                    writer=writer,
                    fault_plan=fault_plan,
                    cache_path=cache_path,
                )
                if writer is not None:
                    writer.emit(
                        "run.end", dur=time.perf_counter() - run_start
                    )
                return result
            store = (
                PersistentStore(cache_path) if cache_path is not None else None
            )
            results = []
            for index, point in enumerate(config.points):
                if index in completed:
                    result_point = completed[index]
                else:
                    result_point = run_point(
                        point,
                        config,
                        seed=config.seed + index,
                        options=options,
                        failure_policy=policy,
                        writer=writer,
                        point_index=index,
                        fault_plan=fault_plan,
                        store=store,
                    )
                    completed[index] = result_point
                    if writer is not None:
                        writer.emit(
                            "point.end",
                            dur=result_point.elapsed_seconds,
                            point=index,
                            x=result_point.x,
                            failures=len(result_point.failures),
                        )
                    if checkpoint_path is not None:
                        _save_checkpoint_traced(
                            checkpoint_path, config, completed, index, writer
                        )
                if progress is not None:
                    progress(result_point)
                results.append(result_point)
            if writer is not None:
                writer.emit("run.end", dur=time.perf_counter() - run_start)
            return SweepResult(config=config, points=tuple(results))
        finally:
            if writer is not None:
                writer.close()


def compare_on_taskset(
    taskset: TaskSet,
    protocols: tuple[str, ...] = ("nps", "wasly", "proposed"),
    options: AnalysisOptions | None = None,
    method: str = "milp",
) -> dict[str, bool]:
    """Verdicts of several protocols on one concrete task set.

    All protocols share one analysis-cache scope: fixpoint solves
    whose inputs coincide across protocols are paid for once.
    """
    with cache_scope(AnalysisCache()):
        return {
            protocol: is_schedulable(
                taskset, protocol, options=options, method=method
            )
            for protocol in protocols
        }
