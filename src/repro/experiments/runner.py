"""Sweep runner: schedulability ratios per protocol per point.

Long sweeps are thousands of MILP solves; this runner isolates faults
per taskset/protocol pair instead of letting one bad solve abort the
sweep. Each failure is captured as a structured :class:`FailureRecord`
in a ledger on the point result, and a :class:`FailurePolicy` decides
how the failed pair enters the ratios. With ``checkpoint_path`` set,
every completed point is persisted atomically so an interrupted sweep
resumes from where it stopped (see
:mod:`repro.experiments.persistence`).

The unit layer (result dataclasses, the single per-unit evaluation
function, the completion-order-independent merge, and the
dispatch-agnostic :class:`~repro.experiments.units.UnitScheduler`)
lives in :mod:`repro.experiments.units`; this module re-exports the
public names and owns the two local dispatch engines — sequential and
``ProcessPoolExecutor`` — while :mod:`repro.service` drives the same
scheduler over a socket-connected worker fleet.

Parallel execution
------------------
``run_experiment(..., jobs=N)`` fans the sweep out over a
``ProcessPoolExecutor``. The unit of work is one **(point, task set)**
pair — each worker regenerates the point's task-set sample from the
deterministic seed ``config.seed + point_index`` (memoised per
process) and evaluates every protocol on its one set, so no task set
crosses a process boundary and the sample is bit-identical to the
sequential run's. Workers return per-unit integer verdict counts and
failure ledgers; the parent merges them in task-set order, computes
the ratios from the summed integers (the same division the sequential
path performs), and is the *only* process that touches the checkpoint
file — one atomic write per completed point, regardless of worker
count. Both paths open one fresh analysis cache per unit, so the
surfaced hit/miss counters are deterministic and identical as well.

Worker-crash recovery
---------------------
A worker process dying mid-unit (OOM kill, segfaulting native solver,
injected ``worker.death``) breaks the whole ``ProcessPoolExecutor``:
every outstanding future raises ``BrokenProcessPool`` and the
remaining workers are terminated. The engine recovers instead of
aborting the sweep:

* Workers journal an **in-flight marker file** per unit (created on
  entry, removed on exit — ``os._exit`` removes nothing, which is the
  tell). After a breakage the parent reads the markers to find the
  units that were running when the pool died.
* Each implicated unit is **requeued with an incremented attempt**, and
  any unit already carrying a crash is re-run alone in a fresh
  single-worker pool — a *probe*. A pool shared by many units cannot
  name its killer (the breakage takes innocent in-flight units down
  with it); a probe crash is unambiguous.
* A unit that kills a worker **twice** is quarantined: its task set is
  regenerated in the parent and a ``WorkerCrashError`` failure is
  recorded per protocol in the point's ledger (entering the ratios per
  the :class:`FailurePolicy`; under ``RAISE`` it propagates). Innocent
  collateral units pass their probe and merge normally, so a single
  poisoned task set costs exactly its own unit, never the sweep.
* Pool respawns are bounded (a function of the unit count); an
  environment that keeps killing workers everywhere fails loudly with
  an :class:`ExperimentError` rather than looping.
* Marker directories orphaned by a **crashed parent** are reaped on
  the next startup: each run stamps its PID into the directory's
  ``.owner`` file, and :func:`run_experiment` removes any
  ``repro-inflight-*`` directory whose owner process no longer exists
  (surfaced as a ``worker.markers_swept`` trace event) — the same
  self-healing persistence applies to stale ``*.tmp`` checkpoints.

Because workers are deterministic, a re-run of an innocent unit
returns bit-identical counts, so crash recovery preserves the
``jobs=1 == jobs=N`` contract — the chaos tests pin exactly that.
Deterministic fault injection for all of the above lives in
:mod:`repro.faults` (``run_experiment(..., fault_plan=...)`` /
``repro figure --inject``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import nullcontext
from pathlib import Path
from typing import Callable

from repro.analysis.cache import AnalysisCache, cache_scope
from repro.analysis.interface import AnalysisOptions
from repro.analysis.schedulability import is_schedulable
from repro.analysis.store import PersistentStore
from repro.errors import ExperimentError, ReproError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.experiments.units import (
    _CRASH_QUARANTINE_AT as _CRASH_QUARANTINE_AT,
)
from repro.experiments.units import (
    FailurePolicy,
    UnitScheduler,
    _coerce_policy,
    _evaluate_unit,
    _merge_units,
    _save_checkpoint_traced,
    _store_for,
    _tasksets_for,
    _UnitResult,
    PointResult,
    SweepResult,
)
from repro.experiments.units import FailureRecord as FailureRecord
from repro.experiments.units import _failed_unit as _failed_unit
from repro.faults import injection as faults
from repro.faults.plan import FaultPlan
from repro.generator.taskset_gen import generate_tasksets
from repro.model.taskset import TaskSet
from repro.obs.events import EventRecorder, TraceWriter


def run_point(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    options: AnalysisOptions | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
    writer: TraceWriter | None = None,
    point_index: int = 0,
    fault_plan: FaultPlan | None = None,
    store: PersistentStore | None = None,
) -> PointResult:
    """Evaluate every protocol on the same task sets at one point.

    A failing taskset/protocol pair never aborts the point (unless the
    policy is ``RAISE``): it is recorded in the point's failure ledger
    and enters the ratio per ``failure_policy``. With a ``writer``,
    each unit's buffered events are appended to the trace as the unit
    completes, stamped with ``point_index`` and the unit index. With a
    ``fault_plan``, each unit is evaluated under its own injection
    scope (point/unit context, fresh trigger counters) — the same
    scoping the parallel workers use, so unit-level fault budgets
    behave identically in both modes.
    """
    policy = _coerce_policy(failure_policy)
    start = time.perf_counter()
    tasksets = list(
        generate_tasksets(point.generation, config.sets_per_point, seed)
    )
    if writer is not None:
        writer.emit(
            "gen.tasksets",
            dur=time.perf_counter() - start,
            point=point_index,
            sets=len(tasksets),
        )
    units = []
    for index, taskset in enumerate(tasksets):
        unit_scope = (
            faults.injecting(
                fault_plan, point=point_index, unit=index, attempt=0
            )
            if fault_plan is not None
            else nullcontext()
        )
        with unit_scope:
            unit = _evaluate_unit(
                point,
                config,
                seed,
                index,
                taskset,
                policy,
                options,
                recorder=EventRecorder() if writer is not None else None,
                store=store,
            )
        if writer is not None:
            writer.write_events(unit.events, point=point_index, unit=index)
        units.append(unit)
    return _merge_units(
        point, config, units, time.perf_counter() - start
    )


# ----------------------------------------------------------------------
# parallel engine
# ----------------------------------------------------------------------
def _marker_name(point_index: int, taskset_index: int, attempt: int) -> str:
    return f"{point_index}.{taskset_index}.{attempt}.inflight"


def _owner_alive(pid: int) -> bool:
    """Whether the process that stamped an ``.owner`` file still runs."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: some process holds the pid — treat the
        # directory as owned rather than reap a live run's markers.
        return True
    return True


def sweep_stale_marker_dirs(writer: TraceWriter | None = None) -> int:
    """Reap inflight-marker directories orphaned by a crashed parent.

    A parent that dies between ``mkdtemp`` and its ``finally`` leaves
    the whole ``repro-inflight-*`` directory behind. Each run stamps
    its PID into the directory's ``.owner`` file at creation, so the
    next startup can distinguish an orphan (owner PID no longer exists)
    from a concurrently running sweep (owner alive) without consulting
    wall-clock age — the same liveness test either way the markers
    themselves rely on. Returns the number of directories removed and
    surfaces a ``worker.markers_swept`` trace event when any were.
    """
    root = tempfile.gettempdir()
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    swept = 0
    for name in sorted(names):
        if not name.startswith("repro-inflight-"):
            continue
        path = os.path.join(root, name)
        try:
            pid = int(
                Path(path, ".owner").read_text(encoding="utf-8").strip()
            )
        except (OSError, ValueError):
            # No readable owner stamp: either a sweep mid-creation or a
            # foreign directory — never reap what we cannot attribute.
            continue
        if pid == os.getpid() or _owner_alive(pid):
            continue
        shutil.rmtree(path, ignore_errors=True)
        swept += 1
    if swept and writer is not None:
        writer.emit("worker.markers_swept", dirs=swept)
    return swept


def _make_markers_root() -> str:
    """Create this run's inflight-marker directory, PID-stamped."""
    markers_root = tempfile.mkdtemp(prefix="repro-inflight-")
    Path(markers_root, ".owner").write_text(
        str(os.getpid()), encoding="utf-8"
    )
    return markers_root


def _death_check_for(
    point_index: int, taskset_index: int
) -> "Callable[[str | None], None]":
    """Worker-side ``worker.death`` hook: simulate this process dying."""

    def death_check(protocol: "str | None") -> None:
        spec = faults.fire("worker.death", protocol=protocol)
        if spec is None:
            return
        if spec.mode == "exit":
            # A real crash: no exception, no cleanup, no marker unlink —
            # the pool breaks and the parent must piece it together.
            os._exit(78)
        raise RuntimeError(
            f"injected unexpected worker error "
            f"(point {point_index}, set {taskset_index})"
        )

    return death_check


def _worker_evaluate(
    config: ExperimentConfig,
    point_index: int,
    taskset_index: int,
    options: AnalysisOptions | None,
    policy_value: str,
    trace: bool = False,
    fault_plan: FaultPlan | None = None,
    attempt: int = 0,
    markers_dir: "str | None" = None,
    cache_path: "str | None" = None,
) -> "tuple[int, _UnitResult]":
    """Process-pool entry point: evaluate one (point, task set) unit.

    With ``markers_dir`` set the worker journals an in-flight marker
    file for the unit — created before any work, removed on the way
    out (normal return *and* exception; only a process death skips the
    ``finally``) — which is how the parent attributes a broken pool to
    the units that were actually running. With a ``fault_plan`` the
    evaluation runs under a fresh per-unit injection scope carrying
    the (point, unit, attempt) context.
    """
    marker: Path | None = None
    if markers_dir is not None:
        marker = Path(markers_dir) / _marker_name(
            point_index, taskset_index, attempt
        )
        marker.write_text(str(os.getpid()))
    try:
        point = config.points[point_index]
        seed = config.seed + point_index
        recorder = EventRecorder() if trace else None
        unit_scope = (
            faults.injecting(
                fault_plan,
                point=point_index,
                unit=taskset_index,
                attempt=attempt,
            )
            if fault_plan is not None
            else nullcontext()
        )
        with unit_scope:
            if recorder is not None:
                recorder.emit("worker.unit", pid=os.getpid())
                with recorder.span("gen.tasksets", sets=config.sets_per_point):
                    taskset = _tasksets_for(
                        point.generation, config.sets_per_point, seed
                    )[taskset_index]
            else:
                taskset = _tasksets_for(
                    point.generation, config.sets_per_point, seed
                )[taskset_index]
            unit = _evaluate_unit(
                point,
                config,
                seed,
                taskset_index,
                taskset,
                FailurePolicy(policy_value),
                options,
                recorder=recorder,
                death_check=(
                    _death_check_for(point_index, taskset_index)
                    if fault_plan is not None
                    else None
                ),
                store=(
                    _store_for(cache_path) if cache_path is not None else None
                ),
            )
        return point_index, unit
    finally:
        if marker is not None:
            try:
                marker.unlink()
            except OSError:
                pass


def _run_experiment_parallel(
    config: ExperimentConfig,
    options: AnalysisOptions | None,
    progress: Callable[[PointResult], None] | None,
    policy: FailurePolicy,
    checkpoint_path: "str | None",
    completed: "dict[int, PointResult]",
    jobs: int,
    writer: TraceWriter | None = None,
    fault_plan: FaultPlan | None = None,
    cache_path: "str | None" = None,
) -> SweepResult:
    """Fan (point, task set) units over a process pool and merge.

    The bookkeeping half — pending ledger, crash counting, requeue /
    probe / quarantine decisions, point completion with its single
    atomic checkpoint write — lives in the dispatch-agnostic
    :class:`UnitScheduler`; this function owns only what is specific
    to the process-pool transport: submitting pending units, draining
    futures, and attributing broken pools to their in-flight units via
    the on-disk marker protocol.
    """
    scheduler = UnitScheduler(
        config,
        policy,
        completed,
        checkpoint_path=checkpoint_path,
        writer=writer,
        fault_plan=fault_plan,
        progress=progress,
    )
    respawn_budget = 4 + 2 * len(scheduler.pending)
    respawns = 0

    def emit(name: str, **kwargs: object) -> None:
        if writer is not None:
            writer.emit(name, **kwargs)  # type: ignore[arg-type]

    def handle_breakage(markers_root: str) -> None:
        """Attribute a broken pool to its in-flight units via markers."""
        suspects: list[tuple[tuple[int, int], int]] = []
        for name in os.listdir(markers_root):
            if not name.endswith(".inflight"):
                continue
            os.unlink(os.path.join(markers_root, name))
            point_str, unit_str, attempt_str = name[: -len(".inflight")].split(
                "."
            )
            suspects.append(
                ((int(point_str), int(unit_str)), int(attempt_str))
            )
        emit("worker.pool_broken", suspects=len(suspects))
        for key, attempt in sorted(suspects):
            if key not in scheduler.pending:
                continue  # its result landed before the pool died
            emit(
                "worker.crash",
                point=key[0],
                unit=key[1],
                attempt=attempt,
                crashes=scheduler.crash_counts.get(key, 0) + 1,
            )
            scheduler.record_crash(
                key,
                attempt,
                "WorkerCrashError",
                "worker process died while evaluating this task set",
            )
        # No markers (a worker died between units, or the filesystem
        # ate them): nothing to attribute — the respawn budget alone
        # bounds how often this may repeat.

    markers_root = _make_markers_root()
    try:
        while scheduler.pending:
            # Any unit already implicated in a crash is probed alone in
            # a single-worker pool: if that pool breaks too, the culprit
            # is unambiguous; innocent collateral units pass the probe.
            suspect_keys = scheduler.suspects()
            if suspect_keys:
                batch = [suspect_keys[0]]
                workers = 1
            else:
                batch = sorted(scheduler.pending)
                workers = min(jobs, len(batch))
            batch_attempts = {key: scheduler.pending[key] for key in batch}
            broke = False
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                futures = {
                    pool.submit(
                        _worker_evaluate,
                        config,
                        key[0],
                        key[1],
                        options,
                        policy.value,
                        writer is not None,
                        fault_plan,
                        attempt,
                        markers_root,
                        cache_path,
                    ): (key, attempt)
                    for key, attempt in batch_attempts.items()
                }
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        key, attempt = futures.pop(future)
                        try:
                            point_index, unit = future.result()
                        except (KeyboardInterrupt, SystemExit):
                            # Never swallowed: the user asked to stop.
                            raise
                        except BrokenExecutor:
                            # The pool is dead; every remaining future
                            # fails the same way. Drain them (their
                            # units stay pending) and let the marker
                            # protocol attribute the crash.
                            broke = True
                        except ReproError:
                            # A worker propagated a structured failure
                            # (RAISE policy, config errors): the sweep
                            # is meant to abort.
                            raise
                        except Exception as exc:
                            # An unexpected exception escaped a worker.
                            # Under RAISE it propagates; otherwise it is
                            # ledgered — never silently dropped.
                            if policy is FailurePolicy.RAISE:
                                raise
                            scheduler.record_crash(
                                key, attempt, type(exc).__name__, str(exc)
                            )
                        else:
                            scheduler.record_unit(point_index, unit)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            if broke:
                respawns += 1
                if respawns > respawn_budget:
                    raise ExperimentError(
                        f"parallel sweep aborted: worker pools kept "
                        f"breaking ({respawns} respawns for "
                        f"{len(scheduler.crash_counts)} implicated units) "
                        f"— the environment is killing workers faster "
                        f"than quarantine can isolate them"
                    )
                handle_breakage(markers_root)
    finally:
        shutil.rmtree(markers_root, ignore_errors=True)
    return scheduler.result()


def run_experiment(
    config: ExperimentConfig,
    options: AnalysisOptions | None = None,
    progress: Callable[[PointResult], None] | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
    checkpoint_path: "str | None" = None,
    resume: bool = False,
    jobs: int = 1,
    trace_path: "str | None" = None,
    fault_plan: FaultPlan | None = None,
    cache_path: "str | None" = None,
) -> SweepResult:
    """Run a full sweep (all points, all protocols, shared task sets).

    Args:
        config: The experiment definition.
        options: Analysis options (e.g. per-MILP time limits).
        progress: Optional callback invoked after each point, for
            long-running CLI feedback. Under ``jobs > 1`` points are
            reported in completion order (the returned sweep is always
            in point order).
        failure_policy: How failed taskset/protocol pairs enter the
            ratios (see :class:`FailurePolicy`).
        checkpoint_path: When set, each completed point is persisted
            there atomically and durably (JSON keyed by a config
            digest, per-point content digests, fsync'd temp-and-rename
            writes); only the parent process ever writes it. Stale
            ``*.tmp`` leftovers of a crashed prior run are cleaned up
            on startup.
        resume: Reload ``checkpoint_path`` and skip the points it
            already holds; point ``i`` always uses ``config.seed + i``,
            so a resumed sweep is bit-identical to an uninterrupted
            one. The load is tolerant: points that fail their content
            digest (torn by a crash, bit rot) are dropped — and hence
            re-solved — instead of aborting the resume; each recovery
            is surfaced as a ``checkpoint.recovered`` trace event.
        jobs: Worker processes. ``1`` (the default) runs in-process;
            ``N > 1`` fans (point, task set) units over a process pool
            with bit-identical results (see the module docstring),
            including across worker crashes.
        trace_path: When set, a structured JSONL event trace of the
            run is written there (see :mod:`repro.obs`). The run id
            stamped on every event is the config digest, so a trace is
            attributable to its checkpoint. Points skipped via
            ``resume`` emit nothing.
        fault_plan: When set, the run executes under deterministic
            fault injection (see :mod:`repro.faults`): a run-level
            scope in the parent covers checkpoint/trace/filesystem
            sites, and every work unit — worker-side or sequential —
            gets its own (point, unit, attempt)-scoped activation.
        cache_path: When set, every unit's analysis cache is backed by
            the persistent sqlite store at this path (see
            :mod:`repro.analysis.store`), shared across runs, points,
            and worker processes. Verdicts and ratios are bit-identical
            with the store enabled, disabled, or pre-populated — the
            store only changes which tier answers a lookup — and the
            ``persistent.*`` counters in ``analysis_stats`` surface how
            much work it saved.
    """
    policy = _coerce_policy(failure_policy)
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    plan_scope = (
        faults.injecting(fault_plan) if fault_plan is not None else nullcontext()
    )
    with plan_scope:
        completed: dict[int, PointResult] = {}
        recovered: list[str] = []
        if checkpoint_path is not None:
            from repro.experiments.persistence import cleanup_stale_tmp

            cleanup_stale_tmp(checkpoint_path)
        if checkpoint_path is not None and resume:
            from repro.experiments.persistence import (
                load_checkpoint_recovering,
            )

            completed, recovered = load_checkpoint_recovering(
                checkpoint_path, config
            )
        writer: TraceWriter | None = None
        if trace_path is not None:
            from repro.experiments.persistence import config_digest

            writer = TraceWriter(trace_path, run_id=config_digest(config)[:12])
        try:
            if writer is not None:
                writer.emit(
                    "run.start",
                    points=len(config.points),
                    sets=config.sets_per_point,
                    jobs=jobs,
                    resumed=len(completed),
                )
                for problem in recovered:
                    writer.emit("checkpoint.recovered", detail=problem)
            sweep_stale_marker_dirs(writer)
            run_start = time.perf_counter()
            if jobs > 1:
                result = _run_experiment_parallel(
                    config,
                    options,
                    progress,
                    policy,
                    checkpoint_path,
                    completed,
                    jobs,
                    writer=writer,
                    fault_plan=fault_plan,
                    cache_path=cache_path,
                )
                if writer is not None:
                    writer.emit(
                        "run.end", dur=time.perf_counter() - run_start
                    )
                return result
            store = (
                PersistentStore(cache_path) if cache_path is not None else None
            )
            results = []
            for index, point in enumerate(config.points):
                if index in completed:
                    result_point = completed[index]
                else:
                    result_point = run_point(
                        point,
                        config,
                        seed=config.seed + index,
                        options=options,
                        failure_policy=policy,
                        writer=writer,
                        point_index=index,
                        fault_plan=fault_plan,
                        store=store,
                    )
                    completed[index] = result_point
                    if writer is not None:
                        writer.emit(
                            "point.end",
                            dur=result_point.elapsed_seconds,
                            point=index,
                            x=result_point.x,
                            failures=len(result_point.failures),
                        )
                    if checkpoint_path is not None:
                        _save_checkpoint_traced(
                            checkpoint_path, config, completed, index, writer
                        )
                if progress is not None:
                    progress(result_point)
                results.append(result_point)
            if writer is not None:
                writer.emit("run.end", dur=time.perf_counter() - run_start)
            return SweepResult(config=config, points=tuple(results))
        finally:
            if writer is not None:
                writer.close()


def compare_on_taskset(
    taskset: TaskSet,
    protocols: tuple[str, ...] = ("nps", "wasly", "proposed"),
    options: AnalysisOptions | None = None,
    method: str = "milp",
) -> dict[str, bool]:
    """Verdicts of several protocols on one concrete task set.

    All protocols share one analysis-cache scope: fixpoint solves
    whose inputs coincide across protocols are paid for once.
    """
    with cache_scope(AnalysisCache()):
        return {
            protocol: is_schedulable(
                taskset, protocol, options=options, method=method
            )
            for protocol in protocols
        }
