"""Sweep runner: schedulability ratios per protocol per point."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.analysis.interface import AnalysisOptions
from repro.analysis.schedulability import is_schedulable
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.generator.taskset_gen import generate_tasksets
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class PointResult:
    """Schedulability ratios of all protocols at one sweep point."""

    x: float
    ratios: Mapping[str, float]
    sets_evaluated: int
    elapsed_seconds: float

    def ratio(self, protocol: str) -> float:
        return self.ratios[protocol]


@dataclass(frozen=True)
class SweepResult:
    """A full experiment's series, one :class:`PointResult` per point."""

    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def series(self, protocol: str) -> list[tuple[float, float]]:
        """``(x, ratio)`` pairs of one protocol across the sweep."""
        return [(p.x, p.ratios[protocol]) for p in self.points]

    @property
    def x_values(self) -> list[float]:
        return [p.x for p in self.points]

    def advantage(self, protocol: str, over: str) -> float:
        """Largest ratio gap of ``protocol`` over ``over`` (paper-style
        "improvements up to X%" statements)."""
        return max(
            p.ratios[protocol] - p.ratios[over] for p in self.points
        )


def run_point(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    options: AnalysisOptions | None = None,
) -> PointResult:
    """Evaluate every protocol on the same task sets at one point."""
    start = time.perf_counter()
    tasksets = list(
        generate_tasksets(point.generation, config.sets_per_point, seed)
    )
    counts = {protocol: 0 for protocol in config.protocols}
    for taskset in tasksets:
        for protocol in config.protocols:
            if is_schedulable(
                taskset,
                protocol,
                options=options,
                method=config.method,
                ls_policy=config.ls_policy,
            ):
                counts[protocol] += 1
    total = len(tasksets)
    return PointResult(
        x=point.x,
        ratios={p: counts[p] / total for p in config.protocols},
        sets_evaluated=total,
        elapsed_seconds=time.perf_counter() - start,
    )


def run_experiment(
    config: ExperimentConfig,
    options: AnalysisOptions | None = None,
    progress: Callable[[PointResult], None] | None = None,
) -> SweepResult:
    """Run a full sweep (all points, all protocols, shared task sets).

    Args:
        config: The experiment definition.
        options: Analysis options (e.g. per-MILP time limits).
        progress: Optional callback invoked after each point, for
            long-running CLI feedback.
    """
    results = []
    for index, point in enumerate(config.points):
        result = run_point(point, config, seed=config.seed + index, options=options)
        if progress is not None:
            progress(result)
        results.append(result)
    return SweepResult(config=config, points=tuple(results))


def compare_on_taskset(
    taskset: TaskSet,
    protocols: tuple[str, ...] = ("nps", "wasly", "proposed"),
    options: AnalysisOptions | None = None,
    method: str = "milp",
) -> dict[str, bool]:
    """Verdicts of several protocols on one concrete task set."""
    return {
        protocol: is_schedulable(taskset, protocol, options=options, method=method)
        for protocol in protocols
    }
