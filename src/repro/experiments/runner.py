"""Sweep runner: schedulability ratios per protocol per point.

Long sweeps are thousands of MILP solves; this runner isolates faults
per taskset/protocol pair instead of letting one bad solve abort the
sweep. Each failure is captured as a structured :class:`FailureRecord`
in a ledger on the point result, and a :class:`FailurePolicy` decides
how the failed pair enters the ratios. With ``checkpoint_path`` set,
every completed point is persisted atomically so an interrupted sweep
resumes from where it stopped (see
:mod:`repro.experiments.persistence`).

Parallel execution
------------------
``run_experiment(..., jobs=N)`` fans the sweep out over a
``ProcessPoolExecutor``. The unit of work is one **(point, task set)**
pair — each worker regenerates the point's task-set sample from the
deterministic seed ``config.seed + point_index`` (memoised per
process) and evaluates every protocol on its one set, so no task set
crosses a process boundary and the sample is bit-identical to the
sequential run's. Workers return per-unit integer verdict counts and
failure ledgers; the parent merges them in task-set order, computes
the ratios from the summed integers (the same division the sequential
path performs), and is the *only* process that touches the checkpoint
file — one atomic write per completed point, regardless of worker
count. Both paths open one fresh analysis cache per unit, so the
surfaced hit/miss counters are deterministic and identical as well.
"""

from __future__ import annotations

import enum
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Mapping

from repro.analysis.cache import AnalysisCache, cache_scope
from repro.analysis.interface import AnalysisOptions
from repro.analysis.schedulability import is_schedulable
from repro.errors import ExperimentError, ReproError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.generator.taskset_gen import GenerationConfig, generate_tasksets
from repro.model.taskset import TaskSet
from repro.obs import events as obs
from repro.obs.events import EventRecorder, TraceWriter


class FailurePolicy(str, enum.Enum):
    """What a failed taskset/protocol evaluation means for the ratios.

    * ``RAISE`` — propagate the failure (the historical behaviour).
    * ``SKIP`` — drop the pair from that protocol's denominator.
    * ``COUNT_UNSCHEDULABLE`` — count the pair as unschedulable. This
      is the conservative default: a ratio can only be under-reported
      by a fault, never inflated.
    """

    RAISE = "raise"
    SKIP = "skip"
    COUNT_UNSCHEDULABLE = "count_unschedulable"


def _coerce_policy(policy: "FailurePolicy | str") -> FailurePolicy:
    try:
        return FailurePolicy(policy)
    except ValueError:
        raise ExperimentError(
            f"unknown failure policy {policy!r}; expected one of "
            f"{[p.value for p in FailurePolicy]}"
        ) from None


@dataclass(frozen=True)
class FailureRecord:
    """One captured taskset/protocol failure in a sweep's ledger.

    Attributes:
        x: Sweep-point x value the failure occurred at.
        protocol: Protocol whose evaluation failed.
        seed: The point's generation seed.
        taskset_index: Index of the task set within the point's sample.
        taskset_digest: Stable digest (:meth:`TaskSet.digest`) of the
            failing task set, for offline reproduction.
        error_type: Exception class name.
        message: Exception message.
        degradation: Deepest degradation level reached before the
            failure, when the solver reported one (``None`` otherwise).
    """

    x: float
    protocol: str
    seed: int
    taskset_index: int
    taskset_digest: str
    error_type: str
    message: str
    degradation: int | None = None


@dataclass(frozen=True)
class PointResult:
    """Schedulability ratios of all protocols at one sweep point.

    ``analysis_stats`` aggregates the per-unit analysis-cache counters
    (hits, misses, MILP/LP solves, screen hits) over the point's task
    sets; empty when the evaluation bypassed the real analysis (e.g.
    stubbed in tests or loaded from an old artifact).
    """

    x: float
    ratios: Mapping[str, float]
    sets_evaluated: int
    elapsed_seconds: float
    failures: tuple[FailureRecord, ...] = ()
    analysis_stats: Mapping[str, int] = field(default_factory=dict)

    def ratio(self, protocol: str) -> float:
        return self.ratios[protocol]


@dataclass(frozen=True)
class SweepResult:
    """A full experiment's series, one :class:`PointResult` per point.

    Points are normalised to ascending x on construction, so a result
    assembled from out-of-order completions (parallel execution,
    merged checkpoints) yields the same ``series()``/``x_values`` as a
    strictly sequential run.
    """

    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def __post_init__(self) -> None:
        pts = self.points
        if any(pts[i].x > pts[i + 1].x for i in range(len(pts) - 1)):
            object.__setattr__(
                self,
                "points",
                tuple(sorted(pts, key=lambda p: p.x)),
            )

    def series(self, protocol: str) -> list[tuple[float, float]]:
        """``(x, ratio)`` pairs of one protocol across the sweep."""
        return [(p.x, p.ratios[protocol]) for p in self.points]

    @property
    def x_values(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def failures(self) -> tuple[FailureRecord, ...]:
        """The whole sweep's failure ledger, in point order."""
        return tuple(f for p in self.points for f in p.failures)

    def advantage(self, protocol: str, over: str) -> float:
        """Largest ratio gap of ``protocol`` over ``over`` (paper-style
        "improvements up to X%" statements)."""
        if not self.points:
            raise ExperimentError(
                "advantage() on an empty sweep: no points were evaluated"
            )
        known = set(self.config.protocols)
        for name in (protocol, over):
            if name not in known:
                raise ExperimentError(
                    f"unknown protocol {name!r}; expected one of "
                    f"{sorted(known)}"
                )
        return max(
            p.ratios[protocol] - p.ratios[over] for p in self.points
        )


@dataclass(frozen=True)
class _UnitResult:
    """Verdict counts of one (point, task set) work unit.

    Pure integer deltas plus the unit's failure ledger and cache
    counters — everything the parent needs to merge units in task-set
    order into a :class:`PointResult` that is bit-identical to the
    sequential evaluation.
    """

    taskset_index: int
    counts: Mapping[str, int]
    attempted: Mapping[str, int]
    failures: tuple[FailureRecord, ...]
    cache_stats: Mapping[str, int]
    elapsed_seconds: float
    #: Buffered trace events of the unit (empty when tracing is off).
    #: Workers never write trace files — they ship their events here
    #: and the parent's TraceWriter persists them (single-writer rule).
    events: tuple[Mapping[str, object], ...] = ()


def _evaluate_unit(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    taskset_index: int,
    taskset: TaskSet,
    policy: FailurePolicy,
    options: AnalysisOptions | None,
    recorder: EventRecorder | None = None,
) -> _UnitResult:
    """Evaluate every protocol on one task set, inside a fresh cache scope.

    Shared by the sequential and the parallel path, so both produce
    the same verdicts, the same failure records in the same order, and
    the same cache counters (the scope is per unit in both). With a
    ``recorder`` the unit's analysis events (solves, cache traffic,
    fixpoint iterations, per-protocol verdicts) are buffered and
    returned on the unit result.
    """
    start = time.perf_counter()
    counts = {protocol: 0 for protocol in config.protocols}
    attempted = {protocol: 0 for protocol in config.protocols}
    failures: list[FailureRecord] = []
    scope = obs.recording(recorder) if recorder is not None else nullcontext()
    with scope, cache_scope(AnalysisCache()) as cache:
        for protocol in config.protocols:
            protocol_start = time.perf_counter()
            try:
                verdict = is_schedulable(
                    taskset,
                    protocol,
                    options=options,
                    method=config.method,
                    ls_policy=config.ls_policy,
                )
            except ReproError as exc:
                if policy is FailurePolicy.RAISE:
                    raise
                degradation = getattr(exc, "degradation", None)
                failures.append(
                    FailureRecord(
                        x=point.x,
                        protocol=protocol,
                        seed=seed,
                        taskset_index=taskset_index,
                        taskset_digest=taskset.digest(),
                        error_type=type(exc).__name__,
                        message=str(exc),
                        degradation=(
                            int(degradation) if degradation is not None else None
                        ),
                    )
                )
                obs.emit(
                    "protocol.failure",
                    dur=time.perf_counter() - protocol_start,
                    protocol=protocol,
                    error=type(exc).__name__,
                )
                if policy is FailurePolicy.COUNT_UNSCHEDULABLE:
                    attempted[protocol] += 1
                continue
            attempted[protocol] += 1
            if verdict:
                counts[protocol] += 1
            obs.emit(
                "protocol.verdict",
                dur=time.perf_counter() - protocol_start,
                protocol=protocol,
                schedulable=verdict,
            )
    return _UnitResult(
        taskset_index=taskset_index,
        counts=counts,
        attempted=attempted,
        failures=tuple(failures),
        cache_stats=cache.stats(),
        elapsed_seconds=time.perf_counter() - start,
        events=recorder.drain() if recorder is not None else (),
    )


def _merge_units(
    point: SweepPoint,
    config: ExperimentConfig,
    units: "list[_UnitResult]",
    elapsed_seconds: float,
) -> PointResult:
    """Fold unit results (any completion order) into one point result.

    Units are sorted by task-set index first, so failure ledgers and
    summed counters are independent of completion order; the ratios
    come from the summed integer counts — the exact division the
    sequential path performs.
    """
    units = sorted(units, key=lambda u: u.taskset_index)
    counts = {protocol: 0 for protocol in config.protocols}
    attempted = {protocol: 0 for protocol in config.protocols}
    stats: dict[str, int] = {}
    failures: list[FailureRecord] = []
    for unit in units:
        for protocol in config.protocols:
            counts[protocol] += unit.counts[protocol]
            attempted[protocol] += unit.attempted[protocol]
        for name, value in unit.cache_stats.items():
            stats[name] = stats.get(name, 0) + value
        failures.extend(unit.failures)
    return PointResult(
        x=point.x,
        ratios={
            p: (counts[p] / attempted[p]) if attempted[p] else 0.0
            for p in config.protocols
        },
        sets_evaluated=len(units),
        elapsed_seconds=elapsed_seconds,
        failures=tuple(failures),
        analysis_stats=stats,
    )


def run_point(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    options: AnalysisOptions | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
    writer: TraceWriter | None = None,
    point_index: int = 0,
) -> PointResult:
    """Evaluate every protocol on the same task sets at one point.

    A failing taskset/protocol pair never aborts the point (unless the
    policy is ``RAISE``): it is recorded in the point's failure ledger
    and enters the ratio per ``failure_policy``. With a ``writer``,
    each unit's buffered events are appended to the trace as the unit
    completes, stamped with ``point_index`` and the unit index.
    """
    policy = _coerce_policy(failure_policy)
    start = time.perf_counter()
    tasksets = list(
        generate_tasksets(point.generation, config.sets_per_point, seed)
    )
    if writer is not None:
        writer.emit(
            "gen.tasksets",
            dur=time.perf_counter() - start,
            point=point_index,
            sets=len(tasksets),
        )
    units = []
    for index, taskset in enumerate(tasksets):
        unit = _evaluate_unit(
            point,
            config,
            seed,
            index,
            taskset,
            policy,
            options,
            recorder=EventRecorder() if writer is not None else None,
        )
        if writer is not None:
            writer.write_events(unit.events, point=point_index, unit=index)
        units.append(unit)
    return _merge_units(
        point, config, units, time.perf_counter() - start
    )


# ----------------------------------------------------------------------
# parallel engine
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _tasksets_for(
    generation: GenerationConfig, count: int, seed: int
) -> tuple[TaskSet, ...]:
    """Per-process memo of one point's generated sample.

    Workers receive only (point index, task set index) and regenerate
    the sample from the deterministic seed — identical to the
    sequential path's — so task sets never cross process boundaries;
    the memo amortises the generation over a point's many units.
    """
    return tuple(generate_tasksets(generation, count, seed))


def _worker_evaluate(
    config: ExperimentConfig,
    point_index: int,
    taskset_index: int,
    options: AnalysisOptions | None,
    policy_value: str,
    trace: bool = False,
) -> "tuple[int, _UnitResult]":
    """Process-pool entry point: evaluate one (point, task set) unit."""
    point = config.points[point_index]
    seed = config.seed + point_index
    recorder = EventRecorder() if trace else None
    if recorder is not None:
        recorder.emit("worker.unit", pid=os.getpid())
        with recorder.span("gen.tasksets", sets=config.sets_per_point):
            taskset = _tasksets_for(
                point.generation, config.sets_per_point, seed
            )[taskset_index]
    else:
        taskset = _tasksets_for(
            point.generation, config.sets_per_point, seed
        )[taskset_index]
    unit = _evaluate_unit(
        point,
        config,
        seed,
        taskset_index,
        taskset,
        FailurePolicy(policy_value),
        options,
        recorder=recorder,
    )
    return point_index, unit


def _run_experiment_parallel(
    config: ExperimentConfig,
    options: AnalysisOptions | None,
    progress: Callable[[PointResult], None] | None,
    policy: FailurePolicy,
    checkpoint_path: "str | None",
    completed: "dict[int, PointResult]",
    jobs: int,
    writer: TraceWriter | None = None,
) -> SweepResult:
    """Fan (point, task set) units over a process pool and merge.

    The parent is the only writer of the checkpoint file: it collects
    unit results as they complete and performs exactly one atomic
    ``save_checkpoint`` when a point's last unit arrives, so a crash
    can lose at most the in-flight points — never corrupt the file.
    The same discipline covers the trace: workers ship buffered events
    on their unit results and the parent appends them when a point
    completes, in task-set order, so the aggregate trace content
    matches the sequential run's.
    """
    point_started = {
        index: time.perf_counter()
        for index in range(len(config.points))
        if index not in completed
    }
    unit_results: dict[int, dict[int, _UnitResult]] = {
        index: {} for index in point_started
    }
    pending = [
        (point_index, taskset_index)
        for point_index in sorted(point_started)
        for taskset_index in range(config.sets_per_point)
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(
                _worker_evaluate,
                config,
                point_index,
                taskset_index,
                options,
                policy.value,
                writer is not None,
            )
            for point_index, taskset_index in pending
        }
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    point_index, unit = future.result()
                except BaseException:
                    # RAISE policy (or an unexpected worker crash):
                    # drop the queued units so the pool winds down
                    # promptly instead of draining the whole sweep.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                bucket = unit_results[point_index]
                bucket[unit.taskset_index] = unit
                if len(bucket) < config.sets_per_point:
                    continue
                result = _merge_units(
                    config.points[point_index],
                    config,
                    list(bucket.values()),
                    time.perf_counter() - point_started[point_index],
                )
                completed[point_index] = result
                if writer is not None:
                    for index in sorted(bucket):
                        writer.write_events(
                            bucket[index].events,
                            point=point_index,
                            unit=index,
                        )
                    writer.emit(
                        "point.end",
                        dur=result.elapsed_seconds,
                        point=point_index,
                        x=result.x,
                        failures=len(result.failures),
                    )
                if checkpoint_path is not None:
                    from repro.experiments.persistence import save_checkpoint

                    save_checkpoint(checkpoint_path, config, completed)
                    if writer is not None:
                        writer.emit("checkpoint.saved", point=point_index)
                if progress is not None:
                    progress(result)
    return SweepResult(
        config=config,
        points=tuple(
            completed[index] for index in range(len(config.points))
        ),
    )


def run_experiment(
    config: ExperimentConfig,
    options: AnalysisOptions | None = None,
    progress: Callable[[PointResult], None] | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
    checkpoint_path: "str | None" = None,
    resume: bool = False,
    jobs: int = 1,
    trace_path: "str | None" = None,
) -> SweepResult:
    """Run a full sweep (all points, all protocols, shared task sets).

    Args:
        config: The experiment definition.
        options: Analysis options (e.g. per-MILP time limits).
        progress: Optional callback invoked after each point, for
            long-running CLI feedback. Under ``jobs > 1`` points are
            reported in completion order (the returned sweep is always
            in point order).
        failure_policy: How failed taskset/protocol pairs enter the
            ratios (see :class:`FailurePolicy`).
        checkpoint_path: When set, each completed point is persisted
            there atomically (JSON keyed by a config digest); only the
            parent process ever writes it.
        resume: Reload ``checkpoint_path`` and skip the points it
            already holds; point ``i`` always uses ``config.seed + i``,
            so a resumed sweep is bit-identical to an uninterrupted one.
        jobs: Worker processes. ``1`` (the default) runs in-process;
            ``N > 1`` fans (point, task set) units over a process pool
            with bit-identical results (see the module docstring).
        trace_path: When set, a structured JSONL event trace of the
            run is written there (see :mod:`repro.obs`). The run id
            stamped on every event is the config digest, so a trace is
            attributable to its checkpoint. Points skipped via
            ``resume`` emit nothing.
    """
    policy = _coerce_policy(failure_policy)
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    completed: dict[int, PointResult] = {}
    if checkpoint_path is not None and resume:
        from repro.experiments.persistence import load_checkpoint

        completed = load_checkpoint(checkpoint_path, config, missing_ok=True)
    writer: TraceWriter | None = None
    if trace_path is not None:
        from repro.experiments.persistence import config_digest

        writer = TraceWriter(trace_path, run_id=config_digest(config)[:12])
    try:
        if writer is not None:
            writer.emit(
                "run.start",
                points=len(config.points),
                sets=config.sets_per_point,
                jobs=jobs,
                resumed=len(completed),
            )
        run_start = time.perf_counter()
        if jobs > 1:
            result = _run_experiment_parallel(
                config,
                options,
                progress,
                policy,
                checkpoint_path,
                completed,
                jobs,
                writer=writer,
            )
            if writer is not None:
                writer.emit(
                    "run.end", dur=time.perf_counter() - run_start
                )
            return result
        results = []
        for index, point in enumerate(config.points):
            if index in completed:
                result_point = completed[index]
            else:
                result_point = run_point(
                    point,
                    config,
                    seed=config.seed + index,
                    options=options,
                    failure_policy=policy,
                    writer=writer,
                    point_index=index,
                )
                completed[index] = result_point
                if writer is not None:
                    writer.emit(
                        "point.end",
                        dur=result_point.elapsed_seconds,
                        point=index,
                        x=result_point.x,
                        failures=len(result_point.failures),
                    )
                if checkpoint_path is not None:
                    from repro.experiments.persistence import save_checkpoint

                    save_checkpoint(checkpoint_path, config, completed)
                    if writer is not None:
                        writer.emit("checkpoint.saved", point=index)
            if progress is not None:
                progress(result_point)
            results.append(result_point)
        if writer is not None:
            writer.emit("run.end", dur=time.perf_counter() - run_start)
        return SweepResult(config=config, points=tuple(results))
    finally:
        if writer is not None:
            writer.close()


def compare_on_taskset(
    taskset: TaskSet,
    protocols: tuple[str, ...] = ("nps", "wasly", "proposed"),
    options: AnalysisOptions | None = None,
    method: str = "milp",
) -> dict[str, bool]:
    """Verdicts of several protocols on one concrete task set.

    All protocols share one analysis-cache scope: fixpoint solves
    whose inputs coincide across protocols are paid for once.
    """
    with cache_scope(AnalysisCache()):
        return {
            protocol: is_schedulable(
                taskset, protocol, options=options, method=method
            )
            for protocol in protocols
        }
