"""Sweep runner: schedulability ratios per protocol per point.

Long sweeps are thousands of MILP solves; this runner isolates faults
per taskset/protocol pair instead of letting one bad solve abort the
sweep. Each failure is captured as a structured :class:`FailureRecord`
in a ledger on the point result, and a :class:`FailurePolicy` decides
how the failed pair enters the ratios. With ``checkpoint_path`` set,
every completed point is persisted atomically so an interrupted sweep
resumes from where it stopped (see
:mod:`repro.experiments.persistence`).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.analysis.interface import AnalysisOptions
from repro.analysis.schedulability import is_schedulable
from repro.errors import ExperimentError, ReproError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.generator.taskset_gen import generate_tasksets
from repro.model.taskset import TaskSet


class FailurePolicy(str, enum.Enum):
    """What a failed taskset/protocol evaluation means for the ratios.

    * ``RAISE`` — propagate the failure (the historical behaviour).
    * ``SKIP`` — drop the pair from that protocol's denominator.
    * ``COUNT_UNSCHEDULABLE`` — count the pair as unschedulable. This
      is the conservative default: a ratio can only be under-reported
      by a fault, never inflated.
    """

    RAISE = "raise"
    SKIP = "skip"
    COUNT_UNSCHEDULABLE = "count_unschedulable"


def _coerce_policy(policy: "FailurePolicy | str") -> FailurePolicy:
    try:
        return FailurePolicy(policy)
    except ValueError:
        raise ExperimentError(
            f"unknown failure policy {policy!r}; expected one of "
            f"{[p.value for p in FailurePolicy]}"
        ) from None


@dataclass(frozen=True)
class FailureRecord:
    """One captured taskset/protocol failure in a sweep's ledger.

    Attributes:
        x: Sweep-point x value the failure occurred at.
        protocol: Protocol whose evaluation failed.
        seed: The point's generation seed.
        taskset_index: Index of the task set within the point's sample.
        taskset_digest: Stable digest (:meth:`TaskSet.digest`) of the
            failing task set, for offline reproduction.
        error_type: Exception class name.
        message: Exception message.
        degradation: Deepest degradation level reached before the
            failure, when the solver reported one (``None`` otherwise).
    """

    x: float
    protocol: str
    seed: int
    taskset_index: int
    taskset_digest: str
    error_type: str
    message: str
    degradation: int | None = None


@dataclass(frozen=True)
class PointResult:
    """Schedulability ratios of all protocols at one sweep point."""

    x: float
    ratios: Mapping[str, float]
    sets_evaluated: int
    elapsed_seconds: float
    failures: tuple[FailureRecord, ...] = ()

    def ratio(self, protocol: str) -> float:
        return self.ratios[protocol]


@dataclass(frozen=True)
class SweepResult:
    """A full experiment's series, one :class:`PointResult` per point."""

    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def series(self, protocol: str) -> list[tuple[float, float]]:
        """``(x, ratio)`` pairs of one protocol across the sweep."""
        return [(p.x, p.ratios[protocol]) for p in self.points]

    @property
    def x_values(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def failures(self) -> tuple[FailureRecord, ...]:
        """The whole sweep's failure ledger, in point order."""
        return tuple(f for p in self.points for f in p.failures)

    def advantage(self, protocol: str, over: str) -> float:
        """Largest ratio gap of ``protocol`` over ``over`` (paper-style
        "improvements up to X%" statements)."""
        if not self.points:
            raise ExperimentError(
                "advantage() on an empty sweep: no points were evaluated"
            )
        known = set(self.config.protocols)
        for name in (protocol, over):
            if name not in known:
                raise ExperimentError(
                    f"unknown protocol {name!r}; expected one of "
                    f"{sorted(known)}"
                )
        return max(
            p.ratios[protocol] - p.ratios[over] for p in self.points
        )


def run_point(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    options: AnalysisOptions | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
) -> PointResult:
    """Evaluate every protocol on the same task sets at one point.

    A failing taskset/protocol pair never aborts the point (unless the
    policy is ``RAISE``): it is recorded in the point's failure ledger
    and enters the ratio per ``failure_policy``.
    """
    policy = _coerce_policy(failure_policy)
    start = time.perf_counter()
    tasksets = list(
        generate_tasksets(point.generation, config.sets_per_point, seed)
    )
    counts = {protocol: 0 for protocol in config.protocols}
    attempted = {protocol: 0 for protocol in config.protocols}
    failures: list[FailureRecord] = []
    for index, taskset in enumerate(tasksets):
        for protocol in config.protocols:
            try:
                verdict = is_schedulable(
                    taskset,
                    protocol,
                    options=options,
                    method=config.method,
                    ls_policy=config.ls_policy,
                )
            except ReproError as exc:
                if policy is FailurePolicy.RAISE:
                    raise
                degradation = getattr(exc, "degradation", None)
                failures.append(
                    FailureRecord(
                        x=point.x,
                        protocol=protocol,
                        seed=seed,
                        taskset_index=index,
                        taskset_digest=taskset.digest(),
                        error_type=type(exc).__name__,
                        message=str(exc),
                        degradation=(
                            int(degradation) if degradation is not None else None
                        ),
                    )
                )
                if policy is FailurePolicy.COUNT_UNSCHEDULABLE:
                    attempted[protocol] += 1
                continue
            attempted[protocol] += 1
            if verdict:
                counts[protocol] += 1
    return PointResult(
        x=point.x,
        ratios={
            p: (counts[p] / attempted[p]) if attempted[p] else 0.0
            for p in config.protocols
        },
        sets_evaluated=len(tasksets),
        elapsed_seconds=time.perf_counter() - start,
        failures=tuple(failures),
    )


def run_experiment(
    config: ExperimentConfig,
    options: AnalysisOptions | None = None,
    progress: Callable[[PointResult], None] | None = None,
    failure_policy: FailurePolicy | str = FailurePolicy.COUNT_UNSCHEDULABLE,
    checkpoint_path: "str | None" = None,
    resume: bool = False,
) -> SweepResult:
    """Run a full sweep (all points, all protocols, shared task sets).

    Args:
        config: The experiment definition.
        options: Analysis options (e.g. per-MILP time limits).
        progress: Optional callback invoked after each point, for
            long-running CLI feedback.
        failure_policy: How failed taskset/protocol pairs enter the
            ratios (see :class:`FailurePolicy`).
        checkpoint_path: When set, each completed point is persisted
            there atomically (JSON keyed by a config digest).
        resume: Reload ``checkpoint_path`` and skip the points it
            already holds; point ``i`` always uses ``config.seed + i``,
            so a resumed sweep is bit-identical to an uninterrupted one.
    """
    policy = _coerce_policy(failure_policy)
    completed: dict[int, PointResult] = {}
    if checkpoint_path is not None and resume:
        from repro.experiments.persistence import load_checkpoint

        completed = load_checkpoint(checkpoint_path, config, missing_ok=True)
    results = []
    for index, point in enumerate(config.points):
        if index in completed:
            result = completed[index]
        else:
            result = run_point(
                point,
                config,
                seed=config.seed + index,
                options=options,
                failure_policy=policy,
            )
            completed[index] = result
            if checkpoint_path is not None:
                from repro.experiments.persistence import save_checkpoint

                save_checkpoint(checkpoint_path, config, completed)
        if progress is not None:
            progress(result)
        results.append(result)
    return SweepResult(config=config, points=tuple(results))


def compare_on_taskset(
    taskset: TaskSet,
    protocols: tuple[str, ...] = ("nps", "wasly", "proposed"),
    options: AnalysisOptions | None = None,
    method: str = "milp",
) -> dict[str, bool]:
    """Verdicts of several protocols on one concrete task set."""
    return {
        protocol: is_schedulable(taskset, protocol, options=options, method=method)
        for protocol in protocols
    }
