"""Experiment configurations for the six insets of the paper's Fig. 2.

The paper's text pins down the generation recipe (Sec. VII) but not the
exact ``(n, gamma, beta)`` of each inset; the configurations below are
chosen to cover every qualitative statement made about the figure:

* insets (a)-(d) sweep the total utilisation ``U``;
* gamma = 0.1 in (a) and (b) (the text names them as the low-gamma
  panels where protocol [3] can fall below NPS);
* inset (c) is the panel with the up-to-60% advantage over NPS at
  U = 0.6 (tighter deadlines, moderate memory intensity);
* inset (e) sweeps gamma at fixed U, inset (f) sweeps beta.

EXPERIMENTS.md records these choices alongside the measured series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.generator.taskset_gen import GenerationConfig

#: Default utilisation sweep for insets (a)-(d).
_U_GRID = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a sweep: a fully-specified generation config."""

    x: float
    generation: GenerationConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete experiment: sweep points, sampling, and protocols.

    Attributes:
        name: Identifier (e.g. ``"fig2a"``).
        x_label: Meaning of the swept value (``"U"``, ``"gamma"``...).
        points: The sweep.
        sets_per_point: Random task sets evaluated per point.
        seed: Base seed; point ``i`` uses ``seed + i`` so points are
            independent but reproducible.
        protocols: Approaches compared. The NPS baseline uses the
            ``"nps_carry"`` variant so that carry-in interference is
            charged with the same arrival-curve convention as the
            interval protocols (see EXPERIMENTS.md).
        ls_policy: LS-marking policy for the proposed protocol.
        method: ``"milp"`` or ``"closed_form"`` analysis for the
            interval protocols.
    """

    name: str
    x_label: str
    points: tuple[SweepPoint, ...]
    sets_per_point: int = 50
    seed: int = 2020
    protocols: tuple[str, ...] = ("nps_carry", "wasly", "proposed")
    ls_policy: str = "greedy"
    method: str = "milp"

    def __post_init__(self) -> None:
        if not self.points:
            raise ExperimentError(f"{self.name}: empty sweep")
        if self.sets_per_point <= 0:
            raise ExperimentError(f"{self.name}: sets_per_point must be positive")

    def scaled(self, sets_per_point: int) -> "ExperimentConfig":
        """A copy with a different sample count (CI-friendly sizes)."""
        from dataclasses import replace

        return replace(self, sets_per_point=sets_per_point)


def _u_sweep(name: str, base: GenerationConfig, grid: Sequence[float] = _U_GRID):
    return tuple(SweepPoint(u, base.with_(utilization=u)) for u in grid)


#: Inset definitions: name -> (x_label, sweep builder).
FIGURE2_INSETS = {
    "fig2a": (
        "U",
        _u_sweep("fig2a", GenerationConfig(n=6, gamma=0.1, beta=0.5)),
    ),
    "fig2b": (
        "U",
        _u_sweep("fig2b", GenerationConfig(n=10, gamma=0.1, beta=0.5)),
    ),
    "fig2c": (
        "U",
        _u_sweep("fig2c", GenerationConfig(n=6, gamma=0.3, beta=0.25)),
    ),
    "fig2d": (
        "U",
        _u_sweep("fig2d", GenerationConfig(n=6, gamma=0.5, beta=0.5)),
    ),
    # The fixed utilisation of insets (e) and (f) sits where the three
    # approaches are all partially schedulable under our (more
    # pessimistic) analysis stack — see EXPERIMENTS.md on the leftward
    # compression of the curves relative to the paper's x-axes.
    "fig2e": (
        "gamma",
        tuple(
            SweepPoint(
                g, GenerationConfig(n=6, utilization=0.35, beta=0.5, gamma=g)
            )
            for g in (0.1, 0.2, 0.3, 0.4, 0.5)
        ),
    ),
    "fig2f": (
        "beta",
        tuple(
            SweepPoint(
                b, GenerationConfig(n=6, utilization=0.35, gamma=0.3, beta=b)
            )
            for b in (0.0, 0.25, 0.5, 0.75, 1.0)
        ),
    ),
}


def figure2_config(
    inset: str,
    sets_per_point: int = 50,
    seed: int = 2020,
    method: str = "milp",
    protocols: tuple[str, ...] | None = None,
) -> ExperimentConfig:
    """Build the experiment configuration for one Fig. 2 inset.

    ``protocols`` selects the compared approaches (any registered
    protocol names, validated against the registry); ``None`` keeps the
    paper's three-way comparison.
    """
    try:
        x_label, points = FIGURE2_INSETS[inset]
    except KeyError:
        raise ExperimentError(
            f"unknown inset {inset!r}; expected one of {sorted(FIGURE2_INSETS)}"
        ) from None
    if protocols is not None:
        from repro.analysis.registry import registered_protocols

        if not protocols:
            raise ExperimentError(f"{inset}: empty protocol tuple")
        known = set(registered_protocols())
        unknown = [p for p in protocols if p not in known]
        if unknown:
            raise ExperimentError(
                f"unknown protocol(s) {', '.join(map(repr, unknown))}; "
                f"registered protocols: "
                f"{', '.join(registered_protocols())}"
            )
        return ExperimentConfig(
            name=inset,
            x_label=x_label,
            points=points,
            sets_per_point=sets_per_point,
            seed=seed,
            method=method,
            protocols=tuple(protocols),
        )
    return ExperimentConfig(
        name=inset,
        x_label=x_label,
        points=points,
        sets_per_point=sets_per_point,
        seed=seed,
        method=method,
    )
