"""Multicore experiments: partitioned schedulability at system scale.

The paper analyses each core in isolation after a static partitioning
(Sec. II). This module provides the system-level experiment the
platform model enables: generate a global workload, partition it onto
``m`` cores with a bin-packing heuristic, and call the whole system
schedulable when *every* core's task set passes the per-core analysis.
Sweeping the global utilisation (or the core count) shows how the
protocols scale beyond a single core.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.analysis.interface import AnalysisOptions
from repro.analysis.schedulability import is_schedulable
from repro.errors import ExperimentError, PartitioningError
from repro.generator.periods import log_uniform_periods
from repro.generator.uunifast import uunifast_discard
from repro.model.partitioning import Heuristic, partition_tasks
from repro.model.platform import Platform
from repro.model.task import Task


@dataclass(frozen=True)
class MulticoreConfig:
    """One multicore experiment configuration.

    Attributes:
        num_cores: Cores on the platform.
        n_tasks: Global number of tasks.
        total_utilization: Global execution utilisation (may exceed 1).
        gamma: Memory intensity (``l = u = gamma * C``).
        beta: Deadline-tightness parameter.
        heuristic: Partitioning heuristic.
        protocols: Protocols compared per core.
        method: Analysis method for the interval protocols.
    """

    num_cores: int = 4
    n_tasks: int = 16
    total_utilization: float = 1.2
    gamma: float = 0.2
    beta: float = 0.5
    heuristic: Heuristic = "worst_fit"
    protocols: tuple[str, ...] = ("nps_carry", "wasly", "proposed")
    method: str = "milp"

    def __post_init__(self) -> None:
        if self.num_cores <= 0 or self.n_tasks <= 0:
            raise ExperimentError("num_cores and n_tasks must be positive")
        if self.total_utilization <= 0:
            raise ExperimentError("total_utilization must be positive")


@dataclass(frozen=True)
class MulticoreResult:
    """Ratios of fully-schedulable systems per protocol."""

    config: MulticoreConfig
    ratios: Mapping[str, float]
    partition_failures: int
    systems_evaluated: int
    elapsed_seconds: float = field(default=0.0)


def _generate_global_taskset(
    config: MulticoreConfig, rng: np.random.Generator
) -> list[Task]:
    periods = log_uniform_periods(config.n_tasks, rng)
    utils = uunifast_discard(
        config.n_tasks,
        config.total_utilization,
        rng,
        # Memory phases ride on top of C; keep per-task total below one
        # core's capacity so the workload is partitionable in principle.
        max_task_utilization=min(1.0, 0.95 / (1 + 2 * config.gamma)),
    )
    tasks = []
    for i, (period, util) in enumerate(zip(periods, utils)):
        exec_time = period * util
        memory = config.gamma * exec_time
        d_low = min(exec_time + config.beta * (period - exec_time), period)
        deadline = float(rng.uniform(d_low, period))
        tasks.append(
            Task.sporadic(
                f"t{i}",
                exec_time=exec_time,
                copy_in=memory,
                copy_out=memory,
                period=period,
                deadline=deadline,
                priority=i,  # re-assigned per core after partitioning
            )
        )
    return tasks


def _per_core_priorities(tasks: list[Task]) -> list[Task]:
    """Deadline-monotonic unique priorities within one core."""
    ordered = sorted(tasks, key=lambda t: (t.deadline, t.name))
    return [task.with_priority(p) for p, task in enumerate(ordered)]


def run_multicore_point(
    config: MulticoreConfig,
    systems: int,
    seed: int,
    options: AnalysisOptions | None = None,
) -> MulticoreResult:
    """Evaluate ``systems`` random multicore workloads.

    A system counts as schedulable for a protocol when the partitioning
    succeeds and every non-empty core passes that protocol's per-core
    schedulability test. Partitioning failures count against every
    protocol (they share the partitioning stage).
    """
    if systems <= 0:
        raise ExperimentError("systems must be positive")
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    platform = Platform.homogeneous(config.num_cores)
    accepted = {p: 0 for p in config.protocols}
    partition_failures = 0

    for _ in range(systems):
        tasks = _generate_global_taskset(config, rng)
        try:
            partitioning = partition_tasks(
                tasks, platform, heuristic=config.heuristic
            )
        except PartitioningError:
            partition_failures += 1
            continue
        core_sets = []
        for core_tasks in partitioning.assignments:
            if core_tasks is None:
                continue
            from repro.model.taskset import TaskSet

            core_sets.append(TaskSet(_per_core_priorities(list(core_tasks))))
        for protocol in config.protocols:
            if all(
                is_schedulable(
                    core_set, protocol, options=options, method=config.method
                )
                for core_set in core_sets
            ):
                accepted[protocol] += 1

    return MulticoreResult(
        config=config,
        ratios={p: accepted[p] / systems for p in config.protocols},
        partition_failures=partition_failures,
        systems_evaluated=systems,
        elapsed_seconds=time.perf_counter() - start,
    )
