"""Dispatch-agnostic (point, task set) work units and their scheduler.

The sweep engines — sequential, ``--jobs N`` process pool, and the
:mod:`repro.service` coordinator — all decompose an experiment into the
same pure work unit: evaluate every protocol on one task set of one
sweep point. This module owns everything about those units that does
*not* depend on how they are shipped to a CPU:

* the result dataclasses (:class:`PointResult`, :class:`SweepResult`,
  :class:`FailureRecord`, :class:`_UnitResult`) and the
  :class:`FailurePolicy` that decides how failures enter the ratios;
* :func:`_evaluate_unit` — the one evaluation function every engine
  calls, inside a fresh per-unit cache scope, so verdicts, failure
  ledgers, and cache counters are bit-identical across engines;
* :func:`_merge_units` — the completion-order-independent fold of unit
  results into a point result;
* :class:`UnitScheduler` — the engine-independent bookkeeping half of
  the PR 5 crash-recovery protocol: which units are pending at which
  attempt, which have crashed how often, requeue-or-quarantine
  decisions, point completion (trace append in task-set order, one
  atomic checkpoint write, progress callback). The process-pool engine
  drives it from a ``ProcessPoolExecutor`` loop; the sweep service
  drives it from an asyncio dispatch loop; both inherit identical
  recovery semantics;
* :func:`unit_digest` / the unit payload codec — the content address
  under which the sweep service memoises *finished unit results* in the
  persistent store. The digest covers everything the unit's counts
  depend on (generation parameters, seed, task-set index, protocols,
  policy, analysis options) and deliberately **excludes**
  ``sets_per_point``: :func:`repro.generator.taskset_gen.generate_tasksets`
  draws sequentially from one seeded stream, so task set ``i`` is
  identical no matter how many sets a sweep requests — an overlapping
  (larger) sweep re-uses every unit the smaller one already solved.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Mapping

from repro.analysis.cache import AnalysisCache, cache_scope
from repro.analysis.cache import digest as _cache_digest
from repro.analysis.interface import AnalysisOptions
from repro.analysis.schedulability import is_schedulable
from repro.analysis.store import PersistentStore
from repro.errors import ExperimentError, ReproError, WorkerCrashError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.faults.plan import FaultPlan
from repro.generator.taskset_gen import GenerationConfig, generate_tasksets
from repro.model.taskset import TaskSet
from repro.obs import events as obs
from repro.obs.events import EventRecorder, TraceWriter


class FailurePolicy(str, enum.Enum):
    """What a failed taskset/protocol evaluation means for the ratios.

    * ``RAISE`` — propagate the failure (the historical behaviour).
    * ``SKIP`` — drop the pair from that protocol's denominator.
    * ``COUNT_UNSCHEDULABLE`` — count the pair as unschedulable. This
      is the conservative default: a ratio can only be under-reported
      by a fault, never inflated.
    """

    RAISE = "raise"
    SKIP = "skip"
    COUNT_UNSCHEDULABLE = "count_unschedulable"


def _coerce_policy(policy: "FailurePolicy | str") -> FailurePolicy:
    try:
        return FailurePolicy(policy)
    except ValueError:
        raise ExperimentError(
            f"unknown failure policy {policy!r}; expected one of "
            f"{[p.value for p in FailurePolicy]}"
        ) from None


@dataclass(frozen=True)
class FailureRecord:
    """One captured taskset/protocol failure in a sweep's ledger.

    Attributes:
        x: Sweep-point x value the failure occurred at.
        protocol: Protocol whose evaluation failed.
        seed: The point's generation seed.
        taskset_index: Index of the task set within the point's sample.
        taskset_digest: Stable digest (:meth:`TaskSet.digest`) of the
            failing task set, for offline reproduction.
        error_type: Exception class name.
        message: Exception message.
        degradation: Deepest degradation level reached before the
            failure, when the solver reported one (``None`` otherwise).
    """

    x: float
    protocol: str
    seed: int
    taskset_index: int
    taskset_digest: str
    error_type: str
    message: str
    degradation: int | None = None


@dataclass(frozen=True)
class PointResult:
    """Schedulability ratios of all protocols at one sweep point.

    ``analysis_stats`` aggregates the per-unit analysis-cache counters
    (hits, misses, MILP/LP solves, screen hits) over the point's task
    sets; empty when the evaluation bypassed the real analysis (e.g.
    stubbed in tests or loaded from an old artifact).
    """

    x: float
    ratios: Mapping[str, float]
    sets_evaluated: int
    elapsed_seconds: float
    failures: tuple[FailureRecord, ...] = ()
    analysis_stats: Mapping[str, int] = field(default_factory=dict)

    def ratio(self, protocol: str) -> float:
        return self.ratios[protocol]


@dataclass(frozen=True)
class SweepResult:
    """A full experiment's series, one :class:`PointResult` per point.

    Points are normalised to ascending x on construction, so a result
    assembled from out-of-order completions (parallel execution,
    merged checkpoints) yields the same ``series()``/``x_values`` as a
    strictly sequential run.
    """

    config: ExperimentConfig
    points: tuple[PointResult, ...]

    def __post_init__(self) -> None:
        pts = self.points
        if any(pts[i].x > pts[i + 1].x for i in range(len(pts) - 1)):
            object.__setattr__(
                self,
                "points",
                tuple(sorted(pts, key=lambda p: p.x)),
            )

    def series(self, protocol: str) -> list[tuple[float, float]]:
        """``(x, ratio)`` pairs of one protocol across the sweep."""
        return [(p.x, p.ratios[protocol]) for p in self.points]

    @property
    def x_values(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def failures(self) -> tuple[FailureRecord, ...]:
        """The whole sweep's failure ledger, in point order."""
        return tuple(f for p in self.points for f in p.failures)

    def advantage(self, protocol: str, over: str) -> float:
        """Largest ratio gap of ``protocol`` over ``over`` (paper-style
        "improvements up to X%" statements)."""
        if not self.points:
            raise ExperimentError(
                "advantage() on an empty sweep: no points were evaluated"
            )
        known = set(self.config.protocols)
        for name in (protocol, over):
            if name not in known:
                raise ExperimentError(
                    f"unknown protocol {name!r}; expected one of "
                    f"{sorted(known)}"
                )
        return max(
            p.ratios[protocol] - p.ratios[over] for p in self.points
        )


@dataclass(frozen=True)
class _UnitResult:
    """Verdict counts of one (point, task set) work unit.

    Pure integer deltas plus the unit's failure ledger and cache
    counters — everything the parent needs to merge units in task-set
    order into a :class:`PointResult` that is bit-identical to the
    sequential evaluation.
    """

    taskset_index: int
    counts: Mapping[str, int]
    attempted: Mapping[str, int]
    failures: tuple[FailureRecord, ...]
    cache_stats: Mapping[str, int]
    elapsed_seconds: float
    #: Buffered trace events of the unit (empty when tracing is off).
    #: Workers never write trace files — they ship their events here
    #: and the parent's TraceWriter persists them (single-writer rule).
    events: tuple[Mapping[str, object], ...] = ()


def _evaluate_unit(
    point: SweepPoint,
    config: ExperimentConfig,
    seed: int,
    taskset_index: int,
    taskset: TaskSet,
    policy: FailurePolicy,
    options: AnalysisOptions | None,
    recorder: EventRecorder | None = None,
    death_check: "Callable[[str | None], None] | None" = None,
    store: PersistentStore | None = None,
) -> _UnitResult:
    """Evaluate every protocol on one task set, inside a fresh cache scope.

    Shared by the sequential and the parallel path, so both produce
    the same verdicts, the same failure records in the same order, and
    the same cache counters (the scope is per unit in both). With a
    ``store`` the unit's fresh memory cache is backed by the shared
    on-disk tier — the scoping stays per unit either way, which is what
    keeps the counters deterministic across engines. With a
    ``recorder`` the unit's analysis events (solves, cache traffic,
    fixpoint iterations, per-protocol verdicts) are buffered and
    returned on the unit result. ``death_check`` is the process-pool
    path's ``worker.death`` injection hook (called at unit start and
    before each protocol with the protocol name); it simulates the
    worker dying at that instant, so it exists only where a real crash
    could — sequential runs never pass one.
    """
    start = time.perf_counter()
    counts = {protocol: 0 for protocol in config.protocols}
    attempted = {protocol: 0 for protocol in config.protocols}
    failures: list[FailureRecord] = []
    scope = obs.recording(recorder) if recorder is not None else nullcontext()
    with scope, cache_scope(AnalysisCache(persistent=store)) as cache:
        if death_check is not None:
            death_check(None)
        for protocol in config.protocols:
            if death_check is not None:
                death_check(protocol)
            protocol_start = time.perf_counter()
            try:
                verdict = is_schedulable(
                    taskset,
                    protocol,
                    options=options,
                    method=config.method,
                    ls_policy=config.ls_policy,
                )
            except ReproError as exc:
                if policy is FailurePolicy.RAISE:
                    raise
                degradation = getattr(exc, "degradation", None)
                failures.append(
                    FailureRecord(
                        x=point.x,
                        protocol=protocol,
                        seed=seed,
                        taskset_index=taskset_index,
                        taskset_digest=taskset.digest(),
                        error_type=type(exc).__name__,
                        message=str(exc),
                        degradation=(
                            int(degradation) if degradation is not None else None
                        ),
                    )
                )
                obs.emit(
                    "protocol.failure",
                    dur=time.perf_counter() - protocol_start,
                    protocol=protocol,
                    error=type(exc).__name__,
                )
                if policy is FailurePolicy.COUNT_UNSCHEDULABLE:
                    attempted[protocol] += 1
                continue
            attempted[protocol] += 1
            if verdict:
                counts[protocol] += 1
            obs.emit(
                "protocol.verdict",
                dur=time.perf_counter() - protocol_start,
                protocol=protocol,
                schedulable=verdict,
            )
    return _UnitResult(
        taskset_index=taskset_index,
        counts=counts,
        attempted=attempted,
        failures=tuple(failures),
        cache_stats=cache.stats(),
        elapsed_seconds=time.perf_counter() - start,
        events=recorder.drain() if recorder is not None else (),
    )


def _merge_units(
    point: SweepPoint,
    config: ExperimentConfig,
    units: "list[_UnitResult]",
    elapsed_seconds: float,
) -> PointResult:
    """Fold unit results (any completion order) into one point result.

    Units are sorted by task-set index first, so failure ledgers and
    summed counters are independent of completion order; the ratios
    come from the summed integer counts — the exact division the
    sequential path performs.
    """
    units = sorted(units, key=lambda u: u.taskset_index)
    counts = {protocol: 0 for protocol in config.protocols}
    attempted = {protocol: 0 for protocol in config.protocols}
    stats: dict[str, int] = {}
    failures: list[FailureRecord] = []
    for unit in units:
        for protocol in config.protocols:
            counts[protocol] += unit.counts[protocol]
            attempted[protocol] += unit.attempted[protocol]
        for name, value in unit.cache_stats.items():
            stats[name] = stats.get(name, 0) + value
        failures.extend(unit.failures)
    return PointResult(
        x=point.x,
        ratios={
            p: (counts[p] / attempted[p]) if attempted[p] else 0.0
            for p in config.protocols
        },
        sets_evaluated=len(units),
        elapsed_seconds=elapsed_seconds,
        failures=tuple(failures),
        analysis_stats=stats,
    )


# ----------------------------------------------------------------------
# per-process memos shared by every parallel engine
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _tasksets_for(
    generation: GenerationConfig, count: int, seed: int
) -> tuple[TaskSet, ...]:
    """Per-process memo of one point's generated sample.

    Workers receive only (point index, task set index) and regenerate
    the sample from the deterministic seed — identical to the
    sequential path's — so task sets never cross process boundaries;
    the memo amortises the generation over a point's many units.
    """
    return tuple(generate_tasksets(generation, count, seed))


@lru_cache(maxsize=8)
def _store_for(path: str) -> PersistentStore:
    """Per-process memo of the shared on-disk cache tier.

    Workers receive the database *path*, never a live store (sqlite
    handles must not cross ``fork``); each process opens its own
    connection once and reuses it across all its units.
    """
    return PersistentStore(path)


#: Crashes a single unit may cause before it is quarantined.
_CRASH_QUARANTINE_AT = 2


def _save_checkpoint_traced(
    checkpoint_path: str,
    config: ExperimentConfig,
    completed: "dict[int, PointResult]",
    point_index: int,
    writer: TraceWriter | None,
) -> None:
    """One atomic checkpoint save, with its obs events on the trace.

    The persistence layer emits through the module-level recorder
    (retry attempts, injected torn writes); the parent normally has no
    recorder installed, so one is scoped around the save and flushed
    to the trace writer in a ``finally`` — fault events must reach the
    trace even when the injected fault escalates to a simulated crash.
    """
    from repro.experiments.persistence import save_checkpoint

    if writer is None:
        save_checkpoint(checkpoint_path, config, completed, point=point_index)
        return
    recorder = EventRecorder()
    try:
        with obs.recording(recorder):
            save_checkpoint(
                checkpoint_path, config, completed, point=point_index
            )
    finally:
        writer.write_events(recorder.drain(), point=point_index)
    writer.emit("checkpoint.saved", point=point_index)


def _failed_unit(
    config: ExperimentConfig,
    point_index: int,
    taskset_index: int,
    policy: FailurePolicy,
    error_type: str,
    message: str,
) -> _UnitResult:
    """Synthetic unit result for work no worker could complete.

    Used for quarantined pool-killer units and for units whose worker
    kept raising unexpected (non-Repro) exceptions: the parent
    regenerates the task set — generation is deterministic and cheap
    next to analysis — so the ledger still carries the digest needed
    to reproduce the failure offline, and every protocol records one
    :class:`FailureRecord` entering the ratios per the policy.
    """
    point = config.points[point_index]
    seed = config.seed + point_index
    taskset = _tasksets_for(point.generation, config.sets_per_point, seed)[
        taskset_index
    ]
    count_it = policy is FailurePolicy.COUNT_UNSCHEDULABLE
    return _UnitResult(
        taskset_index=taskset_index,
        counts={protocol: 0 for protocol in config.protocols},
        attempted={
            protocol: 1 if count_it else 0 for protocol in config.protocols
        },
        failures=tuple(
            FailureRecord(
                x=point.x,
                protocol=protocol,
                seed=seed,
                taskset_index=taskset_index,
                taskset_digest=taskset.digest(),
                error_type=error_type,
                message=message,
            )
            for protocol in config.protocols
        ),
        cache_stats={},
        elapsed_seconds=0.0,
    )


# ----------------------------------------------------------------------
# content addressing of finished units (the sweep-service store tier)
# ----------------------------------------------------------------------
def unit_digest(
    config: ExperimentConfig,
    point_index: int,
    taskset_index: int,
    options: AnalysisOptions | None,
    policy: "FailurePolicy | str",
) -> str:
    """Content address of one unit's *finished result*.

    Covers everything the unit's counts, ledger entries, and verdicts
    are a function of: the point's generation parameters and x value,
    the derived seed, the task-set index, the protocol list, the LS
    policy, the analysis method and options, and the failure policy
    (which decides how failures enter ``attempted``). Deliberately
    absent: ``sets_per_point`` (task set ``i`` is identical regardless
    of how many sets are drawn after it — sequential seeded stream) and
    the experiment's name/x-label (pure labels). Two sweeps that
    overlap in these inputs share unit entries, which is what lets the
    sweep service answer a repeated or widened sweep from the store.
    """
    point = config.points[point_index]
    generation = dataclasses.asdict(point.generation)
    return _cache_digest(
        (
            "unit",
            tuple(sorted(generation.items())),
            point.x,
            config.seed + point_index,
            taskset_index,
            tuple(config.protocols),
            config.ls_policy,
            config.method,
            repr(options if options is not None else AnalysisOptions()),
            _coerce_policy(policy).value,
        )
    )


def unit_to_payload(unit: _UnitResult) -> dict:
    """The store payload of a finished unit: its pure content.

    Only the deterministic substance is persisted — verdict counts,
    attempted counts, and the failure ledger. Cache counters, elapsed
    wall-clock, and buffered events are *runtime* descriptions of how
    the result was obtained and are synthesised afresh when the unit is
    served (see :func:`served_unit`); storing them would make a warm
    sweep report solves it never performed.
    """
    return {
        "taskset_index": unit.taskset_index,
        "counts": dict(unit.counts),
        "attempted": dict(unit.attempted),
        "failures": [dataclasses.asdict(f) for f in unit.failures],
    }


def served_unit(payload: Mapping[str, object], trace: bool = False) -> _UnitResult:
    """Rebuild a stored unit payload as a freshly *served* unit result.

    The served unit's ``cache_stats`` contain exactly one nonzero
    counter — ``unit_store.hits`` — bumped through a scratch
    :class:`AnalysisCache` under a recorder scope, so the trace carries
    the matching ``cache.unit_store.hits`` event and the profiler's
    trace-vs-checkpoint reconciliation holds for warm sweeps by the
    same construction as for cold ones. Elapsed time is zero: the unit
    cost no analysis.
    """
    recorder = EventRecorder() if trace else None
    scratch = AnalysisCache()
    scope = obs.recording(recorder) if recorder is not None else nullcontext()
    with scope:
        scratch.bump("unit_store.hits")
    failures = payload.get("failures", [])
    if not isinstance(failures, list):
        raise ExperimentError(
            f"stored unit payload has malformed failures: {failures!r}"
        )
    return _UnitResult(
        taskset_index=int(payload["taskset_index"]),  # type: ignore[arg-type]
        counts={str(k): int(v) for k, v in dict(payload["counts"]).items()},  # type: ignore[arg-type]
        attempted={
            str(k): int(v) for k, v in dict(payload["attempted"]).items()  # type: ignore[arg-type]
        },
        failures=tuple(FailureRecord(**f) for f in failures),
        cache_stats=scratch.stats(),
        elapsed_seconds=0.0,
        events=recorder.drain() if recorder is not None else (),
    )


def unit_from_wire(raw: Mapping[str, object]) -> _UnitResult:
    """Decode a worker's full unit result from its wire payload."""
    failures = raw.get("failures", [])
    events = raw.get("events", [])
    if not isinstance(failures, list) or not isinstance(events, list):
        raise ExperimentError("malformed unit result on the wire")
    return _UnitResult(
        taskset_index=int(raw["taskset_index"]),  # type: ignore[arg-type]
        counts=dict(raw["counts"]),  # type: ignore[arg-type]
        attempted=dict(raw["attempted"]),  # type: ignore[arg-type]
        failures=tuple(FailureRecord(**f) for f in failures),
        cache_stats=dict(raw["cache_stats"]),  # type: ignore[arg-type]
        elapsed_seconds=float(raw["elapsed_seconds"]),  # type: ignore[arg-type]
        events=tuple(events),
    )


def unit_to_wire(unit: _UnitResult) -> dict:
    """Encode a full unit result (counters, events and all) for the wire."""
    return {
        "taskset_index": unit.taskset_index,
        "counts": dict(unit.counts),
        "attempted": dict(unit.attempted),
        "failures": [dataclasses.asdict(f) for f in unit.failures],
        "cache_stats": dict(unit.cache_stats),
        "elapsed_seconds": unit.elapsed_seconds,
        "events": [dict(e) for e in unit.events],
    }


# ----------------------------------------------------------------------
# the dispatch-agnostic scheduler
# ----------------------------------------------------------------------
class UnitScheduler:
    """Engine-independent unit bookkeeping and crash recovery.

    Owns the pending-unit ledger (unit key → next attempt number), the
    per-unit crash counts, the per-point result buckets, and the point
    completion pipeline (merge in task-set order → trace append →
    atomic checkpoint write → progress callback). It never dispatches
    anything itself: the process-pool engine submits pending units to a
    ``ProcessPoolExecutor`` and feeds outcomes back through
    :meth:`record_unit`/:meth:`record_crash`; the sweep-service
    coordinator does the same from an asyncio loop over remote workers.
    Both therefore share the exact requeue → probe/retry → quarantine
    semantics the chaos tests pin.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        policy: FailurePolicy,
        completed: "dict[int, PointResult]",
        *,
        checkpoint_path: "str | None" = None,
        writer: TraceWriter | None = None,
        fault_plan: FaultPlan | None = None,
        progress: "Callable[[PointResult], None] | None" = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.completed = completed
        self.checkpoint_path = checkpoint_path
        self.writer = writer
        self.fault_plan = fault_plan
        self.progress = progress
        self._point_started = {
            index: time.perf_counter()
            for index in range(len(config.points))
            if index not in completed
        }
        self._unit_results: dict[int, dict[int, _UnitResult]] = {
            index: {} for index in self._point_started
        }
        #: Unit key -> next attempt number; removed on success/quarantine.
        self.pending: dict[tuple[int, int], int] = {
            (point_index, taskset_index): 0
            for point_index in sorted(self._point_started)
            for taskset_index in range(config.sets_per_point)
        }
        self.crash_counts: dict[tuple[int, int], int] = {}

    @property
    def done(self) -> bool:
        return not self.pending

    def suspects(self) -> "list[tuple[int, int]]":
        """Pending units already implicated in at least one crash."""
        return sorted(
            key for key in self.pending if self.crash_counts.get(key, 0) > 0
        )

    def _emit(self, name: str, **kwargs: object) -> None:
        if self.writer is not None:
            self.writer.emit(name, **kwargs)  # type: ignore[arg-type]

    def _emit_synthesized_death(
        self, key: "tuple[int, int]", attempt: int
    ) -> None:
        # The worker's own buffered fault.worker.death event died with
        # the process; re-derive it from the plan's static predicates
        # so the trace still proves the injection. (A real, un-injected
        # crash has no matching spec and emits nothing here.)
        if self.writer is None or self.fault_plan is None:
            return
        spec = self.fault_plan.matching(
            "worker.death", point=key[0], unit=key[1], attempt=attempt
        )
        if spec is not None:
            self.writer.emit(
                "fault.worker.death",
                point=key[0],
                unit=key[1],
                mode=spec.mode,
                plan=self.fault_plan.name,
                synthesized=True,
            )

    def record_unit(self, point_index: int, unit: _UnitResult) -> None:
        """Accept one finished unit; complete the point on its last one."""
        key = (point_index, unit.taskset_index)
        if key not in self.pending:
            return  # duplicate of a unit already satisfied
        del self.pending[key]
        bucket = self._unit_results[point_index]
        bucket[unit.taskset_index] = unit
        if len(bucket) < self.config.sets_per_point:
            return
        result = _merge_units(
            self.config.points[point_index],
            self.config,
            list(bucket.values()),
            time.perf_counter() - self._point_started[point_index],
        )
        self.completed[point_index] = result
        if self.writer is not None:
            for index in sorted(bucket):
                self.writer.write_events(
                    bucket[index].events, point=point_index, unit=index
                )
            self.writer.emit(
                "point.end",
                dur=result.elapsed_seconds,
                point=point_index,
                x=result.x,
                failures=len(result.failures),
            )
        if self.checkpoint_path is not None:
            _save_checkpoint_traced(
                self.checkpoint_path,
                self.config,
                self.completed,
                point_index,
                self.writer,
            )
        if self.progress is not None:
            self.progress(result)

    def record_crash(
        self, key: "tuple[int, int]", attempt: int, error_type: str,
        message: str,
    ) -> None:
        """Count one crash/unexpected failure of a pending unit and
        either requeue it (attempt + 1) or give up on it."""
        self.crash_counts[key] = self.crash_counts.get(key, 0) + 1
        self._emit_synthesized_death(key, attempt)
        if self.crash_counts[key] < _CRASH_QUARANTINE_AT:
            self.pending[key] = attempt + 1
            self._emit(
                "worker.requeued",
                point=key[0],
                unit=key[1],
                attempt=attempt + 1,
                error=error_type,
            )
            return
        if self.policy is FailurePolicy.RAISE:
            raise WorkerCrashError(
                f"work unit (point {key[0]}, set {key[1]}) failed "
                f"{self.crash_counts[key]} worker processes "
                f"({error_type}: {message}); quarantined"
            )
        self._emit(
            "worker.quarantined",
            point=key[0],
            unit=key[1],
            crashes=self.crash_counts[key],
            error=error_type,
        )
        self.record_unit(
            key[0],
            _failed_unit(
                self.config, key[0], key[1], self.policy, error_type, message
            ),
        )

    def result(self) -> SweepResult:
        """The finished sweep (every point must have completed)."""
        return SweepResult(
            config=self.config,
            points=tuple(
                self.completed[index]
                for index in range(len(self.config.points))
            ),
        )
