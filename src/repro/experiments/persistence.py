"""Persistence for experiment results.

Long sweeps are expensive; this module serialises a
:class:`~repro.experiments.runner.SweepResult` to JSON (losslessly for
the ratio data and the generation parameters) so partial runs can be
archived, reloaded for re-plotting, and merged — e.g. two 25-set runs
with disjoint seeds combine into one 50-set series.

It also implements the sweep **checkpoint** format: a JSON file keyed
by a digest of the experiment configuration, holding every completed
point (including its failure ledger). Checkpoints are written
atomically — to a temp file in the same directory, then renamed — so a
kill mid-write can never leave a truncated checkpoint behind, and
:func:`~repro.experiments.runner.run_experiment` can resume a sweep by
re-evaluating only the missing points.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Mapping

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.experiments.runner import FailureRecord, PointResult, SweepResult
from repro.generator.taskset_gen import GenerationConfig

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 1


def _config_to_dict(config: ExperimentConfig) -> dict:
    return {
        "name": config.name,
        "x_label": config.x_label,
        "sets_per_point": config.sets_per_point,
        "seed": config.seed,
        "protocols": list(config.protocols),
        "ls_policy": config.ls_policy,
        "method": config.method,
        "points": [
            {
                "x": point.x,
                "generation": dataclasses.asdict(point.generation),
            }
            for point in config.points
        ],
    }


def _config_from_dict(raw: dict) -> ExperimentConfig:
    return ExperimentConfig(
        name=raw["name"],
        x_label=raw["x_label"],
        points=tuple(
            SweepPoint(p["x"], GenerationConfig(**p["generation"]))
            for p in raw["points"]
        ),
        sets_per_point=raw["sets_per_point"],
        seed=raw["seed"],
        protocols=tuple(raw["protocols"]),
        ls_policy=raw["ls_policy"],
        method=raw["method"],
    )


def _point_to_dict(point: PointResult) -> dict:
    payload = {
        "x": point.x,
        "ratios": dict(point.ratios),
        "sets_evaluated": point.sets_evaluated,
        "elapsed_seconds": point.elapsed_seconds,
    }
    if point.failures:
        payload["failures"] = [dataclasses.asdict(f) for f in point.failures]
    if point.analysis_stats:
        payload["analysis_stats"] = dict(point.analysis_stats)
    return payload


def _point_from_dict(raw: dict) -> PointResult:
    return PointResult(
        x=raw["x"],
        ratios=raw["ratios"],
        sets_evaluated=raw["sets_evaluated"],
        elapsed_seconds=raw["elapsed_seconds"],
        failures=tuple(
            FailureRecord(**f) for f in raw.get("failures", ())
        ),
        analysis_stats=raw.get("analysis_stats", {}),
    )


def sweep_to_dict(result: SweepResult) -> dict:
    """Plain-dict representation of a sweep result."""
    return {
        "format_version": _FORMAT_VERSION,
        "config": _config_to_dict(result.config),
        "points": [_point_to_dict(point) for point in result.points],
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Rebuild a sweep result from :func:`sweep_to_dict` output."""
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported sweep format {payload.get('format_version')!r}"
        )
    config = _config_from_dict(payload["config"])
    points = tuple(_point_from_dict(p) for p in payload["points"])
    return SweepResult(config=config, points=points)


def save_sweep(result: SweepResult, path: str | Path) -> None:
    """Write a sweep result to a JSON file."""
    Path(path).write_text(json.dumps(sweep_to_dict(result), indent=2))


def load_sweep(path: str | Path) -> SweepResult:
    """Read a sweep result from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"sweep file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid sweep JSON: {exc}") from exc
    return sweep_from_dict(payload)


def merge_sweeps(a: SweepResult, b: SweepResult) -> SweepResult:
    """Pool two runs of the same experiment into one larger sample.

    The runs must share the experiment definition (name, sweep points,
    protocols, method) but should use different seeds — the merged
    ratios are the sample-size-weighted averages.
    """
    ca, cb = a.config, b.config
    if (
        ca.name != cb.name
        or ca.x_label != cb.x_label
        or [p.x for p in ca.points] != [p.x for p in cb.points]
        or ca.protocols != cb.protocols
        or ca.method != cb.method
    ):
        raise ExperimentError("cannot merge results of different experiments")
    if ca.seed == cb.seed:
        raise ExperimentError(
            "refusing to merge runs with the same seed: the samples are "
            "identical, not independent"
        )
    merged_points = []
    for pa, pb in zip(a.points, b.points):
        total = pa.sets_evaluated + pb.sets_evaluated
        merged_points.append(
            PointResult(
                x=pa.x,
                ratios={
                    protocol: (
                        pa.ratios[protocol] * pa.sets_evaluated
                        + pb.ratios[protocol] * pb.sets_evaluated
                    )
                    / total
                    for protocol in ca.protocols
                },
                sets_evaluated=total,
                elapsed_seconds=pa.elapsed_seconds + pb.elapsed_seconds,
                failures=pa.failures + pb.failures,
                analysis_stats={
                    name: pa.analysis_stats.get(name, 0)
                    + pb.analysis_stats.get(name, 0)
                    for name in {*pa.analysis_stats, *pb.analysis_stats}
                },
            )
        )
    merged_config = dataclasses.replace(
        ca, sets_per_point=ca.sets_per_point + cb.sets_per_point
    )
    return SweepResult(config=merged_config, points=tuple(merged_points))


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
def config_digest(config: ExperimentConfig) -> str:
    """Stable digest identifying an experiment configuration.

    Two configs with the same digest generate the same task sets and
    evaluate the same protocols, so their per-point results are
    interchangeable — the property checkpoint resume relies on.
    """
    canonical = json.dumps(_config_to_dict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def save_checkpoint(
    path: str | Path,
    config: ExperimentConfig,
    completed: Mapping[int, PointResult],
) -> None:
    """Atomically persist the completed points of a sweep.

    The payload is written to a temporary file in the target directory
    and renamed over ``path`` (rename is atomic on POSIX), so readers
    never observe a partially-written checkpoint.
    """
    path = Path(path)
    payload = {
        "checkpoint_version": _CHECKPOINT_VERSION,
        "config_digest": config_digest(config),
        "config": _config_to_dict(config),
        "points": {
            str(index): _point_to_dict(point)
            for index, point in sorted(completed.items())
        },
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(json.dumps(payload, indent=2))
        os.replace(tmp, path)
    except OSError as exc:
        raise ExperimentError(f"cannot write checkpoint {path}: {exc}") from exc


def load_checkpoint(
    path: str | Path,
    config: ExperimentConfig,
    missing_ok: bool = False,
) -> dict[int, PointResult]:
    """Load the completed points of a checkpoint for ``config``.

    Raises :class:`ExperimentError` when the file belongs to a
    different configuration (digest mismatch), is an unsupported
    version, or is not valid JSON — resuming against the wrong
    checkpoint would silently mix incompatible samples.
    """
    path = Path(path)
    if not path.exists():
        if missing_ok:
            return {}
        raise ExperimentError(f"checkpoint file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid checkpoint JSON in {path}: {exc}") from exc
    if payload.get("checkpoint_version") != _CHECKPOINT_VERSION:
        raise ExperimentError(
            f"unsupported checkpoint version "
            f"{payload.get('checkpoint_version')!r} in {path}"
        )
    expected = config_digest(config)
    found = payload.get("config_digest")
    if found != expected:
        raise ExperimentError(
            f"checkpoint {path} belongs to a different experiment "
            f"(config digest {found!r} != {expected!r}); delete it or "
            f"point --checkpoint elsewhere"
        )
    return {
        int(index): _point_from_dict(point)
        for index, point in payload["points"].items()
    }


def read_checkpoint_points(path: str | Path) -> dict[int, PointResult]:
    """Load a checkpoint's points without knowing its configuration.

    ``repro profile --checkpoint`` reconciles a trace against whatever
    run produced the checkpoint, so unlike :func:`load_checkpoint`
    there is no expected config to verify the digest against — version
    and JSON validity are still enforced.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"checkpoint file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid checkpoint JSON in {path}: {exc}") from exc
    if payload.get("checkpoint_version") != _CHECKPOINT_VERSION:
        raise ExperimentError(
            f"unsupported checkpoint version "
            f"{payload.get('checkpoint_version')!r} in {path}"
        )
    return {
        int(index): _point_from_dict(point)
        for index, point in payload["points"].items()
    }
